//! Quickstart: generate a small synthetic N10 dataset, train LithoGAN for
//! a few epochs, and evaluate it on the held-out split.
//!
//! ```sh
//! cargo run --release -p lithogan --example quickstart
//! ```

use litho_dataset::{generate, DatasetConfig};
use litho_metrics::MetricAccumulator;
use litho_sim::ProcessConfig;
use lithogan::{LithoGan, NetConfig, Result, TrainConfig};

fn main() -> Result<()> {
    // 1. Data: 48 contact clips at a CPU-friendly 32x32 resolution.
    //    (The paper uses 982 clips at 256x256; see DESIGN.md.)
    let config = DatasetConfig::scaled(ProcessConfig::n10(), 48, 32);
    println!("generating {} clips ...", config.clip_count);
    let (dataset, stats) = generate(&config)?;
    println!(
        "  {} samples ({} golden retries, {} OPC non-converged)",
        dataset.len(),
        stats.empty_golden_retries,
        stats.opc_unconverged
    );
    let (train, test) = dataset.split();

    // 2. Model: the paper's architecture scaled to 32x32.
    let net = NetConfig::scaled(32);
    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::paper()
    };
    let mut model = LithoGan::new(&net, 0);
    println!("training on {} samples for {} epochs ...", train.len(), cfg.epochs);
    let history = model.train(&train, &cfg, |epoch, _| {
        println!("  epoch {} done", epoch + 1);
    })?;
    println!(
        "generator loss {:.1} -> {:.1}",
        history.g_loss.first().copied().unwrap_or(0.0),
        history.g_loss.last().copied().unwrap_or(0.0)
    );

    // 3. Evaluate on the test split with the paper's metrics.
    let mut acc = MetricAccumulator::new(config.golden_nm_per_px());
    for sample in &test {
        let prediction = model.predict(&sample.mask)?;
        acc.add(&prediction, &sample.golden)?;
    }
    let summary = acc.summary();
    println!(
        "\ntest set ({} samples):\n  EDE        {:.2} ± {:.2} nm\n  pixel acc  {:.4}\n  class acc  {:.4}\n  mean IoU   {:.4}",
        summary.samples,
        summary.ede_mean_nm,
        summary.ede_std_nm,
        summary.pixel_accuracy,
        summary.class_accuracy,
        summary.mean_iou
    );
    Ok(())
}
