//! Resolution-enhancement flow on a single clip: draw a contact pattern,
//! insert SRAFs, run model-based OPC, and show how the printed contact
//! improves — the data-preparation substrate behind every LithoGAN
//! training sample.
//!
//! ```sh
//! cargo run --release -p lithogan --example opc_flow
//! ```

use litho_layout::{insert_srafs, Clip, OpcConfig, OpcEngine, Rect, SrafRules};
use litho_sim::{ProcessConfig, RigorousSim};
use lithogan::Result;

fn print_cd(label: &str, sim: &RigorousSim, clip: &Clip, grid: usize) -> Result<()> {
    let golden = sim.golden_center_pattern(&clip.to_mask_grid(grid))?;
    match golden.and_then(|g| g.cd_horizontal_nm()) {
        Some(cd) => println!("  {label:<28} printed CD = {cd:.0} nm"),
        None => println!("  {label:<28} does not print"),
    }
    Ok(())
}

fn main() -> Result<()> {
    let process = ProcessConfig::n10();
    let grid = 256;
    let sim = RigorousSim::new(&process, grid, 2048.0 / grid as f64)?;

    // A 60 nm contact with one diagonal neighbor — drawn size is far below
    // the ~87 nm diffraction limit, so it cannot print as drawn.
    let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
    clip.neighbors.push(Rect::centered_square(1144.0, 1144.0, 60.0));

    println!("target contact: 60 nm drawn (λ=193 nm, NA=1.35, Rayleigh ≈ 87 nm)");
    print_cd("drawn mask (no RET)", &sim, &clip, grid)?;

    // Step 1: rule-based SRAFs.
    let placed = insert_srafs(&mut clip, &SrafRules::for_process(&process));
    println!("  inserted {placed} SRAFs");
    print_cd("with SRAFs", &sim, &clip, grid)?;

    // Step 2: model-based OPC.
    let engine = OpcEngine::new(&process, 2048.0, OpcConfig::default())?;
    let result = engine.correct(&clip)?;
    println!(
        "  OPC: {} iterations, residual edge error {:.1} nm, converged = {}",
        result.iterations, result.max_error_nm, result.converged
    );
    println!(
        "  mask bias: target drawn 60 nm -> {:.0} x {:.0} nm on mask",
        result.clip.target.width(),
        result.clip.target.height()
    );
    print_cd("with SRAFs + OPC", &sim, &result.clip, grid)?;
    println!("\n(OPC drives the printed CD to the 60 nm design intent — the paper's\n dataset is built from exactly such post-RET clips.)");
    Ok(())
}
