//! Hotspot screening — the workload the paper's introduction motivates:
//! lithography simulation inside the design loop is too slow, so a
//! learned end-to-end model screens thousands of layout configurations
//! and only flagged candidates go to full simulation.
//!
//! This example screens held-out clips for CD hotspots (printed contact
//! CD deviating from the 60 nm target by more than 10 % of the half
//! pitch, the paper's acceptance criterion) using the trained LithoGAN,
//! then validates every verdict against the rigorous simulator and
//! reports the confusion matrix and speedup.
//!
//! ```sh
//! cargo run --release -p lithogan --example hotspot_screening
//! ```

use std::time::{Duration, Instant};

use litho_dataset::{generate, DatasetConfig};
use litho_metrics::BoundingBox;
use litho_sim::ProcessConfig;
use litho_tensor::Tensor;
use lithogan::{LithoGan, NetConfig, Result, TrainConfig};

/// Printed CD (horizontal bbox extent) of a predicted window, nm.
fn predicted_cd_nm(image: &Tensor, nm_per_px: f64) -> Option<f64> {
    BoundingBox::of(image).map(|bb| bb.width() as f64 * nm_per_px)
}

fn main() -> Result<()> {
    let process = ProcessConfig::n10();
    let config = DatasetConfig::scaled(process.clone(), 72, 32);
    println!("building screening corpus ({} clips) ...", config.clip_count);
    let (dataset, _) = generate(&config)?;
    let (train, test) = dataset.split();

    let mut model = LithoGan::new(&NetConfig::scaled(32), 0);
    model.train(
        &train,
        &TrainConfig {
            epochs: 8,
            ..TrainConfig::paper()
        },
        |_, _| {},
    )?;

    // The acceptance window: |CD - target| <= 10% of half pitch (paper §4.2).
    let target = process.contact_size_nm;
    let tolerance = process.half_pitch_nm() * 0.10 * 2.0; // a screening band
    let nm_per_px = config.golden_nm_per_px();
    println!(
        "screening {} clips: hotspot when |CD - {target} nm| > {tolerance:.1} nm",
        test.len()
    );

    let mut model_time = Duration::ZERO;
    let mut agree = 0usize;
    let mut false_pass = 0usize;
    let mut false_flag = 0usize;
    for sample in &test {
        let t0 = Instant::now();
        let prediction = model.predict(&sample.mask)?;
        model_time += t0.elapsed();
        let predicted_hotspot = match predicted_cd_nm(&prediction, nm_per_px) {
            Some(cd) => (cd - target).abs() > tolerance,
            None => true, // nothing prints: certainly a hotspot
        };
        // Golden verdict from the (already simulated) golden pattern.
        let golden_hotspot = match predicted_cd_nm(&sample.golden, nm_per_px) {
            Some(cd) => (cd - target).abs() > tolerance,
            None => true,
        };
        match (predicted_hotspot, golden_hotspot) {
            (a, b) if a == b => agree += 1,
            (false, true) => false_pass += 1,
            _ => false_flag += 1,
        }
    }
    println!(
        "agreement {}/{} ({:.0}%), missed hotspots {}, false flags {}",
        agree,
        test.len(),
        100.0 * agree as f64 / test.len() as f64,
        false_pass,
        false_flag
    );

    // Speedup vs rigorous verification of the same clips.
    let sim = litho_sim::RigorousSim::new(&process, config.sim_grid, 2048.0 / config.sim_grid as f64)?;
    let t0 = Instant::now();
    for sample in test.iter().take(8) {
        sim.simulate(&sample.clip.to_mask_grid(config.sim_grid))?;
    }
    let rigorous_per_clip = t0.elapsed() / 8;
    let model_per_clip = model_time / test.len() as u32;
    println!(
        "per-clip: rigorous {:.1} ms vs LithoGAN {:.2} ms ({:.0}x)",
        rigorous_per_clip.as_secs_f64() * 1e3,
        model_per_clip.as_secs_f64() * 1e3,
        rigorous_per_clip.as_secs_f64() / model_per_clip.as_secs_f64().max(1e-12)
    );
    Ok(())
}
