//! End-to-end mask → resist prediction on a hand-built clip, compared
//! against the rigorous simulator, with Figure-6-style panels written to
//! `target/experiments/mask_to_resist/`.
//!
//! ```sh
//! cargo run --release -p lithogan --example mask_to_resist
//! ```

use litho_dataset::{generate, DatasetConfig};
use litho_layout::image::{overlay_panel, write_ppm};
use litho_metrics::ede;
use litho_sim::ProcessConfig;
use lithogan::{LithoGan, NetConfig, Result, TrainConfig};

fn main() -> Result<()> {
    let out_dir = std::path::Path::new("target/experiments/mask_to_resist");
    std::fs::create_dir_all(out_dir)
        .map_err(|e| lithogan::TensorError::InvalidArgument(e.to_string()))?;

    // Train a small model (the dataset generator runs SRAF + OPC + the
    // rigorous golden simulation for every clip).
    let config = DatasetConfig::scaled(ProcessConfig::n10(), 64, 32);
    println!("generating {} clips and training ...", config.clip_count);
    let (dataset, _) = generate(&config)?;
    let (train, test) = dataset.split();
    let mut model = LithoGan::new(&NetConfig::scaled(32), 0);
    model.train(
        &train,
        &TrainConfig {
            epochs: 8,
            ..TrainConfig::paper()
        },
        |_, _| {},
    )?;

    // Predict the three held-out clips with the most neighbours (the
    // hardest proximity environments) and visualise each stage.
    let mut ranked: Vec<_> = test.iter().collect();
    ranked.sort_by_key(|s| std::cmp::Reverse(s.clip.neighbors.len()));
    let nm_per_px = config.golden_nm_per_px();
    for (i, sample) in ranked.iter().take(3).enumerate() {
        let p = model.predict_detailed(&sample.mask)?;
        let binary = p.adjusted.map(|v| if v >= 0.5 { 1.0 } else { 0.0 });
        let panel = overlay_panel(&binary, &sample.golden)?;
        write_ppm(&sample.mask, out_dir.join(format!("clip{i}_mask.ppm")))?;
        write_ppm(&panel, out_dir.join(format!("clip{i}_prediction.ppm")))?;
        let quality = ede(&binary, &sample.golden, nm_per_px)
            .map(|e| format!("EDE {:.2} nm", e.mean_nm()))
            .unwrap_or_else(|_| "empty prediction".into());
        println!(
            "clip {i}: {} neighbours, predicted centre ({:.1}, {:.1}) px, {}",
            sample.clip.neighbors.len(),
            p.center_px.0,
            p.center_px.1,
            quality
        );
    }
    println!("panels written to {}", out_dir.display());
    Ok(())
}
