//! End-to-end tests for the eval-forensics surfaces: `triage` (ranked
//! table + SVG gallery), `runs diff-eval` pinned by a committed golden
//! with its `--gate` contract, and ledger back-compat — samples.jsonl
//! lines written before clip identity existed must still load with the
//! identity fields absent, and still count in diff-eval as unjoinable.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

use litho_ledger::load_run;

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lithogan_cli"));
    // E2e suites test CLI/ledger plumbing, not kernel numerics (that is
    // crates/tensor/tests/simd_levels.rs), so spawned processes always run
    // at the host's fastest level — an outer LITHO_SIMD=scalar pass must
    // not slow live trainers past the suites' timeouts.
    cmd.env("LITHO_SIMD", "auto");
    cmd
}

/// Fresh scratch directory per call; std-only stand-in for tempfile.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lithogan-forensics-cli-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(out: &Output) -> String {
    assert!(
        out.status.success(),
        "command failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

fn fixture(set: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/fleet")
        .join(set)
}

/// Copies the clean + regressed fixture fleets into one runs root.
fn fixture_fleet(tag: &str) -> PathBuf {
    let runs = scratch(tag).join("runs");
    copy_tree(&fixture("clean"), &runs);
    copy_tree(&fixture("regressed"), &runs);
    runs
}

/// The diff-eval table over the committed fixture runs, pinned by a
/// golden: clean tip vs regressed tip share two clips (both regressed)
/// and the regressed run evaluates one clip the clean run never saw.
/// `BLESS=1 cargo test -p lithogan --test forensics_cli` regenerates it.
#[test]
fn diff_eval_table_matches_the_committed_golden() {
    let runs = fixture_fleet("diff-golden");
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "diff-eval", "train-1700000400-4", "train-1700000600-6"])
        .output()
        .unwrap();
    // Without --gate a regression is reported, not fatal.
    let text = run_ok(&out);

    let golden_path = fixture("diff_eval.golden.txt");
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden_path, &text).unwrap();
    }
    let golden = fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert_eq!(
        text, golden,
        "diff-eval output drifted from {}; if intentional, update the golden",
        golden_path.display()
    );

    // Spot-check the semantics the golden encodes.
    assert!(text.contains("gate: FAIL"), "{text}");
    assert!(text.contains("00000000deadbee2"), "new clip missing:\n{text}");
    assert!(!text.contains("NaN"), "{text}");
}

#[test]
fn diff_eval_gate_fails_on_regression_and_passes_clean() {
    let runs = fixture_fleet("diff-gate");

    // clean tip -> regressed tip: every shared clip grew past 10%.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "diff-eval", "train-1700000400-4", "train-1700000600-6", "--gate"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "gate must fail on a regressed pair");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("diff-eval gate failed"), "stderr:\n{stderr}");

    // Two clean runs with identical per-clip EDE: gate passes.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "diff-eval", "train-1700000100-1", "train-1700000400-4", "--gate"])
        .output()
        .unwrap();
    let text = run_ok(&out);
    assert!(text.contains("gate: PASS"), "{text}");

    // A generous tolerance waves the regressed pair through.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args([
            "runs", "diff-eval", "train-1700000400-4", "train-1700000600-6",
            "--gate", "--tol-pct", "90",
        ])
        .output()
        .unwrap();
    assert!(run_ok(&out).contains("gate: PASS"));
}

/// Ledger back-compat: `train-1700000200-2` is committed with
/// pre-identity samples.jsonl lines. They must parse with the identity
/// fields absent (None, not empty strings), aggregate normally, and
/// surface in diff-eval as unjoinable rather than erroring.
#[test]
fn legacy_samples_without_identity_still_load() {
    let runs = fixture_fleet("legacy");
    let data = load_run(&runs.join("train-1700000200-2")).unwrap();
    assert_eq!(data.records.len(), 2);
    for rec in &data.records {
        assert!(rec.clip_fingerprint.is_none(), "legacy line grew a fingerprint");
        assert!(rec.family.is_none(), "legacy line grew a family");
        // Round-trip keeps the legacy shape: no identity keys at all.
        let line = rec.to_jsonl();
        assert!(!line.contains("clip_fingerprint"), "{line}");
        assert!(!line.contains("\"family\""), "{line}");
    }
    // The aggregate is oblivious to missing identity...
    let summary = data.summary.expect("legacy run still aggregates");
    assert!((summary.ede_mean_nm - 3.1).abs() < 1e-9);
    // ...but no slice can exist without families.
    assert!(summary.slices.is_empty());

    // diff-eval against an identified run: nothing joins, and the
    // legacy side's records are counted instead of silently dropped.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "diff-eval", "train-1700000200-2", "train-1700000100-1"])
        .output()
        .unwrap();
    let text = run_ok(&out);
    assert!(text.contains("unjoinable records"), "{text}");
    assert!(text.contains("2 in A"), "{text}");
    assert!(text.contains("gate: PASS"), "{text}");
}

/// `triage` over a fixture run: ranked table on stdout and a
/// well-formed, self-contained SVG gallery on disk.
#[test]
fn triage_renders_table_and_svg_gallery() {
    let runs = fixture_fleet("triage");
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["triage", "train-1700000600-6", "--worst", "2"])
        .output()
        .unwrap();
    let text = run_ok(&out);
    assert!(text.contains("worst 2 of 3 samples"), "{text}");
    assert!(text.contains("00000000deadbee0"), "{text}");
    assert!(text.contains("isolated"), "{text}");

    let svg_path = runs.join("train-1700000600-6").join("triage.svg");
    assert!(text.contains("triage.svg"), "gallery path not announced:\n{text}");
    let svg = fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg "), "not an svg: {}", &svg[..svg.len().min(80)]);
    assert!(svg.trim_end().ends_with("</svg>"), "truncated svg");
    assert!(svg.contains("train-1700000600-6"), "run id missing from gallery");
    assert!(!svg.contains("NaN"), "gallery leaked a NaN");
    // Self-contained: no external fetches from the gallery.
    assert!(!svg.contains("href="), "gallery must not reference external resources");
}
