//! End-to-end CLI tests for the fleet layer: the runs index written at
//! finalize and rebuilt by `reindex`, the `runs ls`/`trend`/`gc` views
//! (all honoring `--runs-root`, space and `=` spellings alike), and the
//! `watch` live tailer following a real background training process and
//! standing in for its exit code.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lithogan_cli"));
    // This suite exercises the ledger/CLI plumbing, not kernel numerics
    // (crates/tensor/tests/simd_levels.rs owns the level policy), so the
    // spawned processes always run at the host's fastest kernel level:
    // an outer LITHO_SIMD=scalar pass would otherwise push the live
    // debug-build trainer past the watch timeouts.
    cmd.env("LITHO_SIMD", "auto");
    cmd
}

/// Fresh scratch directory per call; std-only stand-in for tempfile.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lithogan-runs-cli-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(out: &Output) -> String {
    assert!(
        out.status.success(),
        "command failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

fn fixture(set: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/fleet")
        .join(set)
}

#[test]
fn reindex_ls_and_trend_over_fixture_fleet() {
    let dir = scratch("fleet");
    let runs = dir.join("runs");
    copy_tree(&fixture("clean"), &runs);

    // `=` spelling of the global flag.
    let out = cli()
        .arg(format!("--runs-root={}", runs.display()))
        .arg("reindex")
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(stdout.contains("reindexed 4 run(s)"), "stdout:\n{stdout}");
    assert!(runs.join("index.jsonl").exists());

    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "ls"])
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(stdout.contains("train-1700000100-1"), "stdout:\n{stdout}");
    assert!(stdout.contains("4 run(s)"), "stdout:\n{stdout}");
    assert!(stdout.contains("feedc0defeed"), "dataset fingerprint shown");

    // Filters compose; --last keeps the newest.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "ls", "--status", "ok", "--last", "2"])
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(!stdout.contains("train-1700000100-1"), "stdout:\n{stdout}");
    assert!(stdout.contains("train-1700000400-4"), "stdout:\n{stdout}");
    assert!(stdout.contains("2 run(s)"), "stdout:\n{stdout}");

    // A clean fleet passes the trend gate and renders table + SVG.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "trend", "ede_mean_nm", "--gate"])
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(stdout.contains("ede_mean_nm"), "stdout:\n{stdout}");
    assert!(stdout.contains("train-1700000400-4"), "stdout:\n{stdout}");
    assert!(stdout.contains("trend gate: PASS"), "stdout:\n{stdout}");
    let svg = fs::read_to_string(runs.join("trend.svg")).expect("trend.svg written");
    assert!(svg.starts_with("<svg") || svg.contains("<svg"), "svg:\n{svg}");

    // --out redirects the SVG.
    let custom = dir.join("custom.svg");
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "trend", "ede_mean_nm,mean_iou", "--out"])
        .arg(&custom)
        .output()
        .unwrap();
    run_ok(&out);
    assert!(custom.exists());

    // Two trailing regressed runs confirm a drift; the gate goes red.
    copy_tree(&fixture("regressed"), &runs);
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .arg("reindex")
        .output()
        .unwrap();
    run_ok(&out);
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "trend", "ede_mean_nm", "--gate"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "regressed fleet must fail the gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drift"), "stderr:\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DRIFT"), "stdout:\n{stdout}");

    // --last scopes the trend window: only the newest 2 runs are
    // considered, so the oldest fixture run drops out of the table.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "trend", "ede_mean_nm", "--last", "2"])
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(!stdout.contains("train-1700000100-1"), "stdout:\n{stdout}");
    assert!(stdout.contains("train-1700000600-6"), "stdout:\n{stdout}");
}

#[test]
fn gc_keeps_newest_and_baseline_run() {
    let dir = scratch("gc");
    let runs = dir.join("runs");
    copy_tree(&fixture("clean"), &runs);
    copy_tree(&fixture("regressed"), &runs);
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .arg("reindex")
        .output()
        .unwrap();
    run_ok(&out);

    // The committed baseline points at the oldest run; gc must spare it.
    let baseline = dir.join("baseline.json");
    fs::write(
        &baseline,
        "{\"tol_pct\":25,\"run_id\":\"train-1700000100-1\",\"metrics\":{\"ede_mean_nm\":3.0}}\n",
    )
    .unwrap();
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "gc", "--keep", "2", "--baseline"])
        .arg(&baseline)
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(stdout.contains("protected train-1700000100-1"), "stdout:\n{stdout}");

    let mut kept: Vec<String> = fs::read_dir(&runs)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().unwrap().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    kept.sort();
    assert_eq!(
        kept,
        vec![
            "train-1700000100-1".to_string(),
            "train-1700000500-5".to_string(),
            "train-1700000600-6".to_string(),
        ],
        "2 newest + the baseline run survive"
    );
    // The index was rebuilt to match.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["runs", "ls"])
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(stdout.contains("3 run(s)"), "stdout:\n{stdout}");
}

#[test]
fn real_runs_append_to_the_index() {
    let dir = scratch("append");
    let runs = dir.join("runs");
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["generate", "--clips", "6", "--size", "32", "--out"])
        .arg(dir.join("data.lgd"))
        .output()
        .unwrap();
    run_ok(&out);

    let index = fs::read_to_string(runs.join("index.jsonl")).expect("finalize appended index");
    assert_eq!(index.lines().count(), 1);
    assert!(index.contains("\"command\":\"generate\""), "index:\n{index}");
    assert!(index.contains("\"status\":\"ok\""), "index:\n{index}");

    // A lost index is fully recoverable from the run directories.
    fs::remove_file(runs.join("index.jsonl")).unwrap();
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .arg("reindex")
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(stdout.contains("reindexed 1 run(s)"), "stdout:\n{stdout}");
    let rebuilt = fs::read_to_string(runs.join("index.jsonl")).unwrap();
    assert!(rebuilt.contains("\"command\":\"generate\""), "index:\n{rebuilt}");
}

/// Spawns `train` in the background and returns (child, run directory)
/// once the run directory exists. Every caller waits on the child.
#[allow(clippy::zombie_processes)]
fn spawn_train(dir: &Path, data: &Path, extra: &[&str]) -> (std::process::Child, PathBuf) {
    let runs = dir.join("runs");
    let mut child = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["train", "--data"])
        .arg(data)
        .args(["--seed", "7", "--out"])
        .arg(dir.join("model.lgm"))
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(entries) = fs::read_dir(&runs) {
            if let Some(run) = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("train-"))
            {
                return (child, run);
            }
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            panic!("train never created a run dir");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn watch_follows_a_live_train_to_completion() {
    let dir = scratch("watch-ok");
    let data = dir.join("data.lgd");
    let out = cli()
        .args(["--runs-root"])
        .arg(dir.join("runs"))
        .args(["generate", "--clips", "10", "--size", "32", "--out"])
        .arg(&data)
        .output()
        .unwrap();
    run_ok(&out);

    let (mut child, run) = spawn_train(&dir, &data, &["--epochs", "3"]);
    // Watch by run id, resolved under --runs-root, until the run ends.
    let run_id = run.file_name().unwrap().to_string_lossy().into_owned();
    let out = cli()
        .args(["--runs-root"])
        .arg(dir.join("runs"))
        .args(["watch", &run_id, "--interval-ms", "25", "--timeout-s", "120"])
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // At least one rendered update per epoch (the trainer flushes its
    // trace at every epoch boundary).
    for epoch in 1..=3 {
        assert!(
            stderr.contains(&format!("epoch {epoch}/3")),
            "missing epoch {epoch} update\nstderr:\n{stderr}"
        );
    }
    assert!(stderr.contains("g_loss"), "stderr:\n{stderr}");
    assert!(stdout.contains("[ok]"), "final snapshot ok\nstdout:\n{stdout}");
    assert!(child.wait().unwrap().success());
}

#[test]
fn watch_propagates_an_aborted_runs_failure() {
    let dir = scratch("watch-abort");
    let data = dir.join("data.lgd");
    let out = cli()
        .args(["--runs-root"])
        .arg(dir.join("runs"))
        .args(["generate", "--clips", "6", "--size", "32", "--out"])
        .arg(&data)
        .output()
        .unwrap();
    run_ok(&out);

    let (mut child, run) = spawn_train(
        &dir,
        &data,
        &["--epochs", "3", "--poison-nan-at-epoch", "1", "--abort-on", "nan"],
    );
    let out = cli()
        .arg("watch")
        .arg(&run)
        .args(["--interval-ms", "25", "--timeout-s", "120"])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "watch must exit nonzero for an aborted run\nstdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("aborted"), "stderr:\n{stderr}");
    assert!(!child.wait().unwrap().success(), "the aborted train itself fails");
}

/// A run directory removed mid-watch (e.g. by `runs gc`) is a hard
/// error, not an eternal wait — and alert transitions appended to
/// `runs/alerts.jsonl` while watching are echoed live.
#[test]
fn watch_errors_when_run_directory_vanishes() {
    let dir = scratch("watch-vanish");
    let runs = dir.join("runs");
    let run = runs.join("train-77-7");
    fs::create_dir_all(&run).unwrap();
    fs::write(
        run.join("manifest.json"),
        "{\"schema_version\":2,\"run_id\":\"train-77-7\",\"command\":\"train\",\
         \"started_unix_s\":1,\"config\":{},\"status\":\"running\"}\n",
    )
    .unwrap();

    let mut child = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["watch", "train-77-7", "--interval-ms", "25", "--timeout-s", "60"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // Let the watcher see the live run, then fire an alert transition
    // and finally yank the directory out from under it.
    std::thread::sleep(Duration::from_millis(300));
    let alert = litho_alert::AlertRecord {
        schema_version: litho_alert::ALERTS_SCHEMA,
        rule: "unhealthy-run".to_string(),
        kind: "health".to_string(),
        severity: "page".to_string(),
        state: litho_alert::AlertState::Firing,
        fingerprint: litho_alert::fingerprint("unhealthy-run", "train-77-7"),
        subject: "train-77-7".to_string(),
        reason: "health verdict: nan".to_string(),
        value: None,
        streak: 1,
        first_seen_unix_s: 1,
        last_seen_unix_s: 1,
    };
    litho_alert::append_alerts(&runs, std::slice::from_ref(&alert)).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    fs::remove_dir_all(&run).unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    while child.try_wait().unwrap().is_none() {
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            panic!("watch kept waiting on a vanished run directory");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success(), "vanished run dir must be a hard error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("vanished"), "stderr:\n{stderr}");
    assert!(
        stderr.contains("alert [firing] unhealthy-run"),
        "live alert transition not echoed\nstderr:\n{stderr}"
    );
}

#[test]
fn watch_times_out_on_a_missing_run() {
    let dir = scratch("watch-missing");
    let out = cli()
        .args(["--runs-root"])
        .arg(dir.join("runs"))
        .args(["watch", "train-0-0", "--wait-s", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("watch"), "stderr:\n{stderr}");
}
