//! End-to-end tests for the alerting engine and crash forensics: a
//! genuinely poisoned training run must leave a complete
//! `runs/<id>/incident/` bundle and light up every alert surface — the
//! `alerts` CLI and its `--gate`, `runs/alerts.jsonl`, the dash's
//! `/api/alerts`, `/metrics` families and fleet-page banner — plus a
//! committed golden of the alert evaluation over the fixture fleet.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use litho_alert::{default_rules, evaluate, load_alerts, EngineContext};
use litho_ledger::reindex;

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lithogan_cli"));
    // E2e suites test CLI/ledger plumbing, not kernel numerics (that is
    // crates/tensor/tests/simd_levels.rs), so spawned processes always run
    // at the host's fastest level — an outer LITHO_SIMD=scalar pass must
    // not slow live trainers past the suites' timeouts.
    cmd.env("LITHO_SIMD", "auto");
    cmd
}

/// Fresh scratch directory per call; std-only stand-in for tempfile.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lithogan-alerts-cli-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(out: &Output) -> String {
    assert!(
        out.status.success(),
        "command failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

fn fixture(set: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/fleet")
        .join(set)
}

/// Spawns `dash --addr 127.0.0.1:0` and returns (child, "host:port")
/// parsed off the stdout announce line.
fn spawn_dash(runs: &Path) -> (Child, String) {
    let mut child = cli()
        .args(["--runs-root"])
        .arg(runs)
        .args(["dash", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.split("http://").nth(1) {
                    let addr = rest.split_whitespace().next().unwrap().to_string();
                    std::thread::spawn(move || for _ in lines.by_ref() {});
                    return (child, addr);
                }
            }
            _ => {
                child.kill().ok();
                child.wait().ok();
                panic!("dash exited before announcing its address");
            }
        }
        assert!(Instant::now() < deadline, "no announce line within 30s");
    }
}

/// One raw HTTP/1.1 request over a fresh connection; returns
/// (status, head, body) so header assertions are possible.
fn http(addr: &str, method: &str, path: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: dash\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = String::from_utf8(raw[..split].to_vec()).unwrap();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    (status, head, raw[split + 4..].to_vec())
}

fn shutdown_and_wait(mut child: Child, addr: &str) {
    let (status, _, _) = http(addr, "POST", "/shutdown");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(code) = child.try_wait().unwrap() {
            assert!(code.success(), "dash exited {code}");
            return;
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            panic!("dash did not exit within 30s of /shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The acceptance path of the whole feature: poison a real training run,
/// watch it die, then verify the incident bundle and every alert
/// surface agrees the fleet is on fire.
#[test]
fn poisoned_train_fires_alerts_and_dumps_incident() {
    let dir = scratch("poison");
    let runs = dir.join("runs");
    let data = dir.join("data.lgd");
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["generate", "--clips", "6", "--size", "32", "--out"])
        .arg(&data)
        .output()
        .unwrap();
    run_ok(&out);

    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["train", "--data"])
        .arg(&data)
        .args(["--seed", "7", "--epochs", "2", "--out"])
        .arg(dir.join("model.lgm"))
        // Stride 1: every step samples layer stats, so the bundle's
        // stats.jsonl is non-empty no matter how fast the abort lands.
        .args(["--poison-nan-at-epoch", "0", "--abort-on", "nan", "--health-stride", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "poisoned train must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("incident:"), "stderr:\n{stderr}");

    // The incident bundle is complete: every file present and non-empty.
    let run = fs::read_dir(&runs)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("train-"))
        .expect("train run dir");
    let incident = run.join("incident");
    for file in ["ring.jsonl", "panic.txt", "manifest.json", "counters.json", "stats.jsonl"] {
        let meta = fs::metadata(incident.join(file))
            .unwrap_or_else(|e| panic!("incident bundle missing {file}: {e}"));
        assert!(meta.len() > 0, "incident/{file} is empty");
    }
    let panic_txt = fs::read_to_string(incident.join("panic.txt")).unwrap();
    assert!(panic_txt.contains("reason: aborted(nan"), "{panic_txt}");
    assert!(panic_txt.contains("backtrace:"), "{panic_txt}");
    let counters = fs::read_to_string(incident.join("counters.json")).unwrap();
    assert!(counters.contains("\"tensor_alloc_bytes\":"), "{counters}");
    let stats = fs::read_to_string(incident.join("stats.jsonl")).unwrap();
    assert!(stats.contains("\"layer\""), "{stats}");

    // `alerts` fires the default health rule and persists the state.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .arg("alerts")
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(stdout.contains("unhealthy-run"), "stdout:\n{stdout}");
    assert!(stdout.contains("firing"), "stdout:\n{stdout}");
    let log = fs::read_to_string(runs.join("alerts.jsonl")).expect("alerts.jsonl written");
    assert!(log.contains("\"state\":\"firing\""), "alerts.jsonl:\n{log}");
    assert!(log.contains("\"rule\":\"unhealthy-run\""), "alerts.jsonl:\n{log}");

    // --json emits the active records as JSONL.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["alerts", "--json"])
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(stdout.contains("\"rule\":\"unhealthy-run\""), "stdout:\n{stdout}");

    // The gate goes red while an alert is firing.
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["alerts", "--gate"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "alerts --gate must fail while firing");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("firing"), "stderr:\n{stderr}");

    // Dash surfaces: JSON API, Prometheus families, fleet banner, and
    // the no-store cache policy on every response.
    let (dash, addr) = spawn_dash(&runs);
    let (status, head, body) = http(&addr, "GET", "/api/alerts");
    let body = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 200);
    assert!(head.contains("application/json; charset=utf-8"), "{head}");
    assert!(head.contains("Cache-Control: no-store"), "{head}");
    assert!(body.contains("\"rule\":\"unhealthy-run\""), "{body}");
    assert!(body.contains("\"state\":\"firing\""), "{body}");

    let (status, head, body) = http(&addr, "GET", "/metrics");
    let text = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 200);
    assert!(head.contains("Cache-Control: no-store"), "{head}");
    assert!(text.contains("# TYPE lithogan_alerts_firing gauge"), "{text}");
    assert!(
        text.contains("lithogan_alerts_firing{rule=\"unhealthy-run\",severity=\"page\"} 1"),
        "{text}"
    );
    assert!(text.contains("lithogan_alerts_active{state=\"firing\"} 1"), "{text}");

    let (status, head, body) = http(&addr, "GET", "/");
    let html = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 200);
    assert!(head.contains("Cache-Control: no-store"), "{head}");
    assert!(html.contains("class=\"alerts\""), "fleet page lacks the banner:\n{html}");
    assert!(html.contains("unhealthy-run"), "{html}");

    let (_, head, _) = http(&addr, "GET", "/api/runs");
    assert!(head.contains("application/json; charset=utf-8"), "{head}");
    shutdown_and_wait(dash, &addr);
}

/// A healthy fleet produces no alerts and a green gate; a broken rules
/// file is rejected with the offending file named.
#[test]
fn alerts_gate_passes_on_a_clean_fleet() {
    let dir = scratch("clean");
    let runs = dir.join("runs");
    copy_tree(&fixture("clean"), &runs);
    reindex(&runs).unwrap();

    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["alerts", "--gate"])
        .output()
        .unwrap();
    let stdout = run_ok(&out);
    assert!(stdout.contains("no active alerts"), "stdout:\n{stdout}");
    assert!(stdout.contains("alerts gate: PASS"), "stdout:\n{stdout}");
    // Nothing fired, nothing persisted.
    assert!(!runs.join("alerts.jsonl").exists());

    let rules = dir.join("bad.toml");
    fs::write(&rules, "[[rule]]\nname = \"x\"\nkind = \"health\"\nbogus = 1\n").unwrap();
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["alerts", "--rules"])
        .arg(&rules)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.toml"), "stderr:\n{stderr}");
    assert!(stderr.contains("unknown key"), "stderr:\n{stderr}");
}

/// The alert evaluation over the committed regressed fleet, pinned by a
/// golden: same records, same rules, same clock → byte-identical table
/// and JSONL. `BLESS=1 cargo test -p lithogan --test alerts_cli`
/// regenerates it.
#[test]
fn alert_evaluation_matches_the_committed_golden() {
    let dir = scratch("golden");
    let runs = dir.join("runs");
    copy_tree(&fixture("clean"), &runs);
    copy_tree(&fixture("regressed"), &runs);
    let records = reindex(&runs).unwrap().records;

    // Fixed clock: the fixture's timestamps are 1.7e9-era, and `now`
    // stamps first/last-seen, so the rendered table is deterministic.
    let outcome = evaluate(
        &default_rules(),
        &EngineContext {
            records: &records,
            runs_root: &runs,
            now_unix_s: 1_700_001_000,
        },
        &[],
    );
    litho_alert::append_alerts(&runs, &outcome.transitions).unwrap();

    let mut text = litho_alert::render_alerts_table(&outcome.active);
    text.push_str("---\n");
    for rec in &outcome.transitions {
        text.push_str(&rec.to_jsonl());
    }

    let golden_path = fixture("alerts.golden.txt");
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden_path, &text).unwrap();
    }
    let golden = fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert_eq!(
        text, golden,
        "alert evaluation drifted from {}; if intentional, update the golden",
        golden_path.display()
    );

    // What was just persisted replays to the same active set.
    let load = load_alerts(&runs).unwrap();
    assert_eq!(load.alerts.len(), outcome.transitions.len());
    assert_eq!(load.active().len(), outcome.active.len());
}
