//! End-to-end CLI tests for the model-health pipeline: `train --health`
//! streams health.jsonl, `--abort-on nan` stops a poisoned run with a
//! nonzero exit and an `aborted(..)` manifest, and the `health`
//! subcommand renders the report / enforces `--fail-on`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lithogan_cli"));
    // E2e suites test CLI/ledger plumbing, not kernel numerics (that is
    // crates/tensor/tests/simd_levels.rs), so spawned processes always run
    // at the host's fastest level — an outer LITHO_SIMD=scalar pass must
    // not slow live trainers past the suites' timeouts.
    cmd.env("LITHO_SIMD", "auto");
    cmd
}

/// Fresh scratch directory per call; std-only stand-in for tempfile.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lithogan-health-cli-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(out: &Output) -> String {
    assert!(
        out.status.success(),
        "command failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn generate(dir: &Path) -> PathBuf {
    let data = dir.join("data.lgd");
    let out = cli()
        .args(["--runs-root"])
        .arg(dir.join("runs"))
        .args(["generate", "--clips", "6", "--size", "32", "--out"])
        .arg(&data)
        .output()
        .unwrap();
    run_ok(&out);
    data
}

/// Trains once under `runs/` and returns (run directory, process output).
fn train(dir: &Path, data: &Path, extra: &[&str]) -> (PathBuf, Output) {
    let runs = dir.join("runs");
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["train", "--data"])
        .arg(data)
        .args(["--epochs", "1", "--seed", "7", "--out"])
        .arg(dir.join("model.lgm"))
        .args(extra)
        .output()
        .unwrap();
    let run = fs::read_dir(&runs)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("train-"))
        .expect("run directory created");
    (run, out)
}

#[test]
fn healthy_train_streams_health_and_renders_report() {
    let dir = scratch("ok");
    let data = generate(&dir);
    let (run, out) = train(&dir, &data, &["--health", "--health-stride", "2"]);
    run_ok(&out);

    let jsonl = fs::read_to_string(run.join("health.jsonl")).expect("health.jsonl written");
    assert!(jsonl.contains("\"kind\":\"layer\""), "layer records present");
    assert!(jsonl.contains("\"kind\":\"gan_epoch\""), "gan epoch records present");
    assert!(jsonl.contains("\"kind\":\"center_epoch\""), "center epoch records present");

    let manifest = fs::read_to_string(run.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"status\":\"ok\""), "manifest: {manifest}");

    // `health <run>` renders tables, writes the SVG panel and exits 0 --
    // including with a --fail-on list, since a healthy run fires neither.
    let run_id = run.file_name().unwrap().to_string_lossy().into_owned();
    let out = cli()
        .args(["--runs-root"])
        .arg(dir.join("runs"))
        .args(["health", &run_id, "--fail-on", "nan,dead-layer"])
        .output()
        .unwrap();
    let text = run_ok(&out);
    assert!(text.contains("== health "), "header: {text}");
    assert!(text.contains("activations"), "activation table: {text}");
    assert!(text.contains("gradients"), "gradient table: {text}");
    assert!(text.contains("update/weight"), "update table: {text}");
    let svg = fs::read_to_string(run.join("health.svg")).expect("health.svg written");
    assert!(svg.starts_with("<svg "));

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn abort_on_nan_stops_a_poisoned_run() {
    let dir = scratch("nan");
    let data = generate(&dir);
    let (run, out) = train(
        &dir,
        &data,
        &["--abort-on", "nan", "--poison-nan-at-epoch", "0"],
    );
    assert!(
        !out.status.success(),
        "poisoned run must exit nonzero\nstdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nan"), "abort reason surfaced: {stderr}");

    let manifest = fs::read_to_string(run.join("manifest.json")).unwrap();
    assert!(
        manifest.contains("\"status\":\"aborted("),
        "manifest records abort: {manifest}"
    );

    // The flushed stream carries the sentinel, so `health --fail-on nan`
    // exits nonzero while a plain `health` still renders.
    let run_id = run.file_name().unwrap().to_string_lossy().into_owned();
    let plain = cli()
        .args(["--runs-root"])
        .arg(dir.join("runs"))
        .args(["health", &run_id])
        .output()
        .unwrap();
    let text = run_ok(&plain);
    assert!(text.contains("nan-poisoned"), "diagnosis listed: {text}");

    let gated = cli()
        .args(["--runs-root"])
        .arg(dir.join("runs"))
        .args(["health", &run_id, "--fail-on", "nan"])
        .output()
        .unwrap();
    assert!(!gated.status.success(), "--fail-on nan must exit nonzero");
    let err = String::from_utf8_lossy(&gated.stderr);
    assert!(err.contains("health check failed"), "stderr: {err}");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn health_on_run_without_stream_is_a_clear_error() {
    let dir = scratch("nostream");
    let data = generate(&dir);
    let (run, out) = train(&dir, &data, &[]);
    run_ok(&out);
    assert!(!run.join("health.jsonl").exists());

    let run_id = run.file_name().unwrap().to_string_lossy().into_owned();
    let out = cli()
        .args(["--runs-root"])
        .arg(dir.join("runs"))
        .args(["health", &run_id])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--health"), "points at the flag: {err}");

    fs::remove_dir_all(&dir).ok();
}
