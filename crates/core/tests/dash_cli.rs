//! End-to-end tests for the `dash` observability daemon: every route
//! against the committed fleet fixtures, a golden check of the
//! `/metrics` Prometheus exposition, run-id traversal rejection at the
//! HTTP boundary, concurrent `/metrics` clients while a real background
//! `train` appends to its trace (the JsonlTailer-under-poll-loop case),
//! and the clean-shutdown contract: the daemon finalizes its own run
//! manifest and exits 0.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use litho_ledger::{load_index, prometheus_exposition, TrendConfig};

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lithogan_cli"));
    // E2e suites test CLI/ledger plumbing, not kernel numerics (that is
    // crates/tensor/tests/simd_levels.rs), so spawned processes always run
    // at the host's fastest level — an outer LITHO_SIMD=scalar pass must
    // not slow live trainers past the suites' timeouts.
    cmd.env("LITHO_SIMD", "auto");
    cmd
}

/// Fresh scratch directory per call; std-only stand-in for tempfile.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lithogan-dash-cli-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(out: &Output) -> String {
    assert!(
        out.status.success(),
        "command failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

fn fixture(set: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/fleet")
        .join(set)
}

fn reindex(runs: &Path) {
    let out = cli()
        .args(["--runs-root"])
        .arg(runs)
        .arg("reindex")
        .output()
        .unwrap();
    run_ok(&out);
}

/// Spawns `dash --addr 127.0.0.1:0` and returns (child, "host:port")
/// parsed off the stdout announce line.
fn spawn_dash(runs: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = cli()
        .args(["--runs-root"])
        .arg(runs)
        .args(["dash", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.split("http://").nth(1) {
                    let addr = rest.split_whitespace().next().unwrap().to_string();
                    // Keep draining stdout so the child never blocks on a
                    // full pipe.
                    std::thread::spawn(move || for _ in lines.by_ref() {});
                    return (child, addr);
                }
            }
            _ => {
                child.kill().ok();
                child.wait().ok();
                panic!("dash exited before announcing its address");
            }
        }
        assert!(Instant::now() < deadline, "no announce line within 30s");
    }
}

/// One raw HTTP/1.1 request over a fresh connection; returns
/// (status, head, body).
fn http(addr: &str, method: &str, path: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: dash\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = String::from_utf8(raw[..split].to_vec()).unwrap();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    (status, head, raw[split + 4..].to_vec())
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let (status, _, body) = http(addr, "GET", path);
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn shutdown_and_wait(mut child: Child, addr: &str) {
    let (status, _, _) = http(addr, "POST", "/shutdown");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(code) = child.try_wait().unwrap() {
            assert!(code.success(), "dash exited {code}");
            return;
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            panic!("dash did not exit within 30s of /shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn dash_serves_every_route_over_the_fixture_fleet() {
    let dir = scratch("routes");
    let runs = dir.join("runs");
    copy_tree(&fixture("clean"), &runs);
    reindex(&runs);
    let (child, addr) = spawn_dash(&runs, &[]);

    // HTML fleet page lists the runs and links the API.
    let (status, body) = get(&addr, "/");
    assert_eq!(status, 200);
    assert!(body.contains("train-1700000100-1"), "fleet page:\n{body}");
    assert!(body.contains("/api/runs"), "fleet page:\n{body}");

    // Prometheus exposition: typed families, fixture counts, no NaN.
    let (status, text) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(text.contains("# TYPE lithogan_runs_total gauge"), "{text}");
    assert!(text.contains("lithogan_runs_total{status=\"ok\"} 4"), "{text}");
    assert!(
        text.contains("lithogan_latest_metric{command=\"train\",metric=\"ede_mean_nm\"}"),
        "{text}"
    );
    // The daemon's own accounting shows up once it has served requests.
    assert!(text.contains("lithogan_dash_http_requests_total"), "{text}");
    assert!(!text.contains("NaN"), "absent metrics must be absent:\n{text}");

    // JSON API: the full index, then one run with manifest + artifacts.
    let (status, body) = get(&addr, "/api/runs");
    assert_eq!(status, 200);
    assert_eq!(body.matches("\"run_id\"").count(), 4, "{body}");
    let (status, body) = get(&addr, "/api/runs/train-1700000100-1");
    assert_eq!(status, 200);
    assert!(body.contains("\"manifest\""), "{body}");
    assert!(body.contains("/runs/train-1700000100-1/dashboard.svg"), "{body}");
    assert_eq!(get(&addr, "/api/runs/no-such-run").0, 404);

    // SVG renders on demand; missing streams are 404, not 500.
    let (status, svg) = get(&addr, "/runs/train-1700000100-1/dashboard.svg");
    assert_eq!(status, 200);
    assert!(svg.starts_with("<svg"), "{svg}");
    let (status, svg) = get(&addr, "/runs/train-1700000100-1/trend.svg");
    assert_eq!(status, 200);
    assert!(svg.starts_with("<svg"), "{svg}");
    let (status, svg) = get(&addr, "/runs/train-1700000100-1/triage.svg");
    assert_eq!(status, 200);
    assert!(svg.starts_with("<svg"), "{svg}");
    assert!(svg.contains("train-1700000100-1"), "{svg}");

    // Eval forensics API: summary + per-family slices + worst clips.
    let (status, body) = get(&addr, "/api/eval/train-1700000100-1");
    assert_eq!(status, 200);
    assert!(body.contains("\"summary\""), "{body}");
    assert!(body.contains("\"slices\""), "{body}");
    assert!(body.contains("\"worst\""), "{body}");
    assert!(body.contains("\"clip_fingerprint\":\"00000000deadbee0\""), "{body}");
    assert!(body.contains("/runs/train-1700000100-1/triage.svg"), "{body}");
    assert!(!body.contains("NaN"), "absent slice metrics must be absent:\n{body}");
    assert_eq!(get(&addr, "/api/eval/no-such-run").0, 404);
    assert_eq!(get(&addr, "/api/eval/../secrets").0, 400);
    // Fixture runs carry no health.jsonl / trace.jsonl.
    assert_eq!(get(&addr, "/runs/train-1700000100-1/health.svg").0, 404);
    assert_eq!(get(&addr, "/runs/train-1700000100-1/flamegraph.svg").0, 404);

    // Run-id traversal is rejected at the HTTP boundary.
    assert_eq!(get(&addr, "/api/runs/../secrets").0, 400);
    assert_eq!(get(&addr, "/runs/../../etc/dashboard.svg").0, 400);
    // Percent-encoded traversal still carries a literal ".." — rejected
    // too (the server never percent-decodes paths).
    assert_eq!(get(&addr, "/runs/..%2F..%2Fetc/dashboard.svg").0, 400);

    assert_eq!(get(&addr, "/no-such-page").0, 404);
    assert_eq!(http(&addr, "DELETE", "/").0, 405);

    shutdown_and_wait(child, &addr);

    // The daemon recorded itself: finalized manifest, indexed run, and
    // its request histogram summarized into the trace.
    let index = fs::read_to_string(runs.join("index.jsonl")).unwrap();
    assert!(index.contains("\"command\":\"dash\""), "index:\n{index}");
    let dash_dir = fs::read_dir(&runs)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("dash-"))
        .expect("dash run dir");
    let manifest = fs::read_to_string(dash_dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"status\":\"ok\""), "manifest:\n{manifest}");
    let trace = fs::read_to_string(dash_dir.join("trace.jsonl")).unwrap();
    assert!(trace.contains("hist_summary"), "trace:\n{trace}");
    assert!(trace.contains("http.request_s"), "trace:\n{trace}");
}

#[test]
fn metrics_exposition_matches_the_committed_golden() {
    let dir = scratch("golden");
    let runs = dir.join("runs");
    copy_tree(&fixture("clean"), &runs);
    copy_tree(&fixture("regressed"), &runs);
    reindex(&runs);

    // Pure function of the index: no live runs, no self metrics — the
    // same records the daemon would serve.
    let records = load_index(&runs).unwrap().records;
    let text = prometheus_exposition(&records, &[], None, &TrendConfig::default());

    let golden_path = fixture("metrics.golden.txt");
    // `BLESS=1 cargo test -p lithogan --test dash_cli` regenerates it.
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden_path, &text).unwrap();
    }
    let golden = fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert_eq!(
        text, golden,
        "exposition drifted from {}; if intentional, update the golden",
        golden_path.display()
    );

    // Schema guarantees the golden encodes: every sample line's family is
    // declared with # HELP and # TYPE, and absent metrics stay absent.
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let family = line.split(['{', ' ']).next().unwrap();
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "undeclared family {family}"
        );
        assert!(
            text.contains(&format!("# HELP {family} ")),
            "family {family} lacks HELP"
        );
    }
    assert!(!text.contains("NaN"), "{text}");
}

/// Spawns a background `train` against `runs` and returns the child once
/// its run directory exists.
#[allow(clippy::zombie_processes)]
fn spawn_train(dir: &Path, data: &Path) -> (Child, String) {
    let runs = dir.join("runs");
    let mut child = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["train", "--data"])
        .arg(data)
        .args(["--seed", "7", "--epochs", "3", "--out"])
        .arg(dir.join("model.lgm"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(entries) = fs::read_dir(&runs) {
            if let Some(run) = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("train-"))
            {
                return (child, run.file_name().unwrap().to_string_lossy().into_owned());
            }
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            panic!("train never created a run dir");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn concurrent_metrics_clients_while_a_train_appends() {
    let dir = scratch("live");
    let runs = dir.join("runs");
    let data = dir.join("data.lgd");
    let out = cli()
        .args(["--runs-root"])
        .arg(&runs)
        .args(["generate", "--clips", "10", "--size", "32", "--out"])
        .arg(&data)
        .output()
        .unwrap();
    run_ok(&out);

    let (dash, addr) = spawn_dash(&runs, &[]);
    let (mut train, train_id) = spawn_train(&dir, &data);

    // 8 clients hammer /metrics while the trainer appends to its trace;
    // every response must be a complete, well-formed exposition — the
    // tailer never surfaces a torn line as a sample.
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut epochs_seen: Vec<u64> = Vec::new();
                for _ in 0..25 {
                    let (status, text) = get(&addr, "/metrics");
                    assert_eq!(status, 200);
                    assert!(text.ends_with('\n'), "truncated exposition:\n{text}");
                    if let Some(line) = text
                        .lines()
                        .find(|l| l.starts_with("lithogan_live_epochs_total"))
                    {
                        let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                        epochs_seen.push(v as u64);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                epochs_seen
            })
        })
        .collect();
    for client in clients {
        let epochs = client.join().unwrap();
        // Live gauges only ever advance while a run is tailed.
        assert!(
            epochs.windows(2).all(|w| w[0] <= w[1]),
            "epoch gauge went backwards: {epochs:?}"
        );
    }

    assert!(train.wait().unwrap().success());
    // Once the trainer finalized, the fleet view shows it as a completed
    // run (the live session retires on its own).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, text) = get(&addr, "/metrics");
        assert_eq!(status, 200);
        if text.contains("lithogan_runs_total{status=\"ok\"} 2") {
            assert!(
                !text.contains(&format!("lithogan_live_epochs_total{{run=\"{train_id}\"}}")),
                "finished run still tailed:\n{text}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "train never reached the index:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    shutdown_and_wait(dash, &addr);
}
