//! The conditional GAN and its training loop (paper §3.2, Eq. 1–3).

use litho_tensor::rng::StdRng;
use litho_tensor::rng::SliceRandom;
use litho_tensor::rng::SeedableRng;

use litho_nn::{bce_with_logits, l1_loss, mse_loss, Adam, Layer, Optimizer, Phase, Sequential};
use litho_tensor::{Result, Tensor, TensorError};

use crate::health::{poison_param, HealthMonitor, LoopHealth};
use crate::NetConfig;

/// Reconstruction-loss flavour of Eq. 2's pixel term (the paper uses ℓ1;
/// ℓ2 is provided for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconLoss {
    /// Mean absolute error (paper default — "less blurring").
    L1,
    /// Mean squared error (ablation).
    L2,
}

/// GAN training hyper-parameters (paper §4: batch 4, 80 epochs, λ = 100,
/// Adam lr 2e-4, momentum (0.5, 0.999)).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// ℓ1 weight λ in Eq. 3.
    pub lambda: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Adam β₁.
    pub beta1: f32,
    /// Adam β₂.
    pub beta2: f32,
    /// Reconstruction-loss flavour.
    pub recon: ReconLoss,
    /// Random horizontal/vertical flip augmentation of (input, target)
    /// pairs. An extension beyond the paper (which reports no
    /// augmentation); flips are geometrically valid because mask and
    /// resist transform together under mirror symmetry.
    pub augment: bool,
    /// Shuffle seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 80,
            batch_size: 4,
            lambda: 100.0,
            learning_rate: 2e-4,
            beta1: 0.5,
            beta2: 0.999,
            recon: ReconLoss::L1,
            augment: false,
            seed: 0,
        }
    }
}

/// Per-epoch loss curves (paper Figure 9).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainHistory {
    /// Mean generator loss per epoch (adversarial + λ·ℓ1 terms).
    pub g_loss: Vec<f32>,
    /// Mean discriminator loss per epoch.
    pub d_loss: Vec<f32>,
}

/// One training pair in network representation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainPair {
    /// Mask image `[3, S, S]`, values in `[-1, 1]`.
    pub input: Tensor,
    /// Resist image `[1, S, S]`, values in `[-1, 1]`.
    pub target: Tensor,
}

impl TrainPair {
    /// Builds a pair from dataset-space images (mask `[3, S, S]` in
    /// `[0, 1]`, resist `[S, S]` in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns a tensor error if shapes are not as described.
    pub fn from_dataset(mask: &Tensor, resist: &Tensor) -> Result<Self> {
        let md = mask.dims();
        let rd = resist.dims();
        if md.len() != 3 || rd.len() != 2 || md[1] != rd[0] || md[2] != rd[1] {
            return Err(TensorError::InvalidArgument(format!(
                "expected mask [3,S,S] and resist [S,S], got {md:?} and {rd:?}"
            )));
        }
        let input = mask.map(|v| v * 2.0 - 1.0);
        let target = resist.map(|v| v * 2.0 - 1.0).reshape(&[1, rd[0], rd[1]])?;
        Ok(TrainPair { input, target })
    }
}

/// Loss components of one alternating D/G update.
struct StepLosses {
    g_loss: f32,
    d_loss: f32,
    recon_loss: f32,
}

/// ℓ2 norm of all parameter gradients currently stored in `net`,
/// computed only when telemetry is enabled.
pub(crate) fn grad_norm(net: &mut Sequential) -> f64 {
    let mut sum_sq = 0.0f64;
    net.visit_params(&mut |p| {
        for &g in p.grad.as_slice() {
            sum_sq += (g as f64) * (g as f64);
        }
    });
    sum_sq.sqrt()
}

/// The conditional GAN: generator, discriminator and their optimizers.
#[derive(Debug)]
pub struct Cgan {
    net: NetConfig,
    generator: Sequential,
    discriminator: Sequential,
    opt_g: Adam,
    opt_d: Adam,
    health: Option<LoopHealth>,
}

impl Cgan {
    /// Builds a fresh CGAN with weights seeded by `seed`.
    pub fn new(net: &NetConfig, seed: u64) -> Self {
        let cfg = TrainConfig::paper();
        Cgan::with_train_config(net, &cfg, seed)
    }

    /// Builds a CGAN whose optimizers use the given hyper-parameters.
    pub fn with_train_config(net: &NetConfig, cfg: &TrainConfig, seed: u64) -> Self {
        Cgan {
            net: net.clone(),
            generator: net.build_generator(seed),
            discriminator: net.build_discriminator(seed.wrapping_add(1)),
            opt_g: Adam::new(cfg.learning_rate, cfg.beta1, cfg.beta2),
            opt_d: Adam::new(cfg.learning_rate, cfg.beta1, cfg.beta2),
            health: None,
        }
    }

    /// Installs model-health instrumentation: per-layer stats hooks on
    /// both networks (nets `"G"` / `"D"`), update-ratio tracking on
    /// sampled optimizer steps, and per-epoch GAN balance signals.
    pub fn attach_health(&mut self, monitor: &HealthMonitor) {
        self.generator.set_stats_hook(Some(monitor.layer_hook("G")));
        self.discriminator
            .set_stats_hook(Some(monitor.layer_hook("D")));
        self.health = Some(monitor.loop_state("cgan"));
    }

    /// The architecture configuration.
    pub fn net_config(&self) -> &NetConfig {
        &self.net
    }

    /// Mutable access to the generator (weight (de)serialization).
    pub fn generator_mut(&mut self) -> &mut Sequential {
        &mut self.generator
    }

    /// Mutable access to the discriminator (weight (de)serialization).
    pub fn discriminator_mut(&mut self) -> &mut Sequential {
        &mut self.discriminator
    }

    /// Runs one training epoch over `pairs`, returning the mean
    /// `(generator, discriminator)` losses.
    ///
    /// The standard alternating schedule (paper §3.2: "one step of
    /// optimizing D and one step of optimizing G") is applied per
    /// mini-batch.
    ///
    /// # Errors
    ///
    /// Propagates tensor/shape errors; `pairs` must be non-empty.
    pub fn train_epoch(
        &mut self,
        pairs: &[TrainPair],
        cfg: &TrainConfig,
        epoch: usize,
    ) -> Result<(f32, f32)> {
        if pairs.is_empty() {
            return Err(TensorError::InvalidArgument(
                "cannot train on an empty pair set".into(),
            ));
        }
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(epoch as u64));
        order.shuffle(&mut rng);

        if let Some(h) = self.health.as_mut() {
            if h.begin_epoch(epoch) {
                poison_param(&mut self.generator);
            }
        }

        let _span = litho_telemetry::span("train/epoch");
        let pool_base = litho_tensor::pool::stats();
        let epoch_start = std::time::Instant::now();
        let mut g_total = 0.0f64;
        let mut d_total = 0.0f64;
        let mut recon_total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let mut x = Tensor::stack(
                &chunk.iter().map(|&i| pairs[i].input.clone()).collect::<Vec<_>>(),
            )?;
            let mut y = Tensor::stack(
                &chunk.iter().map(|&i| pairs[i].target.clone()).collect::<Vec<_>>(),
            )?;
            if cfg.augment {
                use litho_tensor::rng::Rng;
                if rng.gen_bool(0.5) {
                    x = litho_tensor::ops::flip_horizontal(&x)?;
                    y = litho_tensor::ops::flip_horizontal(&y)?;
                }
                if rng.gen_bool(0.5) {
                    x = litho_tensor::ops::flip_vertical(&x)?;
                    y = litho_tensor::ops::flip_vertical(&y)?;
                }
            }
            let step = self.train_step(&x, &y, cfg)?;
            g_total += step.g_loss as f64;
            d_total += step.d_loss as f64;
            recon_total += step.recon_loss as f64;
            batches += 1;
        }
        let g_mean = (g_total / batches as f64) as f32;
        let d_mean = (d_total / batches as f64) as f32;

        if litho_telemetry::is_enabled() {
            use litho_telemetry::Value;
            let elapsed = epoch_start.elapsed().as_secs_f64();
            let samples_per_sec = pairs.len() as f64 / elapsed.max(1e-12);
            litho_telemetry::event(
                "train_epoch",
                &[
                    ("epoch", Value::U64(epoch as u64)),
                    ("g_loss", Value::F64(g_mean as f64)),
                    ("d_loss", Value::F64(d_mean as f64)),
                    ("recon_loss", Value::F64((recon_total / batches as f64) as f32 as f64)),
                    ("g_grad_norm", Value::F64(grad_norm(&mut self.generator))),
                    ("d_grad_norm", Value::F64(grad_norm(&mut self.discriminator))),
                    ("samples_per_sec", Value::F64(samples_per_sec)),
                ],
            );
            litho_telemetry::gauge_set("train.g_loss", g_mean as f64);
            litho_telemetry::gauge_set("train.d_loss", d_mean as f64);
            litho_telemetry::observe("train.epoch_seconds", elapsed);
            litho_telemetry::counter_add("train.epochs", 1);
            litho_telemetry::counter_add("train.samples", pairs.len() as u64);
            // Worker-pool profile of this epoch's parallel regions (only
            // populated when pool profiling is on; see pool::set_profiling).
            let pool = litho_tensor::pool::stats().delta_since(&pool_base);
            if let Some(util) = pool.utilization() {
                litho_telemetry::gauge_set("pool.utilization", util);
            }
            if let Some(balance) = pool.balance() {
                litho_telemetry::gauge_set("pool.balance", balance);
            }
        }
        if let Some(h) = self.health.as_mut() {
            h.end_gan_epoch(epoch, g_mean as f64, d_mean as f64)?;
        }
        Ok((g_mean, d_mean))
    }

    /// One alternating D/G update on a batch `x [n,3,S,S]`, `y [n,1,S,S]`.
    fn train_step(&mut self, x: &Tensor, y: &Tensor, cfg: &TrainConfig) -> Result<StepLosses> {
        let n = x.dims()[0];

        // Update-ratio tracking is enabled only on sampled steps so the
        // optimizer inner loop stays free of the extra accumulation on
        // the common path.
        let sampled = match self.health.as_mut() {
            Some(h) => h.begin_step(),
            None => false,
        };
        if sampled {
            self.opt_d.set_update_tracking(true);
            self.opt_g.set_update_tracking(true);
        }

        // ---- Discriminator step (Eq. 1) -------------------------------
        // Fake sample, detached (generator caches are discarded by the
        // eval-mode forward... we need dropout active though, so run in
        // train mode and simply never call backward on the generator).
        let fake = self.generator.forward(x, Phase::Train)?;

        self.discriminator.zero_grad();
        let real_pair = Tensor::concat_channels(&[x, y])?;
        let real_logits = self.discriminator.forward(&real_pair, Phase::Train)?;
        let ones = Tensor::ones(&[n, 1]);
        let real_loss = bce_with_logits(&real_logits, &ones)?;
        self.discriminator.backward(&real_loss.grad)?;

        let fake_pair = Tensor::concat_channels(&[x, &fake])?;
        let fake_logits = self.discriminator.forward(&fake_pair, Phase::Train)?;
        let zeros = Tensor::zeros(&[n, 1]);
        let fake_loss = bce_with_logits(&fake_logits, &zeros)?;
        self.discriminator.backward(&fake_loss.grad)?;
        self.opt_d.step(&mut self.discriminator);
        let d_loss = real_loss.loss + fake_loss.loss;

        if let Some(h) = self.health.as_mut() {
            h.observe_d_batch(&real_logits, &fake_logits);
            h.observe_g_batch(&fake);
            if sampled {
                h.record_updates("D".to_string(), &self.opt_d);
            }
        }

        // ---- Generator step (Eq. 2) -----------------------------------
        self.generator.zero_grad();
        let fake = self.generator.forward(x, Phase::Train)?;
        let fake_pair = Tensor::concat_channels(&[x, &fake])?;
        let logits = self.discriminator.forward(&fake_pair, Phase::Train)?;
        let adv = bce_with_logits(&logits, &ones)?;
        // Backprop the adversarial term through D to get the gradient at
        // D's input; D's own parameter gradients are polluted here but are
        // zeroed at the start of the next D step.
        let d_input_grad = self.discriminator.backward(&adv.grad)?;
        let chans = self.net.in_channels;
        let parts = d_input_grad.split_channels(&[chans, self.net.out_channels])?;
        let mut g_output_grad = parts[1].clone();

        let recon = match cfg.recon {
            ReconLoss::L1 => l1_loss(&fake, y)?,
            ReconLoss::L2 => mse_loss(&fake, y)?,
        };
        g_output_grad.add_scaled_assign(&recon.grad, cfg.lambda)?;
        self.generator.backward(&g_output_grad)?;
        self.opt_g.step(&mut self.generator);
        let g_loss = adv.loss + cfg.lambda * recon.loss;

        if sampled {
            if let Some(h) = self.health.as_mut() {
                h.record_updates("G".to_string(), &self.opt_g);
            }
            self.opt_d.set_update_tracking(false);
            self.opt_g.set_update_tracking(false);
        }

        Ok(StepLosses {
            g_loss,
            d_loss,
            recon_loss: recon.loss,
        })
    }

    /// Trains for `cfg.epochs`, invoking `on_epoch(epoch, &mut self)`
    /// after each epoch (used by the Figure-8 snapshot bench).
    ///
    /// # Errors
    ///
    /// Propagates [`Cgan::train_epoch`] errors.
    pub fn train<F>(
        &mut self,
        pairs: &[TrainPair],
        cfg: &TrainConfig,
        mut on_epoch: F,
    ) -> Result<TrainHistory>
    where
        F: FnMut(usize, &mut Cgan),
    {
        let mut history = TrainHistory::default();
        for epoch in 0..cfg.epochs {
            let (g, d) = self.train_epoch(pairs, cfg, epoch)?;
            history.g_loss.push(g);
            history.d_loss.push(d);
            on_epoch(epoch, self);
        }
        Ok(history)
    }

    /// Generates a resist image for one mask image `[3, S, S]` in
    /// `[0, 1]`, returning `[S, S]` in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for wrong input shapes.
    pub fn predict(&mut self, mask: &Tensor) -> Result<Tensor> {
        let dims = mask.dims().to_vec();
        if dims.len() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: dims.len(),
            });
        }
        let x = mask
            .map(|v| v * 2.0 - 1.0)
            .reshape(&[1, dims[0], dims[1], dims[2]])?;
        let y = self.generator.forward(&x, Phase::Eval)?;
        y.map(|v| (v + 1.0) / 2.0).reshape(&[dims[1], dims[2]])
    }

    /// Generates resist images for a batch of `[3, S, S]` masks in one
    /// stacked forward pass.
    ///
    /// In [`Phase::Eval`] every kernel treats samples independently
    /// (batch norm uses running statistics; each GEMM output column folds
    /// over its own inputs), so each result is bit-identical to a
    /// single-mask [`Cgan::predict`] call — batching only buys the bigger
    /// matrices that keep the worker pool busy.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for wrong or mismatched input shapes.
    pub fn predict_batch(&mut self, masks: &[&Tensor]) -> Result<Vec<Tensor>> {
        let Some(first) = masks.first() else {
            return Ok(Vec::new());
        };
        let dims = first.dims().to_vec();
        if dims.len() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: dims.len(),
            });
        }
        let mut data = Vec::with_capacity(masks.len() * first.len());
        for mask in masks {
            if mask.dims() != dims {
                return Err(TensorError::ShapeMismatch {
                    left: mask.dims().to_vec(),
                    right: dims.clone(),
                });
            }
            data.extend(mask.as_slice().iter().map(|&v| v * 2.0 - 1.0));
        }
        let x = Tensor::from_vec(data, &[masks.len(), dims[0], dims[1], dims[2]])?;
        let y = self.generator.forward(&x, Phase::Eval)?;
        let plane = dims[1] * dims[2];
        let ys = y.as_slice();
        (0..masks.len())
            .map(|i| {
                let data = ys[i * plane..(i + 1) * plane]
                    .iter()
                    .map(|&v| (v + 1.0) / 2.0)
                    .collect();
                Tensor::from_vec(data, &[dims[1], dims[2]])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_pairs(size: usize, n: usize) -> Vec<TrainPair> {
        // Target = the green channel of the mask shifted into [-1,1]:
        // an easy identity-ish mapping the GAN should learn quickly.
        (0..n)
            .map(|i| {
                let mut mask = Tensor::zeros(&[3, size, size]);
                let c = size / 2;
                let r = 2 + i % 3;
                for y in c - r..c + r {
                    for x in c - r..c + r {
                        mask.set(&[1, y, x], 1.0).unwrap();
                    }
                }
                let resist = mask.split_channels_stub(size);
                TrainPair::from_dataset(&mask, &resist).unwrap()
            })
            .collect()
    }

    trait GreenChannel {
        fn split_channels_stub(&self, size: usize) -> Tensor;
    }
    impl GreenChannel for Tensor {
        fn split_channels_stub(&self, size: usize) -> Tensor {
            let data = self.as_slice()[size * size..2 * size * size].to_vec();
            Tensor::from_vec(data, &[size, size]).unwrap()
        }
    }

    #[test]
    fn train_pair_validates_and_rescales() {
        let mask = Tensor::full(&[3, 8, 8], 1.0);
        let resist = Tensor::zeros(&[8, 8]);
        let p = TrainPair::from_dataset(&mask, &resist).unwrap();
        assert_eq!(p.input.max(), 1.0);
        assert_eq!(p.target.min(), -1.0);
        assert!(TrainPair::from_dataset(&mask, &Tensor::zeros(&[4, 4])).is_err());
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let net = NetConfig::scaled(16);
        let mut cgan = Cgan::new(&net, 0);
        assert!(cgan.train_epoch(&[], &TrainConfig::paper(), 0).is_err());
    }

    #[test]
    fn one_epoch_runs_and_reports_losses() {
        let net = NetConfig::scaled(16);
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::paper()
        };
        let mut cgan = Cgan::with_train_config(&net, &cfg, 0);
        let pairs = toy_pairs(16, 6);
        let (g, d) = cgan.train_epoch(&pairs, &cfg, 0).unwrap();
        assert!(g.is_finite() && g > 0.0);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let net = NetConfig::scaled(16);
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 4,
            seed: 3,
            ..TrainConfig::paper()
        };
        let mut cgan = Cgan::with_train_config(&net, &cfg, 1);
        let pairs = toy_pairs(16, 8);

        let err = |cgan: &mut Cgan| -> f32 {
            let mask = pairs[0].input.map(|v| (v + 1.0) / 2.0);
            let pred = cgan.predict(&mask).unwrap();
            let target = pairs[0].target.map(|v| (v + 1.0) / 2.0).reshape(&[16, 16]).unwrap();
            pred.mean_abs_diff(&target).unwrap()
        };
        let before = err(&mut cgan);
        let history = cgan.train(&pairs, &cfg, |_, _| {}).unwrap();
        let after = err(&mut cgan);
        assert!(
            after < before,
            "reconstruction error should improve: {before} -> {after}"
        );
        assert_eq!(history.g_loss.len(), 12);
        // Generator loss should drop substantially as the L1 term shrinks.
        assert!(history.g_loss.last().unwrap() < history.g_loss.first().unwrap());
    }

    #[test]
    fn predict_output_is_unit_range() {
        let net = NetConfig::scaled(16);
        let mut cgan = Cgan::new(&net, 0);
        let mask = Tensor::full(&[3, 16, 16], 0.5);
        let out = cgan.predict(&mask).unwrap();
        assert_eq!(out.dims(), &[16, 16]);
        assert!(out.min() >= 0.0 && out.max() <= 1.0);
        assert!(cgan.predict(&Tensor::zeros(&[16, 16])).is_err());
    }

    #[test]
    fn augmented_training_runs_and_learns() {
        let net = NetConfig::scaled(16);
        let cfg = TrainConfig {
            epochs: 6,
            augment: true,
            seed: 9,
            ..TrainConfig::paper()
        };
        let mut cgan = Cgan::with_train_config(&net, &cfg, 2);
        let pairs = toy_pairs(16, 8);
        let history = cgan.train(&pairs, &cfg, |_, _| {}).unwrap();
        assert!(history.g_loss.iter().all(|l| l.is_finite()));
        assert!(history.g_loss.last().unwrap() < history.g_loss.first().unwrap());
    }

    #[test]
    fn epoch_callback_fires() {
        let net = NetConfig::scaled(16);
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::paper()
        };
        let mut cgan = Cgan::with_train_config(&net, &cfg, 0);
        let pairs = toy_pairs(16, 4);
        let mut seen = Vec::new();
        cgan.train(&pairs, &cfg, |e, _| seen.push(e)).unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
