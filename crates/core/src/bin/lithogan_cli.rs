//! `lithogan-cli` — dataset generation, training, evaluation, prediction
//! and run analysis from the command line.
//!
//! ```text
//! lithogan-cli generate --node N10 --clips 140 --size 64 --out data.lgd
//! lithogan-cli train    --data data.lgd --epochs 10 --out model.lgm
//! lithogan-cli eval     --data data.lgd --model model.lgm
//! lithogan-cli predict  --data data.lgd --model model.lgm --index 3 --out-dir out/
//! lithogan-cli report   <run-id|run-dir>
//! lithogan-cli compare  <run-a> <run-b>
//! lithogan-cli compare  <run> --gate baseline.json [--tol-pct N]
//! ```
//!
//! Every workload command records itself into `runs/<id>/` (manifest,
//! per-sample metric records, telemetry trace) unless `--no-run` is
//! given; `report` and `compare` read those directories back. See
//! `lithogan-cli help <command>` for per-command flags.

use litho_dataset::{generate, load_dataset, save_dataset, Dataset, DatasetConfig};
use litho_health::DiagnosisKind;
use litho_layout::image::{overlay_panel, write_ppm};
use litho_ledger::{
    dashboard_svg, diff_eval, fingerprint_file, flamegraph_svg, fmt_unix, fold_lines, gate,
    health_svg, load_index, load_run, reindex, render_attribution, render_compare,
    render_diff_eval, render_health, render_report, render_snapshot, render_trend, render_triage,
    slice_metric_key, trend, trend_svg, triage_svg, validate_run_id, Baseline, DatasetInfo,
    RunData, RunLedger, TrendConfig, WatchConfig, WatchSession,
};
use litho_metrics::MetricAccumulator;
use litho_sim::ProcessConfig;
use litho_tensor::TensorError;
use lithogan::{
    run_dash, AbortCondition, DashConfig, HealthConfig, HealthMonitor, LithoGan, NetConfig, Result,
    TrainConfig,
};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Generate {
        node: String,
        clips: usize,
        size: usize,
        jitter_nm: f64,
        out: String,
    },
    Train {
        data: String,
        epochs: usize,
        seed: u64,
        augment: bool,
        health: bool,
        health_stride: u64,
        abort_on: Option<String>,
        poison_nan_at_epoch: Option<usize>,
        out: String,
    },
    Eval {
        data: String,
        model: String,
    },
    Predict {
        data: String,
        model: String,
        index: usize,
        out_dir: String,
    },
    Report {
        run: String,
    },
    Triage {
        run: String,
        worst: usize,
    },
    Profile {
        run: String,
        top: usize,
    },
    Health {
        run: String,
        fail_on: Option<String>,
    },
    Compare {
        a: String,
        b: Option<String>,
        gate: Option<String>,
        tol_pct: Option<f64>,
        write_baseline: Option<String>,
    },
    RunsLs {
        status: Option<String>,
        command: Option<String>,
        dataset: Option<String>,
        last: Option<usize>,
        json: bool,
    },
    RunsTrend {
        metrics: String,
        slice: Option<String>,
        last: Option<usize>,
        gate: bool,
        tol_pct: Option<f64>,
        drift_runs: Option<usize>,
        out: Option<String>,
    },
    RunsDiffEval {
        a: String,
        b: String,
        gate: bool,
        tol_pct: Option<f64>,
    },
    RunsGc {
        keep: usize,
        baseline: Option<String>,
    },
    Reindex,
    Alerts {
        rules: Option<String>,
        gate: bool,
        json: bool,
    },
    Watch {
        run: String,
        interval_ms: u64,
        timeout_s: Option<u64>,
        wait_s: u64,
    },
    Dash {
        addr: String,
    },
    Help,
    HelpFor(String),
}

const GLOBAL_FLAGS_HELP: &str = "\
global flags (accepted by every command, --flag VALUE or --flag=VALUE):\n  \
  --trace             print a nested span/metric report to stderr on exit\n  \
  --metrics-out FILE  stream telemetry events as JSONL to FILE\n                      \
(default: runs/<id>/trace.jsonl when a run ledger is active)\n  \
  --runs-root DIR     where run ledgers are created/resolved (default: runs)\n  \
  --no-run            do not record this invocation under runs/\n  \
  --threads N         worker-pool width for the compute kernels; 0 = auto\n                      \
(default: LITHO_THREADS env var, else the detected core count)\n  \
  --simd LEVEL        kernel level: auto, avx2 or scalar (default: LITHO_SIMD\n                      \
env var, else CPUID detection; never exceeds the host ISA)";

fn usage() -> String {
    format!(
        "usage:\n  \
         lithogan-cli generate --node <N10|N7> [--clips N] [--size S] [--jitter NM] --out FILE\n  \
         lithogan-cli train    --data FILE [--epochs N] [--seed N] [--augment] [--health] --out FILE\n  \
         lithogan-cli eval     --data FILE --model FILE\n  \
         lithogan-cli predict  --data FILE --model FILE --index I --out-dir DIR\n  \
         lithogan-cli report   <run-id|run-dir>\n  \
         lithogan-cli triage   <run-id|run-dir> [--worst K]\n  \
         lithogan-cli profile  <run-id|run-dir> [--top N]\n  \
         lithogan-cli health   <run-id|run-dir> [--fail-on LIST]\n  \
         lithogan-cli compare  <run-a> [<run-b>] [--gate FILE] [--tol-pct N] [--write-baseline FILE]\n  \
         lithogan-cli runs     ls [--status S] [--command C] [--dataset FP] [--last N] [--json]\n  \
         lithogan-cli runs     trend <metric[,metric...]> [--slice family=F] [--last N] [--gate] [--tol-pct P] [--out FILE]\n  \
         lithogan-cli runs     diff-eval <run-a> <run-b> [--gate] [--tol-pct P]\n  \
         lithogan-cli runs     gc --keep N [--baseline FILE]\n  \
         lithogan-cli reindex\n  \
         lithogan-cli alerts   [--rules FILE] [--gate] [--json]\n  \
         lithogan-cli watch    <run-id|run-dir> [--interval-ms N] [--timeout-s N]\n  \
         lithogan-cli dash     [--addr HOST:PORT]\n  \
         lithogan-cli help     [command]\n\
         {GLOBAL_FLAGS_HELP}"
    )
}

/// Detailed per-command help (satisfies `help <cmd>` and `<cmd> --help`).
fn command_help(cmd: &str) -> String {
    let body = match cmd {
        "generate" => {
            "lithogan-cli generate --node <N10|N7> [--clips N] [--size S] [--jitter NM] --out FILE\n\n\
             Synthesizes a mask/aerial/resist dataset with the in-tree lithography\n\
             simulator and writes it to FILE.\n\n  \
             --node N10|N7   process node preset (default N10)\n  \
             --clips N       number of layout clips (default 140)\n  \
             --size S        image resolution in pixels (default 64)\n  \
             --jitter NM     mask corner jitter in nm (default 3.0)\n  \
             --out FILE      output dataset path (required)"
        }
        "train" => {
            "lithogan-cli train --data FILE [--epochs N] [--seed N] [--augment] [--health] --out FILE\n\n\
             Trains LithoGAN on the 75% train split, saves the model, then\n\
             evaluates the 25% test split; per-sample metrics land in the run's\n\
             samples.jsonl and the loss curve in its trace.\n\n  \
             --data FILE     dataset from `generate` (required)\n  \
             --epochs N      training epochs (default 10)\n  \
             --seed N        RNG seed (default 0)\n  \
             --augment       enable flip/rotate augmentation\n  \
             --health        stream model-health records to the run's health.jsonl\n  \
             --health-stride N        sample every Nth step (default 8, implies --health)\n  \
             --abort-on LIST          abort training on nan and/or collapse (implies --health)\n  \
             --poison-nan-at-epoch N  fault injection: plant a NaN weight at epoch N\n  \
             --out FILE      model output path (required)"
        }
        "health" => {
            "lithogan-cli health <run-id|run-dir> [--fail-on LIST]\n\n\
             Analyzes a run's health.jsonl (from `train --health`): per-layer\n\
             activation/gradient tables, update-to-weight ratios, GAN balance\n\
             signals and the six named diagnoses (vanishing-gradient,\n\
             exploding-update, dead-layer, d-overpowers-g, mode-collapse,\n\
             nan-poisoned) with first-seen epoch/step. Also writes\n\
             runs/<id>/health.svg (sparkline panel).\n\n  \
             --fail-on LIST  comma-separated diagnoses that exit nonzero when\n                  \
             present (aliases: nan, collapse)"
        }
        "eval" => {
            "lithogan-cli eval --data FILE --model FILE\n\n\
             Evaluates a trained model on the test split: EDE, pixel/class\n\
             accuracy, mean IoU and centre error, with one record per sample\n\
             appended to the run ledger.\n\n  \
             --data FILE     dataset from `generate` (required)\n  \
             --model FILE    model from `train` (required)"
        }
        "predict" => {
            "lithogan-cli predict --data FILE --model FILE --index I --out-dir DIR\n\n\
             Runs inference on one sample, writes mask/prediction panels as PPM\n\
             and records that sample's metrics in the run ledger.\n\n  \
             --data FILE     dataset from `generate` (required)\n  \
             --model FILE    model from `train` (required)\n  \
             --index I       sample index (default 0)\n  \
             --out-dir DIR   where to write panels (default .)"
        }
        "report" => {
            "lithogan-cli report <run-id|run-dir>\n\n\
             Renders one recorded run: manifest, aggregated per-sample metrics,\n\
             span timing table with exact p50/p95/p99, critical path and\n\
             counters. Also writes runs/<id>/dashboard.svg (loss curves, EDE\n\
             histogram, stage latency). The argument is a directory path or a\n\
             run id resolved under --runs-root."
        }
        "triage" => {
            "lithogan-cli triage <run-id|run-dir> [--worst K]\n\n\
             Ranks a run's per-sample records by EDE — contours that vanished\n\
             outrank every numeric error — and prints the worst K as a table\n\
             (sample index, clip fingerprint, family, mean and per-edge EDE).\n\
             Also writes runs/<id>/triage.svg: a self-contained gallery with\n\
             one schematic panel per clip (mask target, golden contour,\n\
             predicted contour displaced by the recorded per-edge EDE).\n\
             Legacy records without clip identity still rank; their clip and\n\
             family columns show \"-\".\n\n  \
             --worst K       panels/rows to show (default 10)"
        }
        "profile" => {
            "lithogan-cli profile <run-id|run-dir> [--top N]\n\n\
             Folds a run's trace.jsonl into a self-time profile: writes\n\
             runs/<id>/flamegraph.svg (icicle layout, frames tinted by the\n\
             roofline verdict of their kernel cost model) and\n\
             runs/<id>/flamegraph.folded (Brendan-Gregg folded-stack text),\n\
             and prints a top-N attribution table ranked by self time with\n\
             achieved GFLOP/s, arithmetic intensity and compute- vs\n\
             memory-bound verdict per instrumented kernel.\n\n  \
             --top N         table rows (default 20)\n\n\
             The classification threshold is the host machine balance,\n\
             LITHO_MACHINE_BALANCE (FLOPs per byte, default 8)."
        }
        "compare" => {
            "lithogan-cli compare <run-a> [<run-b>] [--gate FILE] [--tol-pct N] [--write-baseline FILE]\n\n\
             With two runs: aligned metric/latency delta table.\n\
             With --gate: checks <run-a> against a baseline JSON\n\
             ({\"tol_pct\": N, \"metrics\": {...}}) and exits nonzero when any\n\
             metric regressed beyond tolerance — the CI regression gate.\n\n  \
             --gate FILE           baseline to gate against\n  \
             --tol-pct N           tolerance override in percent\n  \
             --write-baseline FILE regenerate a baseline from <run-a>'s metrics\n                        \
             (records <run-a>'s id, which `runs gc` then protects)"
        }
        "runs" => {
            "lithogan-cli runs ls    [--status S] [--command C] [--dataset FP] [--last N] [--json]\n\
             lithogan-cli runs trend <metric[,metric...]> [--slice family=F] [--last N] [--gate]\n                         \
             [--tol-pct P] [--drift-runs N] [--out FILE]\n\
             lithogan-cli runs diff-eval <run-a> <run-b> [--gate] [--tol-pct P]\n\
             lithogan-cli runs gc    --keep N [--baseline FILE]\n\n\
             Fleet-level views over the append-only runs index\n\
             (<runs-root>/index.jsonl, maintained by every finalizing run;\n\
             repair it with `reindex`).\n\n\
             ls    one line per run: id, start, status, dataset fingerprint,\n                   \
             headline EDE and health verdict.\n  \
             --status S      keep runs with this status (ok, error, running,\n                  \
             aborted matches any aborted(...))\n  \
             --command C     keep runs of this command (train, eval, ...)\n  \
             --dataset FP    keep runs whose dataset fingerprint starts with FP\n  \
             --last N        keep only the N most recent\n  \
             --json          one index record per line as JSON, byte-identical\n                  \
             to the index lines and the dash /api/runs entries\n\n\
             trend aligned per-run table of the metric plus a self-contained\n                   \
             trend.svg (written to <runs-root>/trend.svg unless --out).\n                   \
             Drift detection is streak-based: a run is off when beyond\n                   \
             --tol-pct (default 10) of the fleet median, and --drift-runs\n                   \
             (default 2) consecutive off runs confirm a drift.\n  \
             --slice family=F  trend the per-family slice of each metric\n                  \
             (e.g. ede_mean_nm restricted to chain1d clips); runs\n                  \
             without that slice abstain rather than read as zero\n  \
             --gate          exit nonzero when a drift is confirmed (CI)\n\n\
             diff-eval  join two runs' samples.jsonl by clip fingerprint and\n                   \
             bucket every shared clip: regressed / improved /\n                   \
             unchanged vs --tol-pct (default 10), plus clips only one\n                   \
             run evaluated (new / missing). Records without\n                   \
             fingerprints (legacy ledgers) are counted but can't join.\n  \
             --tol-pct P     allowed per-clip EDE growth in percent\n  \
             --gate          exit nonzero when any clip regressed (CI)\n\n\
             gc    remove all but the newest --keep N run directories, never\n                   \
             touching running runs or the run recorded in the baseline\n                   \
             (--baseline FILE, default ci/baseline.json when present),\n                   \
             then rebuild the index."
        }
        "reindex" => {
            "lithogan-cli reindex\n\n\
             Rebuilds <runs-root>/index.jsonl from the surviving run\n\
             directories (manifest + samples.jsonl aggregate + health.jsonl\n\
             verdict) and swaps it in atomically. Use after crashes, manual\n\
             deletion or to adopt pre-index run directories."
        }
        "alerts" => {
            "lithogan-cli alerts [--rules FILE] [--gate] [--json]\n\n\
             Evaluates the fleet's alert rules against the runs index, the\n\
             health verdicts, the trend drift detector and live run activity,\n\
             then prints the active alerts and appends state transitions\n\
             (pending -> firing -> resolved, deduplicated by fingerprint) to\n\
             <runs-root>/alerts.jsonl. Rules come from --rules FILE, else\n\
             <runs-root>/alerts.toml, else a built-in set (page on unhealthy\n\
             runs, warn on ede_mean_nm drift — aggregate and per-family —\n\
             and stalled runs). See `help alerts-rules`-style docs in\n\
             DESIGN.md §4g for the rule schema (threshold / drift /\n\
             slice_drift / health / stale).\n\n  \
             --rules FILE    alert rule config (TOML subset)\n  \
             --gate          exit nonzero while any alert is firing (CI)\n  \
             --json          also print active alerts as JSONL records\n\n\
             Crashed or aborted runs additionally ship a post-mortem in\n\
             runs/<id>/incident/: the telemetry flight-recorder ring, panic\n\
             message + backtrace, manifest snapshot, process counters and the\n\
             last per-layer tensor stats."
        }
        "watch" => {
            "lithogan-cli watch <run-id|run-dir> [--interval-ms N] [--timeout-s N]\n\n\
             Live-follows an in-flight run: incrementally tails its\n\
             trace.jsonl and health.jsonl (tolerating torn lines from the\n\
             concurrent writer), rendering epoch progress, loss deltas, an\n\
             ETA from the epoch cadence and live health verdicts. Alert\n\
             transitions appended to <runs-root>/alerts.jsonl while watching\n\
             are echoed live. Exits 0 when the run finishes ok, nonzero when\n\
             it errors or aborts — so `watch` can stand in for the run's own\n\
             exit code. A run directory removed mid-watch (e.g. by\n\
             `runs gc`) is a hard error, not an endless wait.\n\n  \
             --interval-ms N poll interval (default 200)\n  \
             --timeout-s N   give up after N seconds (default: wait forever)"
        }
        "dash" => {
            "lithogan-cli dash [--addr HOST:PORT]\n\n\
             Serves the runs fleet over HTTP until POST /shutdown, Ctrl-C or\n\
             SIGTERM. Endpoints:\n\n  \
             GET /                       HTML fleet page\n  \
             GET /metrics                Prometheus text exposition: run counts\n                              \
             by status, latest headline metrics per\n                              \
             command, drift-detector state, live gauges\n                              \
             for in-flight runs, dash self metrics\n  \
             GET /api/runs               all index records as JSON\n  \
             GET /api/runs/<id>          one run: index record + manifest\n  \
             GET /api/alerts             active alerts as JSON (evaluates the\n                              \
             alert rules on each request)\n  \
             GET /runs/<id>/dashboard.svg   report dashboard, rendered on demand\n  \
             GET /runs/<id>/health.svg      health sparkline panel\n  \
             GET /runs/<id>/trend.svg       fleet trends (ede/throughput/pool)\n  \
             GET /runs/<id>/flamegraph.svg  self-time flamegraph\n  \
             POST /shutdown              clean stop\n\n  \
             --addr HOST:PORT address to bind (default 127.0.0.1:9091; port 0\n                   \
             picks an ephemeral port, announced on stdout)\n\n\
             The daemon records itself in the runs ledger: request counters and\n\
             latency quantiles land in its trace.jsonl and its manifest is\n\
             finalized on shutdown, so `runs trend` works on dash runs too.\n\
             Addresses in --runs-root; disable the self-run with --no-run."
        }
        _ => return usage(),
    };
    format!("{body}\n\n{GLOBAL_FLAGS_HELP}")
}

/// Global flags, accepted by every command.
#[derive(Debug, Clone, PartialEq)]
struct GlobalOpts {
    trace: bool,
    metrics_out: Option<String>,
    runs_root: String,
    no_run: bool,
    /// Worker-pool width override (`Some(0)` = auto-detect).
    threads: Option<usize>,
    /// Kernel-level override (`--simd auto|avx2|scalar`).
    simd: Option<litho_tensor::KernelLevel>,
}

impl Default for GlobalOpts {
    fn default() -> Self {
        GlobalOpts {
            trace: false,
            metrics_out: None,
            runs_root: "runs".to_string(),
            no_run: false,
            threads: None,
            simd: None,
        }
    }
}

/// Parses a `--simd` operand (`auto` resolves via CPUID inside
/// [`litho_tensor::parse_level`]).
fn parse_simd_arg(value: &str) -> Result<litho_tensor::KernelLevel> {
    litho_tensor::parse_level(value)
        .ok_or_else(|| bad(format!("--simd: unknown level {value:?} (auto|avx2|scalar)")))
}

/// Strips the global flags out of `args` so subcommand parsing never sees
/// them, and returns them parsed.
///
/// # Errors
///
/// Returns an error for a value-taking flag without its value (the
/// subcommand parsers ignore flags they don't know, so it can't be left
/// for them to reject).
fn split_global_args(args: &[String]) -> Result<(Vec<String>, GlobalOpts)> {
    let mut opts = GlobalOpts::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--trace" => opts.trace = true,
            "--no-run" => opts.no_run = true,
            "--metrics-out" => {
                if i + 1 >= args.len() {
                    return Err(bad("--metrics-out requires a file path"));
                }
                opts.metrics_out = Some(args[i + 1].clone());
                i += 1;
            }
            "--runs-root" => {
                if i + 1 >= args.len() {
                    return Err(bad("--runs-root requires a directory path"));
                }
                opts.runs_root = args[i + 1].clone();
                i += 1;
            }
            "--threads" => {
                if i + 1 >= args.len() {
                    return Err(bad("--threads requires a count"));
                }
                opts.threads = Some(args[i + 1].parse().map_err(|_| bad("--threads"))?);
                i += 1;
            }
            "--simd" => {
                if i + 1 >= args.len() {
                    return Err(bad("--simd requires a level (auto|avx2|scalar)"));
                }
                opts.simd = Some(parse_simd_arg(&args[i + 1])?);
                i += 1;
            }
            // `--flag=value` spelling, matching the bench binaries.
            _ if arg.starts_with("--metrics-out=") => {
                opts.metrics_out = Some(arg["--metrics-out=".len()..].to_string());
            }
            _ if arg.starts_with("--runs-root=") => {
                opts.runs_root = arg["--runs-root=".len()..].to_string();
            }
            _ if arg.starts_with("--threads=") => {
                opts.threads = Some(
                    arg["--threads=".len()..]
                        .parse()
                        .map_err(|_| bad("--threads"))?,
                );
            }
            _ if arg.starts_with("--simd=") => {
                opts.simd = Some(parse_simd_arg(&arg["--simd=".len()..])?);
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    Ok((rest, opts))
}

fn bad(msg: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument(msg.into())
}

fn io_err(e: std::io::Error) -> TensorError {
    bad(e.to_string())
}

/// Parses an argument vector (without the program name or global flags).
fn parse(args: &[String]) -> Result<Command> {
    let get = |flag: &str| -> Option<String> {
        args.windows(2)
            .find(|w| w[0] == flag)
            .map(|w| w[1].clone())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    // Positional operands: everything that is not a flag or a flag value.
    // `boolean_flags` names the flags that take no value for the command
    // at hand (`--gate` is a value flag in `compare` but boolean in
    // `runs trend`, so the set is per-command).
    let positionals_with = |boolean_flags: &[&str]| -> Vec<String> {
        let mut out = Vec::new();
        let mut skip = false;
        for a in &args[1..] {
            if skip {
                skip = false;
                continue;
            }
            if let Some(stripped) = a.strip_prefix("--") {
                skip = !boolean_flags.contains(&stripped);
                continue;
            }
            out.push(a.clone());
        }
        out
    };
    let positionals = || positionals_with(&["augment", "help", "health"]);
    let command = args.first().map(String::as_str);
    if has("--help") {
        return Ok(match command {
            Some(cmd) => Command::HelpFor(cmd.to_string()),
            None => Command::Help,
        });
    }
    match command {
        Some("generate") => Ok(Command::Generate {
            node: get("--node").unwrap_or_else(|| "N10".into()),
            clips: get("--clips").map_or(Ok(140), |v| v.parse().map_err(|_| bad("--clips")))?,
            size: get("--size").map_or(Ok(64), |v| v.parse().map_err(|_| bad("--size")))?,
            jitter_nm: get("--jitter").map_or(Ok(3.0), |v| v.parse().map_err(|_| bad("--jitter")))?,
            out: get("--out").ok_or_else(|| bad("generate requires --out"))?,
        }),
        Some("train") => Ok(Command::Train {
            data: get("--data").ok_or_else(|| bad("train requires --data"))?,
            epochs: get("--epochs").map_or(Ok(10), |v| v.parse().map_err(|_| bad("--epochs")))?,
            seed: get("--seed").map_or(Ok(0), |v| v.parse().map_err(|_| bad("--seed")))?,
            augment: has("--augment"),
            // Any health-adjacent flag implies the health stream.
            health: has("--health")
                || has("--health-stride")
                || has("--abort-on")
                || has("--poison-nan-at-epoch"),
            health_stride: get("--health-stride")
                .map_or(Ok(8), |v| v.parse().map_err(|_| bad("--health-stride")))?,
            abort_on: get("--abort-on"),
            poison_nan_at_epoch: get("--poison-nan-at-epoch")
                .map(|v| v.parse().map_err(|_| bad("--poison-nan-at-epoch")))
                .transpose()?,
            out: get("--out").ok_or_else(|| bad("train requires --out"))?,
        }),
        Some("eval") => Ok(Command::Eval {
            data: get("--data").ok_or_else(|| bad("eval requires --data"))?,
            model: get("--model").ok_or_else(|| bad("eval requires --model"))?,
        }),
        Some("predict") => Ok(Command::Predict {
            data: get("--data").ok_or_else(|| bad("predict requires --data"))?,
            model: get("--model").ok_or_else(|| bad("predict requires --model"))?,
            index: get("--index").map_or(Ok(0), |v| v.parse().map_err(|_| bad("--index")))?,
            out_dir: get("--out-dir").unwrap_or_else(|| ".".into()),
        }),
        Some("report") => {
            let pos = positionals();
            match pos.as_slice() {
                [run] => Ok(Command::Report { run: run.clone() }),
                _ => Err(bad("report takes exactly one <run-id|run-dir>")),
            }
        }
        Some("triage") => {
            let pos = positionals();
            match pos.as_slice() {
                [run] => Ok(Command::Triage {
                    run: run.clone(),
                    worst: get("--worst")
                        .map_or(Ok(10), |v| v.parse().map_err(|_| bad("--worst")))?,
                }),
                _ => Err(bad("triage takes exactly one <run-id|run-dir>")),
            }
        }
        Some("profile") => {
            let pos = positionals();
            match pos.as_slice() {
                [run] => Ok(Command::Profile {
                    run: run.clone(),
                    top: get("--top").map_or(Ok(20), |v| v.parse().map_err(|_| bad("--top")))?,
                }),
                _ => Err(bad("profile takes exactly one <run-id|run-dir>")),
            }
        }
        Some("health") => {
            let pos = positionals();
            match pos.as_slice() {
                [run] => Ok(Command::Health {
                    run: run.clone(),
                    fail_on: get("--fail-on"),
                }),
                _ => Err(bad("health takes exactly one <run-id|run-dir>")),
            }
        }
        Some("compare") => {
            let pos = positionals();
            let (a, b) = match pos.as_slice() {
                [a] => (a.clone(), None),
                [a, b] => (a.clone(), Some(b.clone())),
                _ => return Err(bad("compare takes <run-a> [<run-b>]")),
            };
            let gate = get("--gate");
            let write_baseline = get("--write-baseline");
            if b.is_none() && gate.is_none() && write_baseline.is_none() {
                return Err(bad("compare needs a second run, --gate or --write-baseline"));
            }
            Ok(Command::Compare {
                a,
                b,
                gate,
                tol_pct: get("--tol-pct")
                    .map(|v| v.parse().map_err(|_| bad("--tol-pct")))
                    .transpose()?,
                write_baseline,
            })
        }
        Some("runs") => match args.get(1).map(String::as_str) {
            Some("ls") => Ok(Command::RunsLs {
                status: get("--status"),
                command: get("--command"),
                dataset: get("--dataset"),
                last: get("--last")
                    .map(|v| v.parse().map_err(|_| bad("--last")))
                    .transpose()?,
                json: has("--json"),
            }),
            Some("trend") => {
                // The subcommand word is positional too; skip it.
                let pos = positionals_with(&["augment", "help", "health", "gate"]);
                let metrics = match pos.as_slice() {
                    [_, m] => m.clone(),
                    _ => return Err(bad("runs trend takes exactly one <metric[,metric...]>")),
                };
                Ok(Command::RunsTrend {
                    metrics,
                    slice: get("--slice"),
                    last: get("--last")
                        .map(|v| v.parse().map_err(|_| bad("--last")))
                        .transpose()?,
                    gate: has("--gate"),
                    tol_pct: get("--tol-pct")
                        .map(|v| v.parse().map_err(|_| bad("--tol-pct")))
                        .transpose()?,
                    drift_runs: get("--drift-runs")
                        .map(|v| v.parse().map_err(|_| bad("--drift-runs")))
                        .transpose()?,
                    out: get("--out"),
                })
            }
            Some("diff-eval") => {
                // `--gate` is boolean here, like in `runs trend`.
                let pos = positionals_with(&["augment", "help", "health", "gate"]);
                let (a, b) = match pos.as_slice() {
                    [_, a, b] => (a.clone(), b.clone()),
                    _ => return Err(bad("runs diff-eval takes <run-a> <run-b>")),
                };
                Ok(Command::RunsDiffEval {
                    a,
                    b,
                    gate: has("--gate"),
                    tol_pct: get("--tol-pct")
                        .map(|v| v.parse().map_err(|_| bad("--tol-pct")))
                        .transpose()?,
                })
            }
            Some("gc") => Ok(Command::RunsGc {
                keep: get("--keep")
                    .ok_or_else(|| bad("runs gc requires --keep N"))?
                    .parse()
                    .map_err(|_| bad("--keep"))?,
                baseline: get("--baseline"),
            }),
            _ => Err(bad("runs takes a subcommand: ls, trend, diff-eval or gc")),
        },
        Some("reindex") => Ok(Command::Reindex),
        Some("alerts") => Ok(Command::Alerts {
            rules: get("--rules"),
            gate: has("--gate"),
            json: has("--json"),
        }),
        Some("watch") => {
            let pos = positionals();
            match pos.as_slice() {
                [run] => Ok(Command::Watch {
                    run: run.clone(),
                    interval_ms: get("--interval-ms")
                        .map_or(Ok(200), |v| v.parse().map_err(|_| bad("--interval-ms")))?,
                    timeout_s: get("--timeout-s")
                        .map(|v| v.parse().map_err(|_| bad("--timeout-s")))
                        .transpose()?,
                    wait_s: get("--wait-s")
                        .map_or(Ok(10), |v| v.parse().map_err(|_| bad("--wait-s")))?,
                }),
                _ => Err(bad("watch takes exactly one <run-id|run-dir>")),
            }
        }
        Some("dash") => Ok(Command::Dash {
            addr: get("--addr").unwrap_or_else(|| "127.0.0.1:9091".into()),
        }),
        Some("help") => Ok(match args.get(1) {
            Some(cmd) => Command::HelpFor(cmd.clone()),
            None => Command::Help,
        }),
        None => Ok(Command::Help),
        Some(other) => Err(bad(format!("unknown command {other:?}\n{}", usage()))),
    }
}

impl Command {
    fn name(&self) -> &'static str {
        match self {
            Command::Generate { .. } => "generate",
            Command::Train { .. } => "train",
            Command::Eval { .. } => "eval",
            Command::Predict { .. } => "predict",
            Command::Report { .. } => "report",
            Command::Triage { .. } => "triage",
            Command::Profile { .. } => "profile",
            Command::Health { .. } => "health",
            Command::Compare { .. } => "compare",
            Command::RunsLs { .. }
            | Command::RunsTrend { .. }
            | Command::RunsDiffEval { .. }
            | Command::RunsGc { .. } => "runs",
            Command::Reindex => "reindex",
            Command::Alerts { .. } => "alerts",
            Command::Watch { .. } => "watch",
            Command::Dash { .. } => "dash",
            Command::Help | Command::HelpFor(_) => "help",
        }
    }

    /// Should this invocation open a run ledger?
    fn records_run(&self) -> bool {
        matches!(
            self,
            Command::Generate { .. }
                | Command::Train { .. }
                | Command::Eval { .. }
                | Command::Predict { .. }
                | Command::Dash { .. }
        )
    }

    fn seed(&self) -> Option<u64> {
        match self {
            Command::Train { seed, .. } => Some(*seed),
            _ => None,
        }
    }

    /// Flat key/value pairs for the run manifest.
    fn config_pairs(&self) -> Vec<(String, String)> {
        let kv = |k: &str, v: String| (k.to_string(), v);
        match self {
            Command::Generate {
                node,
                clips,
                size,
                jitter_nm,
                out,
            } => vec![
                kv("node", node.clone()),
                kv("clips", clips.to_string()),
                kv("size", size.to_string()),
                kv("jitter_nm", jitter_nm.to_string()),
                kv("out", out.clone()),
            ],
            Command::Train {
                data,
                epochs,
                seed,
                augment,
                health,
                health_stride,
                abort_on,
                poison_nan_at_epoch,
                out,
            } => {
                let mut pairs = vec![
                    kv("data", data.clone()),
                    kv("epochs", epochs.to_string()),
                    kv("seed", seed.to_string()),
                    kv("augment", augment.to_string()),
                    kv("out", out.clone()),
                ];
                if *health {
                    pairs.push(kv("health", "true".to_string()));
                    pairs.push(kv("health_stride", health_stride.to_string()));
                }
                if let Some(conds) = abort_on {
                    pairs.push(kv("abort_on", conds.clone()));
                }
                if let Some(epoch) = poison_nan_at_epoch {
                    pairs.push(kv("poison_nan_at_epoch", epoch.to_string()));
                }
                pairs
            }
            Command::Eval { data, model } => {
                vec![kv("data", data.clone()), kv("model", model.clone())]
            }
            Command::Predict {
                data,
                model,
                index,
                out_dir,
            } => vec![
                kv("data", data.clone()),
                kv("model", model.clone()),
                kv("index", index.to_string()),
                kv("out_dir", out_dir.clone()),
            ],
            Command::Dash { addr } => vec![kv("addr", addr.clone())],
            _ => Vec::new(),
        }
    }
}

/// Turns telemetry on. A JSONL sink goes to `--metrics-out` when given,
/// else to the active run's `trace.jsonl`; with a ledger present,
/// telemetry is always enabled so every run carries its trace.
fn init_telemetry(
    opts: &GlobalOpts,
    command: &str,
    ledger: Option<&mut RunLedger>,
) -> Result<()> {
    let has_ledger = ledger.is_some();
    if !opts.trace && opts.metrics_out.is_none() && !has_ledger {
        return Ok(());
    }
    let sink_path: Option<PathBuf> = match (&opts.metrics_out, &ledger) {
        (Some(path), _) => Some(PathBuf::from(path)),
        (None, Some(ledger)) => Some(ledger.default_trace_path()),
        (None, None) => None,
    };
    if let Some(path) = &sink_path {
        let sink = litho_telemetry::JsonlSink::create(path)
            .map_err(|e| bad(format!("--metrics-out {}: {e}", path.display())))?;
        litho_telemetry::set_sink(Some(Box::new(sink)));
    }
    if let Some(ledger) = ledger {
        let trace = match &opts.metrics_out {
            // An explicit path lives outside the run dir; record it as given.
            Some(path) => path.clone(),
            None => "trace.jsonl".to_string(),
        };
        ledger.set_trace_path(&trace).map_err(io_err)?;
        litho_telemetry::set_run_id(Some(ledger.run_id()));
    }
    litho_telemetry::enable();
    // Per-job pool accounting is cheap (two clock reads per participant)
    // and only meaningful with somewhere to report to, so it follows the
    // telemetry switch.
    litho_tensor::pool::set_profiling(true);
    litho_telemetry::emit_run_metadata(&[(
        "command",
        litho_telemetry::Value::Str(command.to_string()),
    )]);
    Ok(())
}

fn net_for(size: usize) -> NetConfig {
    if size == 256 {
        NetConfig::paper()
    } else {
        NetConfig::scaled(size)
    }
}

/// Dataset identity for the manifest: path, content fingerprint and shape.
fn dataset_info(path: &str, ds: &Dataset) -> Result<DatasetInfo> {
    let (fingerprint, bytes) = fingerprint_file(Path::new(path)).map_err(io_err)?;
    Ok(DatasetInfo {
        path: path.to_string(),
        fingerprint,
        bytes,
        samples: ds.len(),
        image_size: ds.config.image_size,
        node: ds.config.process.name.clone(),
        nm_per_px: ds.config.golden_nm_per_px(),
    })
}

/// Resolves a `report`/`compare` operand: a run directory path, or a run
/// id under the runs root. An argument that is neither an existing run
/// directory nor a valid single-component run id is rejected, so
/// `report ../../x` can never escape the runs root.
fn resolve_run(arg: &str, runs_root: &str) -> Result<RunData> {
    let direct = Path::new(arg);
    let dir = if direct.join("manifest.json").exists() {
        direct.to_path_buf()
    } else {
        validate_run_id(arg).map_err(io_err)?;
        Path::new(runs_root).join(arg)
    };
    load_run(&dir).map_err(|e| bad(format!("run {arg:?}: {e}")))
}

/// How many samples `eval_into_ledger` stacks into one inference batch.
/// Bounds workspace memory while keeping the GEMMs wide enough to feed
/// the worker pool.
const EVAL_BATCH: usize = 8;

/// Evaluates `samples` and appends one record per sample to the ledger.
/// Inference runs batched (bit-identical to per-sample `predict`); the
/// measured throughput is stamped into the manifest as
/// `samples_per_sec`. Returns the accumulator for summary printing.
fn eval_into_ledger(
    model: &mut LithoGan,
    samples: &[&litho_dataset::Sample],
    nm_per_px: f64,
    ledger: &mut Option<RunLedger>,
) -> Result<MetricAccumulator> {
    let mut acc = MetricAccumulator::new(nm_per_px);
    let t0 = std::time::Instant::now();
    let mut predictions = Vec::with_capacity(samples.len());
    for chunk in samples.chunks(EVAL_BATCH) {
        let masks: Vec<&litho_tensor::Tensor> = chunk.iter().map(|s| &s.mask).collect();
        predictions.extend(model.predict_batch(&masks)?);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    if let Some(ledger) = ledger {
        if !samples.is_empty() && elapsed > 0.0 {
            ledger.set_samples_per_sec(samples.len() as f64 / elapsed);
        }
    }
    for (i, (prediction, s)) in predictions.iter().zip(samples).enumerate() {
        litho_telemetry::set_sample_id(Some(i as u64));
        // Clip identity rides every record so `triage` / `runs diff-eval`
        // can join this run against any other run of the same dataset.
        let record = acc.add_pair_identified(
            prediction,
            &s.golden,
            &s.clip.fingerprint(),
            s.family.name(),
        )?;
        if let Some(ledger) = ledger {
            ledger.append_record(&record).map_err(io_err)?;
        }
    }
    litho_telemetry::set_sample_id(None);
    Ok(acc)
}

fn run(cmd: Command, opts: &GlobalOpts, ledger: &mut Option<RunLedger>) -> Result<()> {
    match cmd {
        Command::Help => {
            println!("{}", usage());
            Ok(())
        }
        Command::HelpFor(cmd) => {
            println!("{}", command_help(&cmd));
            Ok(())
        }
        Command::Generate {
            node,
            clips,
            size,
            jitter_nm,
            out,
        } => {
            let process = match node.to_uppercase().as_str() {
                "N10" => ProcessConfig::n10(),
                "N7" => ProcessConfig::n7(),
                other => return Err(bad(format!("unknown node {other:?} (N10 or N7)"))),
            };
            let mut config = DatasetConfig::scaled(process, clips, size);
            config.mask_jitter_nm = jitter_nm;
            let t0 = std::time::Instant::now();
            let (ds, stats) = generate(&config)?;
            save_dataset(&ds, &out)?;
            if let Some(ledger) = ledger {
                ledger.set_dataset(dataset_info(&out, &ds)?).map_err(io_err)?;
            }
            println!(
                "generated {} samples in {:.1?} ({} retries, {} OPC non-converged) -> {out}",
                ds.len(),
                t0.elapsed(),
                stats.empty_golden_retries,
                stats.opc_unconverged
            );
            Ok(())
        }
        Command::Train {
            data,
            epochs,
            seed,
            augment,
            health,
            health_stride,
            abort_on,
            poison_nan_at_epoch,
            out,
        } => {
            let ds = load_dataset(&data)?;
            if let Some(ledger) = ledger {
                ledger.set_dataset(dataset_info(&data, &ds)?).map_err(io_err)?;
            }
            let (train, test) = ds.split();
            let cfg = TrainConfig {
                epochs,
                seed,
                augment,
                ..TrainConfig::paper()
            };
            let mut model = LithoGan::new(&net_for(ds.config.image_size), seed);
            let monitor = if health {
                let conds = match &abort_on {
                    Some(list) => AbortCondition::parse_list(list)
                        .map_err(|name| bad(format!("--abort-on: unknown condition {name:?}")))?,
                    None => Vec::new(),
                };
                let path = match ledger {
                    Some(ledger) => ledger.dir().join("health.jsonl"),
                    None => PathBuf::from("health.jsonl"),
                };
                let monitor = HealthMonitor::create(
                    &path,
                    HealthConfig {
                        stride: health_stride.max(1),
                        abort_on: conds,
                        poison_nan_at_epoch,
                        ..HealthConfig::default()
                    },
                )
                .map_err(io_err)?;
                model.attach_health(&monitor);
                eprintln!("health: {}", path.display());
                Some(monitor)
            } else {
                None
            };
            let t0 = std::time::Instant::now();
            let train_result = model.train(&train, &cfg, |epoch, _| {
                eprintln!("epoch {}/{epochs} done ({:.1?})", epoch + 1, t0.elapsed());
                // Push buffered trace/health records to disk each epoch so
                // `lithogan-cli watch` sees progress while training runs.
                litho_telemetry::flush();
                if let Some(monitor) = &monitor {
                    monitor.flush();
                }
            });
            if let Some(monitor) = &monitor {
                monitor.flush();
            }
            let history = train_result?;
            model.save_to_path(&out)?;
            println!(
                "trained on {} samples; generator loss {:.2} -> {:.2}; saved {out}",
                train.len(),
                history.g_loss.first().copied().unwrap_or(0.0),
                history.g_loss.last().copied().unwrap_or(0.0)
            );
            // Post-training evaluation on the held-out split feeds the run
            // ledger, so `report`/`compare --gate` see quality, not just loss.
            if !test.is_empty() {
                let acc =
                    eval_into_ledger(&mut model, &test, ds.config.golden_nm_per_px(), ledger)?;
                let s = acc.summary();
                println!(
                    "test split  {} samples: EDE {:.2} nm, pixel acc {:.4}, mIoU {:.4}",
                    s.samples, s.ede_mean_nm, s.pixel_accuracy, s.mean_iou
                );
            }
            Ok(())
        }
        Command::Eval { data, model } => {
            let ds = load_dataset(&data)?;
            if let Some(ledger) = ledger {
                ledger.set_dataset(dataset_info(&data, &ds)?).map_err(io_err)?;
            }
            let (_, test) = ds.split();
            let mut m = LithoGan::load_from_path(&net_for(ds.config.image_size), &model)?;
            let acc = eval_into_ledger(&mut m, &test, ds.config.golden_nm_per_px(), ledger)?;
            let s = acc.summary();
            println!(
                "test samples {}\nEDE        {:.2} ± {:.2} nm\npixel acc  {:.4}\nclass acc  {:.4}\nmean IoU   {:.4}\ncentre err {:.2} nm",
                s.samples, s.ede_mean_nm, s.ede_std_nm, s.pixel_accuracy, s.class_accuracy, s.mean_iou, s.center_error_nm
            );
            for sl in &s.slices {
                let ede = sl
                    .ede_mean_nm
                    .map_or("-".to_string(), |v| format!("{v:.2} nm"));
                println!(
                    "  {:<9} {:>4} samples, EDE {ede}, mIoU {:.4}",
                    sl.family, sl.samples, sl.mean_iou
                );
            }
            Ok(())
        }
        Command::Predict {
            data,
            model,
            index,
            out_dir,
        } => {
            let ds = load_dataset(&data)?;
            if let Some(ledger) = ledger {
                ledger.set_dataset(dataset_info(&data, &ds)?).map_err(io_err)?;
            }
            let sample = ds
                .samples
                .get(index)
                .ok_or_else(|| bad(format!("index {index} out of range ({})", ds.len())))?;
            let mut m = LithoGan::load_from_path(&net_for(ds.config.image_size), &model)?;
            litho_telemetry::set_sample_id(Some(index as u64));
            let p = m.predict_detailed(&sample.mask)?;
            litho_telemetry::set_sample_id(None);
            if let Some(ledger) = ledger {
                let mut acc = MetricAccumulator::new(ds.config.golden_nm_per_px());
                let record = acc.add_pair_identified(
                    &p.adjusted,
                    &sample.golden,
                    &sample.clip.fingerprint(),
                    sample.family.name(),
                )?;
                ledger.append_record(&record).map_err(io_err)?;
            }
            std::fs::create_dir_all(&out_dir).map_err(io_err)?;
            let dir = Path::new(&out_dir);
            write_ppm(&sample.mask, dir.join(format!("sample{index}_mask.ppm")))?;
            let binary = p.adjusted.map(|v| if v >= 0.5 { 1.0 } else { 0.0 });
            let panel = overlay_panel(&binary, &sample.golden)?;
            write_ppm(&panel, dir.join(format!("sample{index}_prediction.ppm")))?;
            println!(
                "sample {index}: predicted centre ({:.1}, {:.1}) px, inference {:.2} ms; panels in {out_dir}",
                p.center_px.0,
                p.center_px.1,
                p.elapsed.as_secs_f64() * 1e3
            );
            Ok(())
        }
        Command::Report { run } => {
            let data = resolve_run(&run, &opts.runs_root)?;
            print!("{}", render_report(&data));
            let svg_path = data.dir.join("dashboard.svg");
            std::fs::write(&svg_path, dashboard_svg(&data)).map_err(io_err)?;
            println!("dashboard:  {}", svg_path.display());
            Ok(())
        }
        Command::Triage { run, worst } => {
            let data = resolve_run(&run, &opts.runs_root)?;
            print!(
                "{}",
                render_triage(&data.manifest.run_id, &data.records, worst)
            );
            let nm_per_px = data
                .manifest
                .dataset
                .as_ref()
                .map_or(1.0, |d| d.nm_per_px);
            let svg_path = data.dir.join("triage.svg");
            let svg = triage_svg(&data.manifest.run_id, &data.records, worst, nm_per_px);
            std::fs::write(&svg_path, svg).map_err(io_err)?;
            println!("gallery:    {}", svg_path.display());
            Ok(())
        }
        Command::Profile { run, top } => {
            let data = resolve_run(&run, &opts.runs_root)?;
            let Some(trace) = &data.trace else {
                return Err(bad(format!(
                    "run {run:?} has no telemetry trace — rerun without --no-run"
                )));
            };
            print!("{}", render_attribution(trace, top));
            let svg_path = data.dir.join("flamegraph.svg");
            std::fs::write(&svg_path, flamegraph_svg(trace)).map_err(io_err)?;
            let folded_path = data.dir.join("flamegraph.folded");
            std::fs::write(&folded_path, fold_lines(trace)).map_err(io_err)?;
            println!("flamegraph: {}", svg_path.display());
            println!("folded:     {}", folded_path.display());
            Ok(())
        }
        Command::Health { run, fail_on } => {
            let data = resolve_run(&run, &opts.runs_root)?;
            let Some(h) = &data.health else {
                return Err(bad(format!(
                    "run {run:?} has no health.jsonl — train with --health"
                )));
            };
            print!("{}", render_health(&data.manifest.run_id, h));
            let svg_path = data.dir.join("health.svg");
            std::fs::write(&svg_path, health_svg(&data.manifest.run_id, h)).map_err(io_err)?;
            println!("panel:      {}", svg_path.display());
            if let Some(list) = fail_on {
                let kinds = DiagnosisKind::parse_list(&list)
                    .map_err(|name| bad(format!("--fail-on: unknown diagnosis {name:?}")))?;
                let mut fired: Vec<&str> = h
                    .diagnoses
                    .iter()
                    .filter(|d| kinds.contains(&d.kind))
                    .map(|d| d.kind.as_str())
                    .collect();
                fired.dedup();
                if !fired.is_empty() {
                    return Err(bad(format!("health check failed: {}", fired.join(", "))));
                }
            }
            Ok(())
        }
        Command::Compare {
            a,
            b,
            gate: gate_path,
            tol_pct,
            write_baseline,
        } => {
            let run_a = resolve_run(&a, &opts.runs_root)?;
            if let Some(b) = b {
                let run_b = resolve_run(&b, &opts.runs_root)?;
                print!("{}", render_compare(&run_a, &run_b));
            }
            if let Some(path) = write_baseline {
                let keys = [
                    "ede_mean_nm",
                    "pixel_accuracy",
                    "class_accuracy",
                    "mean_iou",
                ];
                let baseline = Baseline::from_run(&run_a, tol_pct.unwrap_or(25.0), &keys);
                std::fs::write(&path, baseline.to_json_string()).map_err(io_err)?;
                println!("baseline written to {path}");
            }
            if let Some(path) = gate_path {
                let baseline = Baseline::load(Path::new(&path))
                    .map_err(|e| bad(format!("--gate {path}: {e}")))?;
                let outcome = gate(&run_a, &baseline, tol_pct);
                print!("{}", outcome.render());
                if !outcome.passed() {
                    let failed: Vec<String> =
                        outcome.failures().map(|c| c.metric.clone()).collect();
                    return Err(bad(format!("regression gate failed: {}", failed.join(", "))));
                }
            }
            Ok(())
        }
        Command::RunsLs {
            status,
            command,
            dataset,
            last,
            json,
        } => {
            let root = Path::new(&opts.runs_root);
            let parse = load_index(root).map_err(io_err)?;
            if parse.skipped_lines > 0 {
                eprintln!(
                    "warning: index has {} corrupt line(s) — run `lithogan-cli reindex`",
                    parse.skipped_lines
                );
            }
            let mut records = parse.records;
            if let Some(s) = &status {
                records
                    .retain(|r| r.status == *s || (s == "aborted" && r.status.starts_with("aborted")));
            }
            if let Some(c) = &command {
                records.retain(|r| r.command == *c);
            }
            if let Some(fp) = &dataset {
                records.retain(|r| {
                    r.dataset_fingerprint
                        .as_deref()
                        .is_some_and(|f| f.starts_with(fp.as_str()))
                });
            }
            if let Some(n) = last {
                let cut = records.len().saturating_sub(n);
                records.drain(..cut);
            }
            if json {
                // Same serializer as the index lines and /api/runs, so
                // downstream tooling sees one schema.
                for r in &records {
                    println!("{}", r.to_jsonl());
                }
                return Ok(());
            }
            if records.is_empty() {
                println!("no runs match under {}", root.display());
                return Ok(());
            }
            let w = records
                .iter()
                .map(|r| r.run_id.len())
                .max()
                .unwrap_or(3)
                .max(3);
            println!(
                "{:<w$}  {:<16}  {:<8}  {:<10}  {:>7}  {:<12}  {:>8}  health",
                "run", "started (UTC)", "command", "status", "wall", "dataset", "ede nm"
            );
            for r in &records {
                let wall = r
                    .wall_clock_s
                    .map_or("-".to_string(), |v| format!("{v:.1}s"));
                let fp = r
                    .dataset_fingerprint
                    .as_deref()
                    .map_or("-", |f| &f[..f.len().min(12)]);
                let ede = r
                    .metric("ede_mean_nm")
                    .map_or("-".to_string(), |v| format!("{v:.2}"));
                println!(
                    "{:<w$}  {:<16}  {:<8}  {:<10}  {:>7}  {:<12}  {:>8}  {}",
                    r.run_id,
                    fmt_unix(r.started_unix_s),
                    r.command,
                    r.status,
                    wall,
                    fp,
                    ede,
                    r.health.as_deref().unwrap_or("-"),
                );
            }
            println!("{} run(s)", records.len());
            Ok(())
        }
        Command::RunsTrend {
            metrics,
            slice,
            last,
            gate: gate_on,
            tol_pct,
            drift_runs,
            out,
        } => {
            let root = Path::new(&opts.runs_root);
            let records = load_index(root).map_err(io_err)?.records;
            if records.is_empty() {
                return Err(bad(format!(
                    "no runs indexed under {} (need runs, or `lithogan-cli reindex`)",
                    root.display()
                )));
            }
            let mut cfg = TrendConfig::default();
            if let Some(p) = tol_pct {
                cfg.tol_pct = p;
            }
            if let Some(n) = drift_runs {
                cfg.drift_runs = n.max(1);
            }
            // `--slice family=F` redirects every metric to its per-family
            // slice key; runs without that slice simply have no value for
            // the key, so they abstain from the trend and its drift gate.
            let family = match &slice {
                Some(spec) => match spec.strip_prefix("family=") {
                    Some(f) if !f.is_empty() => Some(f.to_string()),
                    _ => return Err(bad("--slice takes family=<name>")),
                },
                None => None,
            };
            let mut trends = Vec::new();
            for metric in metrics.split(',').map(str::trim).filter(|m| !m.is_empty()) {
                let key = match &family {
                    Some(f) => slice_metric_key(metric, f),
                    None => metric.to_string(),
                };
                let t = trend(&records, &key, last, &cfg);
                print!("{}", render_trend(&t));
                trends.push(t);
            }
            if trends.is_empty() {
                return Err(bad("runs trend: empty metric list"));
            }
            let svg_path = out.map_or_else(|| root.join("trend.svg"), PathBuf::from);
            std::fs::write(&svg_path, trend_svg(&trends)).map_err(io_err)?;
            println!("trend:      {}", svg_path.display());
            if gate_on {
                let drifted: Vec<&str> = trends
                    .iter()
                    .filter(|t| t.drift.is_some())
                    .map(|t| t.metric.as_str())
                    .collect();
                if !drifted.is_empty() {
                    return Err(bad(format!(
                        "trend gate failed: drift in {}",
                        drifted.join(", ")
                    )));
                }
                println!("trend gate: PASS");
            }
            Ok(())
        }
        Command::RunsDiffEval {
            a,
            b,
            gate: gate_on,
            tol_pct,
        } => {
            let run_a = resolve_run(&a, &opts.runs_root)?;
            let run_b = resolve_run(&b, &opts.runs_root)?;
            let d = diff_eval(
                &run_a.manifest.run_id,
                &run_a.records,
                &run_b.manifest.run_id,
                &run_b.records,
                tol_pct.unwrap_or(10.0),
            );
            print!("{}", render_diff_eval(&d));
            if gate_on && !d.gate_passed() {
                return Err(bad(format!(
                    "diff-eval gate failed: {} clip(s) regressed",
                    d.regressed.len()
                )));
            }
            Ok(())
        }
        Command::RunsGc { keep, baseline } => {
            let root = Path::new(&opts.runs_root);
            // The baseline run must survive gc: a vanished baseline would
            // silently disarm `compare --gate` in CI.
            let baseline_path = match baseline {
                Some(path) => Some(PathBuf::from(path)),
                None => {
                    let default = PathBuf::from("ci/baseline.json");
                    default.exists().then_some(default)
                }
            };
            let mut protected = Vec::new();
            if let Some(path) = baseline_path {
                let b = Baseline::load(&path)
                    .map_err(|e| bad(format!("--baseline {}: {e}", path.display())))?;
                if let Some(id) = b.run_id {
                    protected.push(id);
                }
            }
            let outcome = litho_ledger::index::gc(root, keep, &protected).map_err(io_err)?;
            println!(
                "gc: kept {}, removed {}, protected {}",
                outcome.kept.len(),
                outcome.removed.len(),
                outcome.protected.len()
            );
            for id in &outcome.removed {
                println!("removed   {id}");
            }
            for id in &outcome.protected {
                println!("protected {id}");
            }
            Ok(())
        }
        Command::Reindex => {
            let root = Path::new(&opts.runs_root);
            let outcome = reindex(root).map_err(io_err)?;
            println!(
                "reindexed {} run(s) -> {}",
                outcome.records.len(),
                litho_ledger::index::index_path(root).display()
            );
            for dir in &outcome.unreadable {
                eprintln!("warning: skipped unreadable run dir {dir}");
            }
            Ok(())
        }
        Command::Alerts { rules, gate, json } => {
            let root = Path::new(&opts.runs_root);
            let rules =
                litho_alert::load_rules(root, rules.as_deref().map(Path::new)).map_err(io_err)?;
            let records = load_index(root).map_err(io_err)?.records;
            let prior = litho_alert::load_alerts(root).map_err(io_err)?;
            let now = std::time::SystemTime::now()
                .duration_since(std::time::SystemTime::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let ctx = litho_alert::EngineContext {
                records: &records,
                runs_root: root,
                now_unix_s: now,
            };
            let outcome = litho_alert::evaluate(&rules, &ctx, &prior.active());
            litho_alert::append_alerts(root, &outcome.transitions).map_err(io_err)?;
            for t in &outcome.transitions {
                eprintln!("{}", litho_alert::render_transition(t));
            }
            print!("{}", litho_alert::render_alerts_table(&outcome.active));
            if json {
                for a in &outcome.active {
                    println!("{}", a.to_json());
                }
            }
            let firing = outcome.firing().len();
            if gate {
                if firing > 0 {
                    return Err(bad(format!("alerts gate: {firing} alert(s) firing")));
                }
                println!("alerts gate: PASS");
            }
            Ok(())
        }
        Command::Watch {
            run,
            interval_ms,
            timeout_s,
            wait_s,
        } => {
            let direct = Path::new(&run);
            let dir = if direct.join("manifest.json").exists() || direct.is_dir() {
                direct.to_path_buf()
            } else {
                validate_run_id(&run).map_err(io_err)?;
                Path::new(&opts.runs_root).join(&run)
            };
            let cfg = WatchConfig {
                interval: Duration::from_millis(interval_ms.max(10)),
                timeout: timeout_s.map(Duration::from_secs),
                wait_create: Duration::from_secs(wait_s),
            };
            eprintln!("watching {}", dir.display());
            let mut session = WatchSession::new(&dir);
            // Alert transitions appended while watching are echoed live;
            // the initial drain swallows history so only new ones print.
            let mut alerts_tail = litho_ledger::json::jsonl::JsonlTailer::new(
                litho_alert::alerts_path(Path::new(&opts.runs_root)),
            );
            let _ = alerts_tail.poll();
            // Snapshots can differ in unrendered fields (e.g. the health
            // record count); only print when the visible line changes.
            let mut last_line = String::new();
            let snap = session
                .follow_with(
                    &cfg,
                    |snap| {
                        let line = render_snapshot(snap);
                        if line != last_line {
                            eprintln!("{line}");
                            last_line = line;
                        }
                    },
                    || {
                        for v in alerts_tail.poll().unwrap_or_default() {
                            if let Some(rec) = litho_alert::AlertRecord::from_json(&v) {
                                eprintln!("{}", litho_alert::render_transition(&rec));
                            }
                        }
                    },
                )
                .map_err(|e| bad(format!("watch {run:?}: {e}")))?;
            println!("{}", render_snapshot(&snap));
            if snap.succeeded() {
                Ok(())
            } else {
                Err(bad(format!("run finished with status {:?}", snap.status)))
            }
        }
        Command::Dash { addr } => {
            let cfg = DashConfig {
                addr,
                runs_root: PathBuf::from(&opts.runs_root),
                // Exclude the dash's own (running) ledger from live tails.
                run_id: ledger.as_ref().map(|l| l.run_id().to_string()),
            };
            run_dash(&cfg).map_err(io_err)
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = split_global_args(&raw).and_then(|(args, opts)| {
        let cmd = parse(&args)?;
        Ok((cmd, opts))
    });
    let (cmd, opts) = match parsed {
        Ok(v) => v,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    };
    // Before the ledger opens, so the manifest records the effective width.
    if let Some(n) = opts.threads {
        litho_tensor::pool::configure_threads(n);
    }
    // Likewise: the manifest's `simd` field records the *effective* kernel
    // level, already clamped to what the host can execute.
    if let Some(level) = opts.simd {
        litho_tensor::configure_simd(level);
    }
    let mut ledger = if cmd.records_run() && !opts.no_run {
        match RunLedger::create(
            Path::new(&opts.runs_root),
            cmd.name(),
            cmd.seed(),
            cmd.config_pairs(),
            None,
        ) {
            Ok(ledger) => {
                eprintln!("run: {}", ledger.dir().display());
                // Crash forensics: ring the last telemetry events and
                // dump an incident bundle if this run panics or aborts.
                lithogan::incident::arm(ledger.dir(), litho_telemetry::DEFAULT_FLIGHT_CAPACITY);
                Some(ledger)
            }
            Err(err) => {
                eprintln!("error: cannot create run ledger: {err}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let outcome = init_telemetry(&opts, cmd.name(), ledger.as_mut()).and_then(|()| {
        let result = run(cmd, &opts, &mut ledger);
        if let Some(ledger) = &mut ledger {
            // Compute-plane profile of the whole invocation: pool stats
            // accumulate from process start, so the totals are the run's.
            if let Some(util) = litho_tensor::pool::stats().utilization() {
                ledger.set_pool_utilization(util);
            }
            let ws = litho_tensor::peak_workspace_bytes();
            if ws > 0 {
                ledger.set_peak_workspace_bytes(ws);
            }
            // An aborted training run is recorded as such, distinct from
            // both a clean finish and an ordinary error.
            match &result {
                Err(TensorError::Aborted(reason)) => {
                    // Ship the post-mortem before finalize stamps the
                    // manifest, so the bundle snapshots the dying state.
                    match lithogan::incident::dump(&format!("aborted({reason})"), None) {
                        Ok(Some(bundle)) => eprintln!("incident: {}", bundle.display()),
                        Ok(None) => {}
                        Err(e) => eprintln!("warning: incident bundle failed: {e}"),
                    }
                    ledger
                        .finalize_with_status(&format!("aborted({reason})"))
                        .map_err(io_err)?
                }
                other => ledger.finalize(other.is_ok()).map_err(io_err)?,
            }
        }
        result
    });
    litho_telemetry::flush();
    if opts.trace && litho_telemetry::is_enabled() {
        litho_telemetry::print_report();
    }
    match outcome {
        Ok(()) => {}
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate_with_defaults() {
        let cmd = parse(&strs(&["generate", "--out", "x.lgd"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                node: "N10".into(),
                clips: 140,
                size: 64,
                jitter_nm: 3.0,
                out: "x.lgd".into()
            }
        );
    }

    #[test]
    fn parses_train_flags() {
        let cmd = parse(&strs(&[
            "train", "--data", "d.lgd", "--epochs", "5", "--augment", "--out", "m.lgm",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Train {
                data: "d.lgd".into(),
                epochs: 5,
                seed: 0,
                augment: true,
                health: false,
                health_stride: 8,
                abort_on: None,
                poison_nan_at_epoch: None,
                out: "m.lgm".into()
            }
        );
        assert_eq!(cmd.seed(), Some(0));
        assert!(cmd.records_run());
        assert!(cmd
            .config_pairs()
            .contains(&("epochs".to_string(), "5".to_string())));
        // No health flags -> no health config pairs.
        assert!(!cmd.config_pairs().iter().any(|(k, _)| k == "health"));
    }

    #[test]
    fn parses_train_health_flags() {
        let cmd = parse(&strs(&[
            "train",
            "--data",
            "d.lgd",
            "--health-stride",
            "4",
            "--abort-on",
            "nan,collapse",
            "--out",
            "m.lgm",
        ]))
        .unwrap();
        match &cmd {
            Command::Train {
                health,
                health_stride,
                abort_on,
                ..
            } => {
                // --health-stride / --abort-on imply --health.
                assert!(health);
                assert_eq!(*health_stride, 4);
                assert_eq!(abort_on.as_deref(), Some("nan,collapse"));
            }
            other => panic!("expected train, got {other:?}"),
        }
        let pairs = cmd.config_pairs();
        assert!(pairs.contains(&("health".to_string(), "true".to_string())));
        assert!(pairs.contains(&("abort_on".to_string(), "nan,collapse".to_string())));
        assert!(parse(&strs(&[
            "train", "--data", "d", "--health-stride", "x", "--out", "m"
        ]))
        .is_err());
    }

    #[test]
    fn parses_profile_command() {
        let cmd = parse(&strs(&["profile", "train-1-2"])).unwrap();
        assert_eq!(
            cmd,
            Command::Profile {
                run: "train-1-2".into(),
                top: 20,
            }
        );
        assert!(!cmd.records_run());
        assert_eq!(cmd.name(), "profile");
        assert_eq!(
            parse(&strs(&["profile", "r", "--top", "5"])).unwrap(),
            Command::Profile {
                run: "r".into(),
                top: 5,
            }
        );
        assert!(parse(&strs(&["profile"])).is_err());
        assert!(parse(&strs(&["profile", "a", "b"])).is_err());
        assert!(parse(&strs(&["profile", "r", "--top", "x"])).is_err());
    }

    #[test]
    fn parses_health_command() {
        assert_eq!(
            parse(&strs(&["health", "train-1-2"])).unwrap(),
            Command::Health {
                run: "train-1-2".into(),
                fail_on: None,
            }
        );
        let cmd = parse(&strs(&["health", "r", "--fail-on", "nan,dead-layer"])).unwrap();
        assert_eq!(
            cmd,
            Command::Health {
                run: "r".into(),
                fail_on: Some("nan,dead-layer".into()),
            }
        );
        assert!(!cmd.records_run());
        assert!(parse(&strs(&["health"])).is_err());
        assert!(parse(&strs(&["health", "a", "b"])).is_err());
    }

    #[test]
    fn parses_report_and_compare() {
        assert_eq!(
            parse(&strs(&["report", "train-1-2"])).unwrap(),
            Command::Report {
                run: "train-1-2".into()
            }
        );
        assert_eq!(
            parse(&strs(&["compare", "a", "b"])).unwrap(),
            Command::Compare {
                a: "a".into(),
                b: Some("b".into()),
                gate: None,
                tol_pct: None,
                write_baseline: None,
            }
        );
        let gated = parse(&strs(&[
            "compare", "a", "--gate", "base.json", "--tol-pct", "12.5",
        ]))
        .unwrap();
        assert_eq!(
            gated,
            Command::Compare {
                a: "a".into(),
                b: None,
                gate: Some("base.json".into()),
                tol_pct: Some(12.5),
                write_baseline: None,
            }
        );
        assert!(!gated.records_run());
        // One run and no gate/baseline is a user error.
        assert!(parse(&strs(&["compare", "a"])).is_err());
        assert!(parse(&strs(&["report"])).is_err());
        assert!(parse(&strs(&["report", "a", "b"])).is_err());
    }

    #[test]
    fn parses_runs_family() {
        assert_eq!(
            parse(&strs(&["runs", "ls", "--status", "ok", "--last", "5"])).unwrap(),
            Command::RunsLs {
                status: Some("ok".into()),
                command: None,
                dataset: None,
                last: Some(5),
                json: false,
            }
        );
        assert_eq!(
            parse(&strs(&["runs", "ls", "--json", "--command", "train"])).unwrap(),
            Command::RunsLs {
                status: None,
                command: Some("train".into()),
                dataset: None,
                last: None,
                json: true,
            }
        );
        // In `runs trend`, --gate is boolean: the metric stays positional.
        let t = parse(&strs(&[
            "runs",
            "trend",
            "ede_mean_nm,mean_iou",
            "--gate",
            "--tol-pct",
            "7.5",
            "--last",
            "10",
        ]))
        .unwrap();
        assert_eq!(
            t,
            Command::RunsTrend {
                metrics: "ede_mean_nm,mean_iou".into(),
                slice: None,
                last: Some(10),
                gate: true,
                tol_pct: Some(7.5),
                drift_runs: None,
                out: None,
            }
        );
        assert!(!t.records_run());
        assert_eq!(t.name(), "runs");
        // --slice keeps the metric positional.
        match parse(&strs(&["runs", "trend", "ede_mean_nm", "--slice", "family=chain1d"])).unwrap()
        {
            Command::RunsTrend { metrics, slice, .. } => {
                assert_eq!(metrics, "ede_mean_nm");
                assert_eq!(slice.as_deref(), Some("family=chain1d"));
            }
            other => panic!("expected runs trend, got {other:?}"),
        }
        assert_eq!(
            parse(&strs(&["runs", "gc", "--keep", "3"])).unwrap(),
            Command::RunsGc {
                keep: 3,
                baseline: None,
            }
        );
        assert_eq!(parse(&strs(&["reindex"])).unwrap(), Command::Reindex);
        assert!(parse(&strs(&["runs"])).is_err());
        assert!(parse(&strs(&["runs", "trend"])).is_err());
        assert!(parse(&strs(&["runs", "gc"])).is_err());
    }

    #[test]
    fn parses_triage_and_diff_eval() {
        let cmd = parse(&strs(&["triage", "train-1-2"])).unwrap();
        assert_eq!(
            cmd,
            Command::Triage {
                run: "train-1-2".into(),
                worst: 10,
            }
        );
        assert!(!cmd.records_run());
        assert_eq!(cmd.name(), "triage");
        assert_eq!(
            parse(&strs(&["triage", "r", "--worst", "3"])).unwrap(),
            Command::Triage {
                run: "r".into(),
                worst: 3,
            }
        );
        assert!(parse(&strs(&["triage"])).is_err());
        assert!(parse(&strs(&["triage", "a", "b"])).is_err());
        assert!(parse(&strs(&["triage", "r", "--worst", "x"])).is_err());

        // --gate is boolean in diff-eval: both runs stay positional.
        let cmd = parse(&strs(&[
            "runs", "diff-eval", "run-a", "run-b", "--gate", "--tol-pct", "5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::RunsDiffEval {
                a: "run-a".into(),
                b: "run-b".into(),
                gate: true,
                tol_pct: Some(5.0),
            }
        );
        assert!(!cmd.records_run());
        assert_eq!(cmd.name(), "runs");
        assert!(parse(&strs(&["runs", "diff-eval", "a"])).is_err());
        assert!(parse(&strs(&["runs", "diff-eval", "a", "b", "c"])).is_err());
    }

    #[test]
    fn parses_alerts() {
        assert_eq!(
            parse(&strs(&["alerts"])).unwrap(),
            Command::Alerts {
                rules: None,
                gate: false,
                json: false,
            }
        );
        assert_eq!(
            parse(&strs(&["alerts", "--rules", "alerts.toml", "--gate", "--json"])).unwrap(),
            Command::Alerts {
                rules: Some("alerts.toml".into()),
                gate: true,
                json: true,
            }
        );
    }

    #[test]
    fn parses_watch() {
        let cmd = parse(&strs(&["watch", "train-1-2", "--timeout-s", "30"])).unwrap();
        assert_eq!(
            cmd,
            Command::Watch {
                run: "train-1-2".into(),
                interval_ms: 200,
                timeout_s: Some(30),
                wait_s: 10,
            }
        );
        assert!(!cmd.records_run());
        assert!(parse(&strs(&["watch"])).is_err());
        assert!(parse(&strs(&["watch", "a", "b"])).is_err());
    }

    #[test]
    fn parses_dash() {
        let cmd = parse(&strs(&["dash"])).unwrap();
        assert_eq!(
            cmd,
            Command::Dash {
                addr: "127.0.0.1:9091".into(),
            }
        );
        // The daemon is itself a recorded run, with its address in the
        // manifest config.
        assert!(cmd.records_run());
        assert_eq!(cmd.name(), "dash");
        assert_eq!(
            cmd.config_pairs(),
            vec![("addr".to_string(), "127.0.0.1:9091".to_string())]
        );
        assert_eq!(
            parse(&strs(&["dash", "--addr", "0.0.0.0:0"])).unwrap(),
            Command::Dash {
                addr: "0.0.0.0:0".into(),
            }
        );
    }

    #[test]
    fn global_flags_accept_equals_form() {
        let (rest, t) = split_global_args(&strs(&[
            "runs",
            "ls",
            "--runs-root=elsewhere",
            "--metrics-out=trace.jsonl",
        ]))
        .unwrap();
        assert_eq!(rest, strs(&["runs", "ls"]));
        assert_eq!(t.runs_root, "elsewhere");
        assert_eq!(t.metrics_out.as_deref(), Some("trace.jsonl"));
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse(&strs(&["generate"])).is_err());
        assert!(parse(&strs(&["train", "--out", "m"])).is_err());
        assert!(parse(&strs(&["eval", "--data", "d"])).is_err());
        assert!(parse(&strs(&["frobnicate"])).is_err());
    }

    #[test]
    fn bad_numbers_error() {
        assert!(parse(&strs(&["generate", "--clips", "abc", "--out", "x"])).is_err());
        assert!(parse(&strs(&["predict", "--data", "d", "--model", "m", "--index", "x"])).is_err());
    }

    #[test]
    fn global_flags_are_stripped_anywhere() {
        let (rest, t) = split_global_args(&strs(&[
            "--trace", "train", "--data", "d.lgd", "--metrics-out", "run.jsonl", "--no-run",
            "--runs-root", "elsewhere", "--out", "m.lgm",
        ]))
        .unwrap();
        assert_eq!(rest, strs(&["train", "--data", "d.lgd", "--out", "m.lgm"]));
        assert!(t.trace);
        assert!(t.no_run);
        assert_eq!(t.metrics_out.as_deref(), Some("run.jsonl"));
        assert_eq!(t.runs_root, "elsewhere");

        let (rest, t) = split_global_args(&strs(&["eval", "--data", "d", "--model", "m"]))
            .unwrap();
        assert_eq!(rest.len(), 5);
        assert_eq!(t, GlobalOpts::default());
        assert_eq!(t.runs_root, "runs");
    }

    #[test]
    fn trailing_value_flags_without_value_error() {
        assert!(split_global_args(&strs(&["eval", "--metrics-out"])).is_err());
        assert!(split_global_args(&strs(&["eval", "--runs-root"])).is_err());
        assert!(split_global_args(&strs(&["eval", "--threads"])).is_err());
    }

    #[test]
    fn global_threads_flag_parses() {
        let (rest, t) = split_global_args(&strs(&[
            "eval", "--threads", "4", "--data", "d", "--model", "m",
        ]))
        .unwrap();
        assert_eq!(rest, strs(&["eval", "--data", "d", "--model", "m"]));
        assert_eq!(t.threads, Some(4));
        let (_, t) = split_global_args(&strs(&["eval", "--threads=2"])).unwrap();
        assert_eq!(t.threads, Some(2));
        // 0 = auto-detect; accepted, not an error.
        let (_, t) = split_global_args(&strs(&["eval", "--threads", "0"])).unwrap();
        assert_eq!(t.threads, Some(0));
        assert!(split_global_args(&strs(&["eval", "--threads", "x"])).is_err());
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&strs(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            parse(&strs(&["help", "train"])).unwrap(),
            Command::HelpFor("train".into())
        );
        assert_eq!(
            parse(&strs(&["compare", "--help"])).unwrap(),
            Command::HelpFor("compare".into())
        );
        assert!(usage().contains("generate"));
        assert!(usage().contains("--runs-root"));
        // Every per-command help mentions the global observability flags.
        for cmd in [
            "generate", "train", "eval", "predict", "report", "triage", "profile", "health",
            "compare", "runs", "reindex", "alerts", "watch", "dash",
        ] {
            let text = command_help(cmd);
            assert!(text.contains("--trace"), "{cmd} help lacks --trace");
            assert!(
                text.contains("--metrics-out"),
                "{cmd} help lacks --metrics-out"
            );
            assert!(text.contains(cmd), "{cmd} help lacks its own name");
        }
        // Unknown command help falls back to usage.
        assert!(command_help("nope").contains("usage:"));
    }
}
