//! `lithogan-cli` — dataset generation, training, evaluation and
//! prediction from the command line.
//!
//! ```text
//! lithogan-cli generate --node N10 --clips 140 --size 64 --out data.lgd
//! lithogan-cli train    --data data.lgd --epochs 10 --out model.lgm
//! lithogan-cli eval     --data data.lgd --model model.lgm
//! lithogan-cli predict  --data data.lgd --model model.lgm --index 3 --out-dir out/
//! ```
//!
//! Every command additionally accepts the observability flags
//! `--trace` (print a nested span/metric report to stderr on exit) and
//! `--metrics-out FILE` (stream telemetry events as JSONL).

use litho_dataset::{generate, load_dataset, save_dataset, DatasetConfig};
use litho_layout::image::{overlay_panel, write_ppm};
use litho_metrics::MetricAccumulator;
use litho_sim::ProcessConfig;
use litho_tensor::TensorError;
use lithogan::{LithoGan, NetConfig, Result, TrainConfig};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Generate {
        node: String,
        clips: usize,
        size: usize,
        jitter_nm: f64,
        out: String,
    },
    Train {
        data: String,
        epochs: usize,
        seed: u64,
        augment: bool,
        out: String,
    },
    Eval {
        data: String,
        model: String,
    },
    Predict {
        data: String,
        model: String,
        index: usize,
        out_dir: String,
    },
    Help,
}

fn usage() -> String {
    "usage:\n  \
     lithogan-cli generate --node <N10|N7> [--clips N] [--size S] [--jitter NM] --out FILE\n  \
     lithogan-cli train    --data FILE [--epochs N] [--seed N] [--augment] --out FILE\n  \
     lithogan-cli eval     --data FILE --model FILE\n  \
     lithogan-cli predict  --data FILE --model FILE --index I --out-dir DIR\n\
     global flags: --trace (span report on stderr), --metrics-out FILE (JSONL event stream)"
        .into()
}

/// Observability flags, accepted by every command.
#[derive(Debug, Clone, Default, PartialEq)]
struct TelemetryOpts {
    trace: bool,
    metrics_out: Option<String>,
}

/// Strips `--trace` / `--metrics-out FILE` out of `args` so subcommand
/// parsing never sees them, and returns the telemetry configuration.
///
/// # Errors
///
/// Returns an error for `--metrics-out` without a following path (the
/// subcommand parsers ignore flags they don't know, so it can't be left
/// for them to reject).
fn split_telemetry_args(args: &[String]) -> Result<(Vec<String>, TelemetryOpts)> {
    let mut opts = TelemetryOpts::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => opts.trace = true,
            "--metrics-out" => {
                if i + 1 >= args.len() {
                    return Err(bad("--metrics-out requires a file path"));
                }
                opts.metrics_out = Some(args[i + 1].clone());
                i += 1;
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    Ok((rest, opts))
}

/// Turns telemetry on per `opts`. Returns an error for an unwritable
/// `--metrics-out` path.
fn init_telemetry(opts: &TelemetryOpts, command: &str) -> Result<()> {
    if !opts.trace && opts.metrics_out.is_none() {
        return Ok(());
    }
    if let Some(path) = &opts.metrics_out {
        let sink = litho_telemetry::JsonlSink::create(std::path::Path::new(path))
            .map_err(|e| bad(format!("--metrics-out {path}: {e}")))?;
        litho_telemetry::set_sink(Some(Box::new(sink)));
    }
    litho_telemetry::enable();
    litho_telemetry::emit_run_metadata(&[(
        "command",
        litho_telemetry::Value::Str(command.to_string()),
    )]);
    Ok(())
}

fn bad(msg: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument(msg.into())
}

/// Parses an argument vector (without the program name).
fn parse(args: &[String]) -> Result<Command> {
    let get = |flag: &str| -> Option<String> {
        args.windows(2)
            .find(|w| w[0] == flag)
            .map(|w| w[1].clone())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    match args.first().map(String::as_str) {
        Some("generate") => Ok(Command::Generate {
            node: get("--node").unwrap_or_else(|| "N10".into()),
            clips: get("--clips").map_or(Ok(140), |v| v.parse().map_err(|_| bad("--clips")))?,
            size: get("--size").map_or(Ok(64), |v| v.parse().map_err(|_| bad("--size")))?,
            jitter_nm: get("--jitter").map_or(Ok(3.0), |v| v.parse().map_err(|_| bad("--jitter")))?,
            out: get("--out").ok_or_else(|| bad("generate requires --out"))?,
        }),
        Some("train") => Ok(Command::Train {
            data: get("--data").ok_or_else(|| bad("train requires --data"))?,
            epochs: get("--epochs").map_or(Ok(10), |v| v.parse().map_err(|_| bad("--epochs")))?,
            seed: get("--seed").map_or(Ok(0), |v| v.parse().map_err(|_| bad("--seed")))?,
            augment: has("--augment"),
            out: get("--out").ok_or_else(|| bad("train requires --out"))?,
        }),
        Some("eval") => Ok(Command::Eval {
            data: get("--data").ok_or_else(|| bad("eval requires --data"))?,
            model: get("--model").ok_or_else(|| bad("eval requires --model"))?,
        }),
        Some("predict") => Ok(Command::Predict {
            data: get("--data").ok_or_else(|| bad("predict requires --data"))?,
            model: get("--model").ok_or_else(|| bad("predict requires --model"))?,
            index: get("--index").map_or(Ok(0), |v| v.parse().map_err(|_| bad("--index")))?,
            out_dir: get("--out-dir").unwrap_or_else(|| ".".into()),
        }),
        Some("help") | Some("--help") | None => Ok(Command::Help),
        Some(other) => Err(bad(format!("unknown command {other:?}\n{}", usage()))),
    }
}

fn net_for(size: usize) -> NetConfig {
    if size == 256 {
        NetConfig::paper()
    } else {
        NetConfig::scaled(size)
    }
}

fn run(cmd: Command) -> Result<()> {
    match cmd {
        Command::Help => {
            println!("{}", usage());
            Ok(())
        }
        Command::Generate {
            node,
            clips,
            size,
            jitter_nm,
            out,
        } => {
            let process = match node.to_uppercase().as_str() {
                "N10" => ProcessConfig::n10(),
                "N7" => ProcessConfig::n7(),
                other => return Err(bad(format!("unknown node {other:?} (N10 or N7)"))),
            };
            let mut config = DatasetConfig::scaled(process, clips, size);
            config.mask_jitter_nm = jitter_nm;
            let t0 = std::time::Instant::now();
            let (ds, stats) = generate(&config)?;
            save_dataset(&ds, &out)?;
            println!(
                "generated {} samples in {:.1?} ({} retries, {} OPC non-converged) -> {out}",
                ds.len(),
                t0.elapsed(),
                stats.empty_golden_retries,
                stats.opc_unconverged
            );
            Ok(())
        }
        Command::Train {
            data,
            epochs,
            seed,
            augment,
            out,
        } => {
            let ds = load_dataset(&data)?;
            let (train, _) = ds.split();
            let cfg = TrainConfig {
                epochs,
                seed,
                augment,
                ..TrainConfig::paper()
            };
            let mut model = LithoGan::new(&net_for(ds.config.image_size), seed);
            let t0 = std::time::Instant::now();
            let history = model.train(&train, &cfg, |epoch, _| {
                eprintln!("epoch {}/{epochs} done ({:.1?})", epoch + 1, t0.elapsed());
            })?;
            model.save_to_path(&out)?;
            println!(
                "trained on {} samples; generator loss {:.2} -> {:.2}; saved {out}",
                train.len(),
                history.g_loss.first().copied().unwrap_or(0.0),
                history.g_loss.last().copied().unwrap_or(0.0)
            );
            Ok(())
        }
        Command::Eval { data, model } => {
            let ds = load_dataset(&data)?;
            let (_, test) = ds.split();
            let mut m = LithoGan::load_from_path(&net_for(ds.config.image_size), &model)?;
            let mut acc = MetricAccumulator::new(ds.config.golden_nm_per_px());
            for s in &test {
                acc.add(&m.predict(&s.mask)?, &s.golden)?;
            }
            let s = acc.summary();
            println!(
                "test samples {}\nEDE        {:.2} ± {:.2} nm\npixel acc  {:.4}\nclass acc  {:.4}\nmean IoU   {:.4}\ncentre err {:.2} nm",
                s.samples, s.ede_mean_nm, s.ede_std_nm, s.pixel_accuracy, s.class_accuracy, s.mean_iou, s.center_error_nm
            );
            Ok(())
        }
        Command::Predict {
            data,
            model,
            index,
            out_dir,
        } => {
            let ds = load_dataset(&data)?;
            let sample = ds
                .samples
                .get(index)
                .ok_or_else(|| bad(format!("index {index} out of range ({})", ds.len())))?;
            let mut m = LithoGan::load_from_path(&net_for(ds.config.image_size), &model)?;
            let p = m.predict_detailed(&sample.mask)?;
            std::fs::create_dir_all(&out_dir).map_err(|e| bad(e.to_string()))?;
            let dir = std::path::Path::new(&out_dir);
            write_ppm(&sample.mask, dir.join(format!("sample{index}_mask.ppm")))?;
            let binary = p.adjusted.map(|v| if v >= 0.5 { 1.0 } else { 0.0 });
            let panel = overlay_panel(&binary, &sample.golden)?;
            write_ppm(&panel, dir.join(format!("sample{index}_prediction.ppm")))?;
            println!(
                "sample {index}: predicted centre ({:.1}, {:.1}) px, inference {:.2} ms; panels in {out_dir}",
                p.center_px.0,
                p.center_px.1,
                p.elapsed.as_secs_f64() * 1e3
            );
            Ok(())
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, telemetry) = match split_telemetry_args(&raw) {
        Ok(split) => split,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    };
    let command = args.first().cloned().unwrap_or_default();
    let outcome = init_telemetry(&telemetry, &command)
        .and_then(|()| parse(&args))
        .and_then(run);
    litho_telemetry::flush();
    if telemetry.trace && litho_telemetry::is_enabled() {
        litho_telemetry::print_report();
    }
    match outcome {
        Ok(()) => {}
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate_with_defaults() {
        let cmd = parse(&strs(&["generate", "--out", "x.lgd"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                node: "N10".into(),
                clips: 140,
                size: 64,
                jitter_nm: 3.0,
                out: "x.lgd".into()
            }
        );
    }

    #[test]
    fn parses_train_flags() {
        let cmd = parse(&strs(&[
            "train", "--data", "d.lgd", "--epochs", "5", "--augment", "--out", "m.lgm",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Train {
                data: "d.lgd".into(),
                epochs: 5,
                seed: 0,
                augment: true,
                out: "m.lgm".into()
            }
        );
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse(&strs(&["generate"])).is_err());
        assert!(parse(&strs(&["train", "--out", "m"])).is_err());
        assert!(parse(&strs(&["eval", "--data", "d"])).is_err());
        assert!(parse(&strs(&["frobnicate"])).is_err());
    }

    #[test]
    fn bad_numbers_error() {
        assert!(parse(&strs(&["generate", "--clips", "abc", "--out", "x"])).is_err());
        assert!(parse(&strs(&["predict", "--data", "d", "--model", "m", "--index", "x"])).is_err());
    }

    #[test]
    fn telemetry_flags_are_stripped_anywhere() {
        let (rest, t) = split_telemetry_args(&strs(&[
            "--trace", "train", "--data", "d.lgd", "--metrics-out", "run.jsonl", "--out", "m.lgm",
        ]))
        .unwrap();
        assert_eq!(rest, strs(&["train", "--data", "d.lgd", "--out", "m.lgm"]));
        assert!(t.trace);
        assert_eq!(t.metrics_out.as_deref(), Some("run.jsonl"));

        let (rest, t) = split_telemetry_args(&strs(&["eval", "--data", "d", "--model", "m"]))
            .unwrap();
        assert_eq!(rest.len(), 5);
        assert_eq!(t, TelemetryOpts::default());
    }

    #[test]
    fn trailing_metrics_out_without_value_is_an_error() {
        assert!(split_telemetry_args(&strs(&["eval", "--metrics-out"])).is_err());
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&strs(&["help"])).unwrap(), Command::Help);
        assert!(usage().contains("generate"));
    }
}
