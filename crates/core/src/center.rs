//! The centre-prediction CNN (paper Table 2 / §3.3).

use litho_tensor::rng::StdRng;
use litho_tensor::rng::SliceRandom;
use litho_tensor::rng::SeedableRng;

use litho_nn::{mse_loss, Adam, Layer, Optimizer, Phase, Sequential};
use litho_tensor::{Result, Tensor, TensorError};

use crate::health::{HealthMonitor, LoopHealth};
use crate::{NetConfig, TrainConfig};

/// CNN regressor for the resist-pattern centre `(cy, cx)`.
///
/// The paper's dual-learning insight: a CGAN trained on re-centred
/// targets nails the *shape* but knows nothing about the *location*, so a
/// dedicated CNN regresses the centre from the mask image and the
/// generated shape is shifted there at inference.
///
/// Internally the network regresses the *offset from the image centre*
/// in units of `image_size / 8` pixels: the raw centre coordinates have
/// tiny variance around 0.5·S, so a zero-centred, unit-scale target makes
/// the freshly initialised network start exactly at the
/// constant-predictor baseline (centre of the image) and spend its
/// capacity on the displacement signal.
#[derive(Debug)]
pub struct CenterCnn {
    net: Sequential,
    image_size: usize,
    opt: Adam,
    health: Option<LoopHealth>,
}

impl CenterCnn {
    /// Builds a fresh CNN for the given architecture config.
    pub fn new(config: &NetConfig, seed: u64) -> Self {
        let cfg = TrainConfig::paper();
        CenterCnn {
            net: config.build_center_cnn(seed),
            image_size: config.image_size,
            opt: Adam::new(cfg.learning_rate, cfg.beta1, cfg.beta2),
            health: None,
        }
    }

    /// Installs model-health instrumentation: a per-layer stats hook
    /// (net `"C"`), update-ratio tracking on sampled steps, and
    /// per-epoch regression signals.
    pub fn attach_health(&mut self, monitor: &HealthMonitor) {
        self.net.set_stats_hook(Some(monitor.layer_hook("C")));
        self.health = Some(monitor.loop_state("center"));
    }

    /// Mutable access to the underlying network (weight serialization).
    pub fn network_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Scale (px per unit) of the normalised offset targets.
    fn offset_scale(&self) -> f32 {
        self.image_size as f32 / 8.0
    }

    /// Runs one training epoch over `(mask, centre-px)` pairs, returning
    /// the mean MSE loss (in normalised units).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors; `samples` must be non-empty.
    pub fn train_epoch(
        &mut self,
        samples: &[(Tensor, (f32, f32))],
        cfg: &TrainConfig,
        epoch: usize,
    ) -> Result<f32> {
        if samples.is_empty() {
            return Err(TensorError::InvalidArgument(
                "cannot train on an empty sample set".into(),
            ));
        }
        let mid = (self.image_size as f32 - 1.0) / 2.0;
        let scale = self.offset_scale();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xCE17).wrapping_add(epoch as u64));
        order.shuffle(&mut rng);

        if let Some(h) = self.health.as_mut() {
            h.begin_epoch(epoch);
        }

        let _span = litho_telemetry::span("train/center_epoch");
        let epoch_start = std::time::Instant::now();
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let xs: Vec<Tensor> = chunk
                .iter()
                .map(|&i| samples[i].0.map(|v| v * 2.0 - 1.0))
                .collect();
            let x = Tensor::stack(&xs)?;
            let mut target = Tensor::zeros(&[chunk.len(), 2]);
            for (row, &i) in chunk.iter().enumerate() {
                let (cy, cx) = samples[i].1;
                target.set(&[row, 0], (cy - mid) / scale)?;
                target.set(&[row, 1], (cx - mid) / scale)?;
            }
            let sampled = match self.health.as_mut() {
                Some(h) => h.begin_step(),
                None => false,
            };
            if sampled {
                self.opt.set_update_tracking(true);
            }
            self.net.zero_grad();
            let pred = self.net.forward(&x, Phase::Train)?;
            let loss = mse_loss(&pred, &target)?;
            self.net.backward(&loss.grad)?;
            self.opt.step(&mut self.net);
            if sampled {
                if let Some(h) = self.health.as_mut() {
                    h.record_updates("C".to_string(), &self.opt);
                }
                self.opt.set_update_tracking(false);
            }
            total += loss.loss as f64;
            batches += 1;
        }
        let mean = (total / batches as f64) as f32;
        if litho_telemetry::is_enabled() {
            use litho_telemetry::Value;
            let elapsed = epoch_start.elapsed().as_secs_f64();
            litho_telemetry::event(
                "center_epoch",
                &[
                    ("epoch", Value::U64(epoch as u64)),
                    ("mse_loss", Value::F64(mean as f64)),
                    ("grad_norm", Value::F64(crate::cgan::grad_norm(&mut self.net))),
                    (
                        "samples_per_sec",
                        Value::F64(samples.len() as f64 / elapsed.max(1e-12)),
                    ),
                ],
            );
            litho_telemetry::gauge_set("train.center_loss", mean as f64);
            litho_telemetry::counter_add("train.center_epochs", 1);
        }
        if self.health.is_some() {
            let grad_norm = crate::cgan::grad_norm(&mut self.net);
            if let Some(h) = self.health.as_mut() {
                h.end_center_epoch(epoch, mean as f64, grad_norm)?;
            }
        }
        Ok(mean)
    }

    /// Trains for `cfg.epochs` epochs, returning per-epoch losses.
    ///
    /// # Errors
    ///
    /// Propagates [`CenterCnn::train_epoch`] errors.
    pub fn train(
        &mut self,
        samples: &[(Tensor, (f32, f32))],
        cfg: &TrainConfig,
    ) -> Result<Vec<f32>> {
        (0..cfg.epochs)
            .map(|e| self.train_epoch(samples, cfg, e))
            .collect()
    }

    /// Predicts the centre `(cy, cx)` in pixels for one mask image
    /// `[3, S, S]` in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for wrong input shapes.
    pub fn predict(&mut self, mask: &Tensor) -> Result<(f32, f32)> {
        let dims = mask.dims().to_vec();
        if dims.len() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: dims.len(),
            });
        }
        let x = mask
            .map(|v| v * 2.0 - 1.0)
            .reshape(&[1, dims[0], dims[1], dims[2]])?;
        let out = self.net.forward(&x, Phase::Eval)?;
        let mid = (self.image_size as f32 - 1.0) / 2.0;
        let scale = self.offset_scale();
        Ok((
            mid + out.at(&[0, 0])? * scale,
            mid + out.at(&[0, 1])? * scale,
        ))
    }

    /// Predicts centres for a batch of `[3, S, S]` masks in one stacked
    /// forward pass; each result is bit-identical to a single-mask
    /// [`CenterCnn::predict`] call (see [`crate::Cgan::predict_batch`]).
    ///
    /// # Errors
    ///
    /// Returns a tensor error for wrong or mismatched input shapes.
    pub fn predict_batch(&mut self, masks: &[&Tensor]) -> Result<Vec<(f32, f32)>> {
        let Some(first) = masks.first() else {
            return Ok(Vec::new());
        };
        let dims = first.dims().to_vec();
        if dims.len() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: dims.len(),
            });
        }
        let mut data = Vec::with_capacity(masks.len() * first.len());
        for mask in masks {
            if mask.dims() != dims {
                return Err(TensorError::ShapeMismatch {
                    left: mask.dims().to_vec(),
                    right: dims.clone(),
                });
            }
            data.extend(mask.as_slice().iter().map(|&v| v * 2.0 - 1.0));
        }
        let x = Tensor::from_vec(data, &[masks.len(), dims[0], dims[1], dims[2]])?;
        let out = self.net.forward(&x, Phase::Eval)?;
        let mid = (self.image_size as f32 - 1.0) / 2.0;
        let scale = self.offset_scale();
        (0..masks.len())
            .map(|i| {
                Ok((
                    mid + out.at(&[i, 0])? * scale,
                    mid + out.at(&[i, 1])? * scale,
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Masks whose green blob centre is the regression target.
    fn toy_samples(size: usize, n: usize) -> Vec<(Tensor, (f32, f32))> {
        let mut rng = StdRng::seed_from_u64(13);
        (0..n)
            .map(|_| {
                use litho_tensor::rng::Rng;
                let cy = rng.gen_range(4..size - 4);
                let cx = rng.gen_range(4..size - 4);
                let mut mask = Tensor::zeros(&[3, size, size]);
                for y in cy - 2..=cy + 2 {
                    for x in cx - 2..=cx + 2 {
                        mask.set(&[1, y, x], 1.0).unwrap();
                    }
                }
                (mask, (cy as f32, cx as f32))
            })
            .collect()
    }

    #[test]
    fn empty_set_is_an_error() {
        let mut cnn = CenterCnn::new(&NetConfig::scaled(16), 0);
        assert!(cnn.train_epoch(&[], &TrainConfig::paper(), 0).is_err());
    }

    #[test]
    fn loss_decreases_and_prediction_localizes() {
        let net = NetConfig::scaled(16);
        let mut cnn = CenterCnn::new(&net, 0);
        let samples = toy_samples(16, 24);
        let cfg = TrainConfig {
            epochs: 30,
            learning_rate: 1e-3,
            seed: 1,
            ..TrainConfig::paper()
        };
        let losses = cnn.train(&samples, &cfg).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "losses {losses:?}"
        );
        // Mean prediction error below a quarter of the image.
        let mut err = 0.0f32;
        for (mask, (cy, cx)) in &samples {
            let (py, px) = cnn.predict(mask).unwrap();
            err += ((py - cy).powi(2) + (px - cx).powi(2)).sqrt();
        }
        err /= samples.len() as f32;
        assert!(err < 4.0, "mean center error {err} px");
    }

    #[test]
    fn predict_validates_rank() {
        let mut cnn = CenterCnn::new(&NetConfig::scaled(16), 0);
        assert!(cnn.predict(&Tensor::zeros(&[16, 16])).is_err());
    }
}
