//! The LithoGAN dual-learning framework (paper §3.3, Figure 5).

use std::time::{Duration, Instant};

use litho_dataset::Sample;
use litho_tensor::{Result, Tensor};

use crate::{Cgan, CenterCnn, NetConfig, TrainConfig, TrainHistory, TrainPair};

/// The stages of one LithoGAN prediction (paper Figure 5).
#[derive(Debug, Clone)]
pub struct LithoGanPrediction {
    /// Raw generator output before the centre adjustment
    /// ("pre-adjustment"), `[S, S]` in `[0, 1]`.
    pub pre_adjustment: Tensor,
    /// Predicted pattern centre `(cy, cx)` in pixels.
    pub center_px: (f32, f32),
    /// Final re-centred output ("post-adjustment"), `[S, S]` in `[0, 1]`.
    pub adjusted: Tensor,
    /// Wall-clock time of the generator forward pass.
    pub generator_time: Duration,
    /// Wall-clock time of the centre-CNN forward pass.
    pub center_time: Duration,
    /// Wall-clock time of the re-centring shift.
    pub shift_time: Duration,
    /// Total wall-clock inference time (generator + CNN + shift).
    pub elapsed: Duration,
}

/// The complete LithoGAN model: a CGAN for the resist *shape* (trained on
/// re-centred golden patterns) and a CNN for the resist *centre*.
#[derive(Debug)]
pub struct LithoGan {
    /// The shape model.
    pub cgan: Cgan,
    /// The centre model.
    pub center: CenterCnn,
}

impl LithoGan {
    /// Builds a fresh model.
    pub fn new(net: &NetConfig, seed: u64) -> Self {
        LithoGan {
            cgan: Cgan::new(net, seed),
            center: CenterCnn::new(net, seed.wrapping_add(7)),
        }
    }

    /// Installs model-health instrumentation on both networks; records
    /// stream to the monitor's `health.jsonl`.
    pub fn attach_health(&mut self, monitor: &crate::HealthMonitor) {
        self.cgan.attach_health(monitor);
        self.center.attach_health(monitor);
    }

    /// Trains both networks on dataset samples. The CGAN trains on
    /// `golden_centered` targets; the CNN on `center_px` (this split is
    /// the framework's core idea). `on_epoch(epoch, &mut cgan)` fires
    /// after every CGAN epoch.
    ///
    /// # Errors
    ///
    /// Propagates training errors (e.g. an empty sample list).
    pub fn train<F>(
        &mut self,
        samples: &[&Sample],
        cfg: &TrainConfig,
        on_epoch: F,
    ) -> Result<TrainHistory>
    where
        F: FnMut(usize, &mut Cgan),
    {
        let pairs: Vec<TrainPair> = samples
            .iter()
            .map(|s| TrainPair::from_dataset(&s.mask, &s.golden_centered))
            .collect::<Result<Vec<_>>>()?;
        let history = self.cgan.train(&pairs, cfg, on_epoch)?;

        let center_samples: Vec<(Tensor, (f32, f32))> = samples
            .iter()
            .map(|s| (s.mask.clone(), s.center_px))
            .collect();
        // The CNN is orders of magnitude cheaper per epoch than the GAN
        // and regresses a subtle sub-pixel signal, so it gets a longer
        // schedule at a higher rate (the paper trains the two networks
        // independently and does not publish the CNN's schedule).
        let center_cfg = TrainConfig {
            epochs: (cfg.epochs * 3).clamp(30, 120),
            learning_rate: 1e-3,
            ..cfg.clone()
        };
        self.center.train(&center_samples, &center_cfg)?;
        Ok(history)
    }

    /// Predicts the resist pattern for a mask image `[3, S, S]` in
    /// `[0, 1]`, returning all intermediate stages.
    ///
    /// # Errors
    ///
    /// Returns tensor errors for wrong input shapes.
    pub fn predict_detailed(&mut self, mask: &Tensor) -> Result<LithoGanPrediction> {
        let outer = litho_telemetry::span("predict");
        let t0 = Instant::now();

        let span = litho_telemetry::span("generator");
        let pre_adjustment = self.cgan.predict(mask)?;
        let generator_time = t0.elapsed();
        drop(span);

        let t1 = Instant::now();
        let span = litho_telemetry::span("center");
        let center_px = self.center.predict(mask)?;
        let center_time = t1.elapsed();
        drop(span);

        let t2 = Instant::now();
        let span = litho_telemetry::span("shift");
        let adjusted = Sample::recenter_to(&pre_adjustment, center_px)?;
        let shift_time = t2.elapsed();
        drop(span);
        drop(outer);
        litho_telemetry::counter_add("predict.calls", 1);

        Ok(LithoGanPrediction {
            pre_adjustment,
            center_px,
            adjusted,
            generator_time,
            center_time,
            shift_time,
            elapsed: t0.elapsed(),
        })
    }

    /// Predicts the final (post-adjustment) resist pattern only.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LithoGan::predict_detailed`].
    pub fn predict(&mut self, mask: &Tensor) -> Result<Tensor> {
        Ok(self.predict_detailed(mask)?.adjusted)
    }

    /// Predicts resist patterns for a batch of masks by stacking them
    /// into one NCHW batch per network, so the compute kernels
    /// parallelise across samples on the worker pool. Each result is
    /// bit-identical to a per-mask [`LithoGan::predict`] call (see
    /// [`Cgan::predict_batch`]).
    ///
    /// # Errors
    ///
    /// Returns tensor errors for wrong or mismatched input shapes.
    pub fn predict_batch(&mut self, masks: &[&Tensor]) -> Result<Vec<Tensor>> {
        let span = litho_telemetry::span("predict_batch");
        let shapes = self.cgan.predict_batch(masks)?;
        let centers = self.center.predict_batch(masks)?;
        let adjusted = shapes
            .iter()
            .zip(&centers)
            .map(|(shape, &center)| Sample::recenter_to(shape, center))
            .collect::<Result<Vec<_>>>()?;
        drop(span);
        litho_telemetry::counter_add("predict.calls", masks.len() as u64);
        Ok(adjusted)
    }

    /// Saves the full model (generator, discriminator and centre CNN) to
    /// a single file, loadable with [`LithoGan::load_from_path`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn save_to_path<P: AsRef<std::path::Path>>(&mut self, path: P) -> Result<()> {
        use litho_nn::serialize::save_weights;
        let file = std::fs::File::create(path)
            .map_err(|e| litho_tensor::TensorError::io(format!("model i/o: {e}")))?;
        let mut w = std::io::BufWriter::new(file);
        use std::io::Write;
        w.write_all(b"LGM1")
            .map_err(|e| litho_tensor::TensorError::io(format!("model i/o: {e}")))?;
        save_weights(self.cgan.generator_mut(), &mut w)?;
        save_weights(self.cgan.discriminator_mut(), &mut w)?;
        save_weights(self.center.network_mut(), &mut w)?;
        Ok(())
    }

    /// Loads a model previously written by [`LithoGan::save_to_path`].
    /// The architecture config must match the one the model was saved
    /// with.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, bad magic, or an architecture
    /// mismatch.
    pub fn load_from_path<P: AsRef<std::path::Path>>(net: &NetConfig, path: P) -> Result<Self> {
        use litho_nn::serialize::load_weights;
        let file = std::fs::File::open(path)
            .map_err(|e| litho_tensor::TensorError::io(format!("model i/o: {e}")))?;
        let mut r = std::io::BufReader::new(file);
        use std::io::Read;
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)
            .map_err(|e| litho_tensor::TensorError::io(format!("model i/o: {e}")))?;
        if &magic != b"LGM1" {
            return Err(litho_tensor::TensorError::InvalidArgument(
                "not a LGM1 model file".into(),
            ));
        }
        let mut model = LithoGan::new(net, 0);
        load_weights(model.cgan.generator_mut(), &mut r)?;
        load_weights(model.cgan.discriminator_mut(), &mut r)?;
        load_weights(model.center.network_mut(), &mut r)?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_layout::{Clip, ClipFamily, Rect};

    /// Synthetic dataset samples: target blob at a known off-centre
    /// location; golden = blob at that location; centered = blob at the
    /// image centre.
    fn toy_samples(size: usize, n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let cy = 4 + (i * 3) % (size - 8);
                let cx = 4 + (i * 5) % (size - 8);
                let mut mask = Tensor::zeros(&[3, size, size]);
                let mut golden = Tensor::zeros(&[size, size]);
                let mut centered = Tensor::zeros(&[size, size]);
                let c = size / 2;
                for dy in -2i32..=2 {
                    for dx in -2i32..=2 {
                        let gy = (cy as i32 + dy).clamp(0, size as i32 - 1) as usize;
                        let gx = (cx as i32 + dx).clamp(0, size as i32 - 1) as usize;
                        mask.set(&[1, gy, gx], 1.0).unwrap();
                        golden.set(&[gy, gx], 1.0).unwrap();
                        let ky = (c as i32 + dy - 1).clamp(0, size as i32 - 1) as usize;
                        let kx = (c as i32 + dx - 1).clamp(0, size as i32 - 1) as usize;
                        centered.set(&[ky, kx], 1.0).unwrap();
                    }
                }
                Sample {
                    clip: Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0)),
                    mask,
                    golden,
                    golden_centered: centered,
                    center_px: (cy as f32, cx as f32),
                    family: ClipFamily::Isolated,
                }
            })
            .collect()
    }

    #[test]
    fn trains_and_produces_located_predictions() {
        let size = 16;
        let samples = toy_samples(size, 12);
        let refs: Vec<&Sample> = samples.iter().collect();
        let net = NetConfig::scaled(size);
        let cfg = TrainConfig {
            epochs: 8,
            learning_rate: 1e-3,
            seed: 2,
            ..TrainConfig::paper()
        };
        let mut model = LithoGan::new(&net, 3);
        let history = model.train(&refs, &cfg, |_, _| {}).unwrap();
        assert_eq!(history.g_loss.len(), 8);

        let p = model.predict_detailed(&samples[0].mask).unwrap();
        assert_eq!(p.pre_adjustment.dims(), &[size, size]);
        assert_eq!(p.adjusted.dims(), &[size, size]);
        assert!(p.elapsed.as_nanos() > 0);
        assert!(p.generator_time + p.center_time + p.shift_time <= p.elapsed);
        // The predicted centre should be inside the image.
        assert!(p.center_px.0 >= 0.0 && p.center_px.0 < size as f32);
        assert!(p.center_px.1 >= 0.0 && p.center_px.1 < size as f32);
    }

    #[test]
    fn model_file_round_trip() {
        let size = 16;
        let samples = toy_samples(size, 6);
        let refs: Vec<&Sample> = samples.iter().collect();
        let net = NetConfig::scaled(size);
        let mut model = LithoGan::new(&net, 9);
        model
            .train(&refs, &TrainConfig { epochs: 1, ..TrainConfig::paper() }, |_, _| {})
            .unwrap();

        let dir = std::env::temp_dir().join("lithogan_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.lgm");
        model.save_to_path(&path).unwrap();

        let mut loaded = LithoGan::load_from_path(&net, &path).unwrap();
        let expect = model.predict(&samples[0].mask).unwrap();
        assert_eq!(loaded.predict(&samples[0].mask).unwrap(), expect);

        // Wrong architecture is rejected.
        assert!(LithoGan::load_from_path(&NetConfig::scaled(32), &path).is_err());
        // Garbage file is rejected.
        std::fs::write(dir.join("junk.lgm"), b"junk").unwrap();
        assert!(LithoGan::load_from_path(&net, dir.join("junk.lgm")).is_err());
    }

    #[test]
    fn predict_batch_matches_single_predictions() {
        let size = 16;
        let samples = toy_samples(size, 5);
        let net = NetConfig::scaled(size);
        let mut model = LithoGan::new(&net, 4);
        // Untrained weights are fine: the claim is numerical, not semantic.
        let masks: Vec<&Tensor> = samples.iter().map(|s| &s.mask).collect();
        let batched = model.predict_batch(&masks).unwrap();
        assert_eq!(batched.len(), samples.len());
        for (i, s) in samples.iter().enumerate() {
            let single = model.predict(&s.mask).unwrap();
            // Eval-phase BatchNorm uses running stats and GEMM columns fold
            // independently, so batching must be bit-identical.
            assert_eq!(batched[i], single, "sample {i} diverged under batching");
        }
        assert!(model.predict_batch(&[]).unwrap().is_empty());
        // Mixed shapes in one batch are rejected.
        let odd = Tensor::zeros(&[3, size * 2, size * 2]);
        assert!(model.predict_batch(&[&samples[0].mask, &odd]).is_err());
    }

    #[test]
    fn training_is_deterministic_across_thread_counts() {
        let size = 16;
        let samples = toy_samples(size, 6);
        let refs: Vec<&Sample> = samples.iter().collect();
        let net = NetConfig::scaled(size);
        let cfg = TrainConfig {
            epochs: 2,
            seed: 11,
            ..TrainConfig::paper()
        };
        let mut curves = Vec::new();
        for threads in [1usize, 2] {
            litho_tensor::pool::configure_threads(threads);
            let mut model = LithoGan::new(&net, 7);
            let history = model.train(&refs, &cfg, |_, _| {}).unwrap();
            curves.push((history.g_loss.clone(), history.d_loss.clone()));
        }
        litho_tensor::pool::configure_threads(0);
        // The pool only moves disjoint work between threads, never the
        // accumulation order, so fixed-seed loss curves match exactly.
        assert_eq!(curves[0], curves[1], "loss curves diverged across thread counts");
    }

    #[test]
    fn predict_matches_detailed_adjusted() {
        let size = 16;
        let samples = toy_samples(size, 4);
        let net = NetConfig::scaled(size);
        let mut model = LithoGan::new(&net, 0);
        // Untrained is fine for this equivalence check.
        let a = model.predict(&samples[0].mask).unwrap();
        let b = model.predict_detailed(&samples[0].mask).unwrap().adjusted;
        assert_eq!(a, b);
    }
}
