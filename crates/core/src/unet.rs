//! U-Net generator variant (skip connections), for comparison against the
//! paper's plain encoder–decoder.
//!
//! pix2pix (the paper's reference \[16\]) defaults to a U-Net whose
//! decoder level `j` sees the concatenation of the previous decoder
//! output and the mirrored encoder activation. The LithoGAN paper chose a
//! plain encoder–decoder (Table 1 lists no skip paths) — plausibly
//! because the output resist window (128 nm) and the input mask window
//! (1 µm) are *not pixel-aligned*, which removes the identity-like
//! correspondence U-Nets exploit. This module provides the U-Net so that
//! claim is testable on our data.

use litho_tensor::rng::StdRng;
use litho_tensor::rng::SeedableRng;

use litho_nn::{
    BatchNorm2d, Conv2d, ConvTranspose2d, Dropout, Layer, LeakyRelu, Param, Phase, Relu,
    Sequential, Tanh,
};
use litho_tensor::{Result, Tensor, TensorError};

use crate::NetConfig;

/// An encoder–decoder generator with U-Net skip connections.
///
/// Implements [`Layer`], so it can be trained by the same loops as the
/// paper's generator (see [`crate::Cgan`]).
#[derive(Debug)]
pub struct UNetGenerator {
    encoder: Vec<Sequential>,
    decoder: Vec<Sequential>,
    /// Encoder activations cached by the training forward pass, indexed
    /// by encoder level.
    skips: Option<Vec<Tensor>>,
}

impl UNetGenerator {
    /// Builds a U-Net matching `net`'s depth and widths.
    pub fn new(net: &NetConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = net.encoder_levels();
        let ch = |i: usize| {
            (net.base_channels << i).min(net.base_channels * net.max_channel_multiplier)
        };

        let mut encoder = Vec::with_capacity(levels);
        for i in 0..levels {
            let in_ch = if i == 0 { net.in_channels } else { ch(i - 1) };
            let mut block = Sequential::new();
            block.push(Conv2d::new(in_ch, ch(i), 5, 2, 2, &mut rng));
            if i > 0 {
                block.push(BatchNorm2d::new(ch(i)));
            }
            block.push(LeakyRelu::new(net.leaky_slope));
            encoder.push(block);
        }

        let mut decoder = Vec::with_capacity(levels);
        for j in 0..levels {
            // Input: previous decoder output concatenated with the skip
            // from encoder level (levels-2-j); the bottleneck level (j=0)
            // has no skip partner.
            let base_in = ch(levels - 1 - j);
            let in_ch = if j == 0 { base_in } else { base_in * 2 };
            let last = j == levels - 1;
            let out_ch = if last { net.out_channels } else { ch(levels - 2 - j) };
            let mut block = Sequential::new();
            block.push(ConvTranspose2d::new(in_ch, out_ch, 5, 2, 2, 1, &mut rng));
            if !last {
                block.push(BatchNorm2d::new(out_ch));
                block.push(Relu::new());
                if j < 2 {
                    block.push(Dropout::new(net.dropout_p, seed.wrapping_add(j as u64 + 1)));
                }
            } else {
                block.push(Tanh::new());
            }
            decoder.push(block);
        }

        UNetGenerator {
            encoder,
            decoder,
            skips: None,
        }
    }

    /// Network depth (encoder levels).
    pub fn levels(&self) -> usize {
        self.encoder.len()
    }
}

impl Layer for UNetGenerator {
    fn forward(&mut self, input: &Tensor, phase: Phase) -> Result<Tensor> {
        let levels = self.encoder.len();
        let mut skips = Vec::with_capacity(levels);
        let mut x = input.clone();
        for block in &mut self.encoder {
            x = block.forward(&x, phase)?;
            skips.push(x.clone());
        }
        // Decoder: level j consumes skips[levels-1-j] implicitly via x
        // (j=0, the bottleneck) and concatenates skips[levels-2-j] into
        // the next level's input.
        for (j, block) in self.decoder.iter_mut().enumerate() {
            let inp = if j == 0 {
                x.clone()
            } else {
                Tensor::concat_channels(&[&x, &skips[levels - 1 - j]])?
            };
            x = block.forward(&inp, phase)?;
        }
        if phase == Phase::Train {
            self.skips = Some(skips);
        } else {
            self.skips = None;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let skips = self.skips.take().ok_or_else(|| {
            TensorError::InvalidArgument("UNetGenerator::backward before train forward".into())
        })?;
        let levels = self.encoder.len();
        // Gradients flowing into each skip (accumulated from the decoder
        // concat paths), indexed by encoder level.
        let mut skip_grads: Vec<Option<Tensor>> = vec![None; levels];

        let mut g = grad_output.clone();
        for j in (0..levels).rev() {
            g = self.decoder[j].backward(&g)?;
            if j > 0 {
                // Split the concat gradient back into (previous decoder
                // path, skip path).
                let skip_idx = levels - 1 - j;
                let skip_c = skips[skip_idx].dims()[1];
                let total_c = g.dims()[1];
                let parts = g.split_channels(&[total_c - skip_c, skip_c])?;
                g = parts[0].clone();
                skip_grads[skip_idx] = Some(match skip_grads[skip_idx].take() {
                    None => parts[1].clone(),
                    Some(acc) => acc.add(&parts[1])?,
                });
            }
        }
        // `g` is now the gradient at the bottleneck (encoder level L-1
        // output); walk the encoder backward, merging skip gradients.
        for i in (0..levels).rev() {
            if let Some(sg) = skip_grads[i].take() {
                g.add_assign(&sg)?;
            }
            g = self.encoder[i].backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for block in self.encoder.iter_mut().chain(self.decoder.iter_mut()) {
            block.visit_params(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        for block in self.encoder.iter_mut().chain(self.decoder.iter_mut()) {
            block.visit_buffers(f);
        }
    }

    fn name(&self) -> String {
        format!("UNetGenerator[{} levels]", self.encoder.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_nn::{mse_loss, Adam, Optimizer};

    #[test]
    fn forward_shape_matches_plain_generator() {
        let net = NetConfig::scaled(32);
        let mut unet = UNetGenerator::new(&net, 0);
        assert_eq!(unet.levels(), 5);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        let y = unet.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 1, 32, 32]);
        assert!(y.max() <= 1.0 && y.min() >= -1.0);
    }

    #[test]
    fn backward_requires_train_forward() {
        let net = NetConfig::scaled(16);
        let mut unet = UNetGenerator::new(&net, 0);
        let x = Tensor::zeros(&[1, 3, 16, 16]);
        unet.forward(&x, Phase::Eval).unwrap();
        assert!(unet.backward(&Tensor::zeros(&[1, 1, 16, 16])).is_err());
    }

    #[test]
    fn backward_produces_input_shaped_gradient() {
        let net = NetConfig::scaled(16);
        let mut unet = UNetGenerator::new(&net, 1);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = unet.forward(&x, Phase::Train).unwrap();
        let dx = unet.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn unet_learns_an_identity_like_mapping_quickly() {
        // Skip connections make copy tasks near-trivial: regressing the
        // green channel should converge fast.
        let net = NetConfig::scaled(16);
        let mut unet = UNetGenerator::new(&net, 2);
        let mut opt = Adam::new(2e-3, 0.5, 0.999);
        let mut x = Tensor::zeros(&[2, 3, 16, 16]);
        for p in 5..11 {
            x.set(&[0, 1, p, p], 1.0).unwrap();
            x.set(&[1, 1, p, 15 - p], 1.0).unwrap();
        }
        let target = {
            let parts = x.split_channels(&[1, 1, 1]).unwrap();
            parts[1].map(|v| v * 2.0 - 1.0)
        };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            unet.zero_grad();
            let y = unet.forward(&x, Phase::Train).unwrap();
            let loss = mse_loss(&y, &target).unwrap();
            unet.backward(&loss.grad).unwrap();
            opt.step(&mut unet);
            if first.is_none() {
                first = Some(loss.loss);
            }
            last = loss.loss;
        }
        assert!(
            last < first.unwrap() * 0.5,
            "unet did not learn: {first:?} -> {last}"
        );
    }

    #[test]
    fn directional_gradient_check_small_unet() {
        // Per-coordinate finite differences are unreliable through stacks
        // of train-mode batch norms (perturbing one weight shifts batch
        // statistics at every level — even a plain `Sequential` of
        // individually grad-checked layers fails a per-coordinate check
        // at this depth). A *directional* derivative over all parameters
        // jointly averages that curvature noise out and still exercises
        // the skip-gradient plumbing end to end.
        use litho_tensor::rng::Rng;
        let net = NetConfig {
            image_size: 8,
            base_channels: 4,
            dropout_p: 0.0, // dropout breaks finite differencing
            ..NetConfig::scaled(8)
        };
        let mut unet = UNetGenerator::new(&net, 3);
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        let x = Tensor::from_vec(
            (0..2 * 3 * 8 * 8).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[2, 3, 8, 8],
        )
        .unwrap();
        let y0 = unet.forward(&x, Phase::Train).unwrap();
        let r = Tensor::from_vec(
            (0..y0.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            y0.dims(),
        )
        .unwrap();

        unet.zero_grad();
        unet.backward(&r).unwrap();

        // Random parameter direction v; analytic derivative = <grad, v>.
        let mut direction: Vec<Vec<f32>> = Vec::new();
        let mut analytic = 0.0f64;
        unet.visit_params(&mut |p| {
            let v: Vec<f32> = (0..p.value.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            analytic += p
                .grad
                .as_slice()
                .iter()
                .zip(&v)
                .map(|(&g, &vi)| (g * vi) as f64)
                .sum::<f64>();
            direction.push(v);
        });

        let objective = |unet: &mut UNetGenerator| -> f64 {
            let y = unet.forward(&x, Phase::Train).unwrap();
            y.as_slice()
                .iter()
                .zip(r.as_slice())
                .map(|(&a, &b)| (a * b) as f64)
                .sum()
        };
        let eps = 1e-4f32;
        let shift = |unet: &mut UNetGenerator, sign: f32, direction: &[Vec<f32>]| {
            let mut i = 0;
            unet.visit_params(&mut |p| {
                for (w, &v) in p.value.as_mut_slice().iter_mut().zip(&direction[i]) {
                    *w += sign * eps * v;
                }
                i += 1;
            });
        };
        shift(&mut unet, 1.0, &direction);
        let plus = objective(&mut unet);
        shift(&mut unet, -2.0, &direction);
        let minus = objective(&mut unet);
        let numeric = (plus - minus) / (2.0 * eps as f64);
        let rel = (numeric - analytic).abs() / analytic.abs().max(1.0);
        // The composite function is extremely curved (deep train-mode BN
        // stacks): even the provably-correct plain Sequential generator
        // shows O(1) relative error at eps 2e-3, converging only as
        // eps -> 1e-4. 0.15 leaves margin over the ~0.02 observed here.
        assert!(
            rel < 0.15,
            "directional derivative mismatch: numeric {numeric}, analytic {analytic} (rel {rel})"
        );
    }

    #[test]
    fn params_and_buffers_are_visited() {
        let net = NetConfig::scaled(16);
        let mut unet = UNetGenerator::new(&net, 0);
        assert!(unet.param_count() > 1000);
        let mut buffers = 0;
        unet.visit_buffers(&mut |_| buffers += 1);
        // Two running-stat vectors per BatchNorm: 4 levels -> 3 encoder
        // BNs (none on the first conv) + 3 decoder BNs (none on the last).
        assert_eq!(buffers, 12);
    }
}
