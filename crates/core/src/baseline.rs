//! The Ref. \[12\] comparison flow: optical simulation + machine-learning
//! threshold prediction + contour processing.
//!
//! Lin et al. (TCAD'18) — the paper's accuracy and runtime baseline —
//! keep the optical model, replace the resist model by a CNN that
//! predicts *four slicing thresholds* per clip, and finish with contour
//! processing. This module rebuilds that flow on our substrates so that
//! Table 3's "Ref \[12\]" rows and Table 4's stage timings can be measured:
//!
//! 1. **Optical sim** — compact SOCS imaging of the post-OPC clip.
//! 2. **ML** — a Table-2-style CNN maps the aerial window to the four
//!    thresholds (top/bottom/left/right).
//! 3. **Contour** — the aerial window is sliced at the bilinearly
//!    extrapolated threshold field and the centre component kept.

use std::time::{Duration, Instant};

use litho_tensor::rng::StdRng;
use litho_tensor::rng::SliceRandom;
use litho_tensor::rng::SeedableRng;

use litho_dataset::{field_window, keep_central_component, Sample};
use litho_metrics::BoundingBox;
use litho_nn::{mse_loss, Adam, Layer, Optimizer, Phase, Sequential};
use litho_sim::{OpticalModel, ProcessConfig};
use litho_tensor::{Result, Tensor, TensorError};

use crate::{NetConfig, TrainConfig};

/// One baseline prediction with per-stage timing (Table 4 columns).
#[derive(Debug, Clone)]
pub struct BaselinePrediction {
    /// The predicted resist window `[S, S]` in `{0, 1}`.
    pub image: Tensor,
    /// Predicted thresholds `[top, bottom, left, right]`.
    pub thresholds: [f32; 4],
    /// Optical-simulation stage time.
    pub optical_time: Duration,
    /// CNN threshold-prediction stage time.
    pub ml_time: Duration,
    /// Contour-processing stage time.
    pub contour_time: Duration,
}

impl BaselinePrediction {
    /// Total flow time.
    pub fn total_time(&self) -> Duration {
        self.optical_time + self.ml_time + self.contour_time
    }
}

/// The threshold-prediction baseline model.
#[derive(Debug)]
pub struct ThresholdBaseline {
    optical: OpticalModel,
    cnn: Sequential,
    opt: Adam,
    image_size: usize,
    sim_grid: usize,
    window_nm: f64,
    clip_extent_nm: f64,
    /// Mean/std of the training thresholds: the CNN regresses
    /// standardised residuals, so an untrained head already slices at the
    /// train-set mean threshold instead of at zero.
    target_mean: f32,
    target_std: f32,
}

impl ThresholdBaseline {
    /// Builds the baseline for a process: compact optics on a
    /// `sim_grid × sim_grid` grid over 2 µm clips, CNN at `net.image_size`.
    ///
    /// # Errors
    ///
    /// Propagates optical-model construction errors.
    pub fn new(
        process: &ProcessConfig,
        net: &NetConfig,
        sim_grid: usize,
        window_nm: f64,
        seed: u64,
    ) -> Result<Self> {
        let clip_extent_nm = 2048.0;
        let cfg = TrainConfig::paper();
        // The baseline's optical stage runs at *production* accuracy
        // (the rigorous SOCS rank, best focus): Ref. [12] feeds its
        // threshold CNN from full-accuracy aerial images — using the
        // low-rank compact model that OPC iterations use would understate
        // the flow's cost (Table 4) and its accuracy (Table 3).
        let optical = OpticalModel::with_settings(
            process,
            sim_grid,
            clip_extent_nm / sim_grid as f64,
            0.0,
            process.rigorous_kernel_count,
        )?;
        Ok(ThresholdBaseline {
            optical,
            cnn: net.build_regression_cnn(seed, 1, 4),
            opt: Adam::new(cfg.learning_rate, cfg.beta1, cfg.beta2),
            image_size: net.image_size,
            sim_grid,
            window_nm,
            clip_extent_nm,
            target_mean: 0.0,
            target_std: 1.0,
        })
    }

    /// Mutable access to the threshold CNN (weight (de)serialization).
    pub fn network_mut(&mut self) -> &mut Sequential {
        &mut self.cnn
    }

    /// The target standardisation statistics `(mean, std)` fitted by
    /// [`ThresholdBaseline::train`].
    pub fn target_stats(&self) -> (f32, f32) {
        (self.target_mean, self.target_std)
    }

    /// Restores target statistics saved from a previous training run.
    pub fn set_target_stats(&mut self, mean: f32, std: f32) {
        self.target_mean = mean;
        self.target_std = std.max(1e-4);
    }

    /// Stage 1: optical simulation of a sample's clip, returning the
    /// aerial-intensity window `[S, S]` and the stage time.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn aerial_window(&self, sample: &Sample) -> Result<(Tensor, Duration)> {
        let span = litho_telemetry::span("baseline/optical");
        let t0 = Instant::now();
        let mask = sample.clip.to_mask_grid(self.sim_grid);
        let aerial = self.optical.aerial_image(&mask)?;
        let window = field_window(
            aerial.as_slice(),
            self.sim_grid,
            self.clip_extent_nm,
            self.window_nm,
            self.image_size,
        )?;
        span.finish();
        Ok((window, t0.elapsed()))
    }

    /// Golden thresholds for one sample: the aerial intensity at the four
    /// bounding-box edge midpoints of the golden pattern — the slicing
    /// levels that reproduce the golden contour.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when the golden image is
    /// empty.
    pub fn golden_thresholds(aerial_window: &Tensor, golden: &Tensor) -> Result<[f32; 4]> {
        let bb = BoundingBox::of(golden).ok_or_else(|| {
            TensorError::InvalidArgument("golden image has no foreground".into())
        })?;
        let (cy, cx) = bb.center();
        let at = |y: f64, x: f64| -> Result<f32> {
            aerial_window.at(&[y.round() as usize, x.round() as usize])
        };
        Ok([
            at(bb.y0 as f64, cx)?,
            at(bb.y1 as f64, cx)?,
            at(cy, bb.x0 as f64)?,
            at(cy, bb.x1 as f64)?,
        ])
    }

    /// Trains the threshold CNN on `(aerial_window, thresholds)` pairs
    /// prepared by the caller, returning per-epoch MSE losses.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors; `samples` must be non-empty.
    pub fn train(
        &mut self,
        samples: &[(Tensor, [f32; 4])],
        cfg: &TrainConfig,
    ) -> Result<Vec<f32>> {
        if samples.is_empty() {
            return Err(TensorError::InvalidArgument(
                "cannot train on an empty sample set".into(),
            ));
        }
        // Standardise the regression targets.
        let all: Vec<f32> = samples.iter().flat_map(|(_, t)| t.iter().copied()).collect();
        let mean = all.iter().sum::<f32>() / all.len() as f32;
        let var = all.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / all.len() as f32;
        self.target_mean = mean;
        self.target_std = var.sqrt().max(1e-4);

        let mut losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let mut order: Vec<usize> = (0..samples.len()).collect();
            let mut rng =
                StdRng::seed_from_u64(cfg.seed.wrapping_add(0xBA5E).wrapping_add(epoch as u64));
            order.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let xs: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| {
                        let s = self.image_size;
                        samples[i].0.reshape(&[1, s, s])
                    })
                    .collect::<Result<Vec<_>>>()?;
                let x = Tensor::stack(&xs)?;
                let mut target = Tensor::zeros(&[chunk.len(), 4]);
                for (row, &i) in chunk.iter().enumerate() {
                    for (col, &t) in samples[i].1.iter().enumerate() {
                        target.set(&[row, col], (t - self.target_mean) / self.target_std)?;
                    }
                }
                self.cnn.zero_grad();
                let pred = self.cnn.forward(&x, Phase::Train)?;
                let loss = mse_loss(&pred, &target)?;
                self.cnn.backward(&loss.grad)?;
                self.opt.step(&mut self.cnn);
                total += loss.loss as f64;
                batches += 1;
            }
            losses.push((total / batches as f64) as f32);
        }
        Ok(losses)
    }

    /// Runs the full three-stage flow on one sample.
    ///
    /// # Errors
    ///
    /// Propagates simulation/tensor errors.
    pub fn predict(&mut self, sample: &Sample) -> Result<BaselinePrediction> {
        let (window, optical_time) = self.aerial_window(sample)?;
        let thresholds = {
            let span = litho_telemetry::span("baseline/ml");
            let t0 = Instant::now();
            let s = self.image_size;
            let x = window.reshape(&[1, 1, s, s])?;
            let out = self.cnn.forward(&x, Phase::Eval)?;
            let denorm = |v: f32| self.target_mean + v * self.target_std;
            let t = [
                denorm(out.at(&[0, 0])?),
                denorm(out.at(&[0, 1])?),
                denorm(out.at(&[0, 2])?),
                denorm(out.at(&[0, 3])?),
            ];
            span.finish();
            (t, t0.elapsed())
        };
        let (t, ml_time) = thresholds;

        let span = litho_telemetry::span("baseline/contour");
        let t0 = Instant::now();
        let image = self.contour_process(&window, &t)?;
        let contour_time = t0.elapsed();
        span.finish();
        litho_telemetry::counter_add("baseline.predictions", 1);

        Ok(BaselinePrediction {
            image,
            thresholds: t,
            optical_time,
            ml_time,
            contour_time,
        })
    }

    /// Stage 3: slices the aerial window at the bilinearly extrapolated
    /// threshold field and keeps the centre component.
    fn contour_process(&self, window: &Tensor, t: &[f32; 4]) -> Result<Tensor> {
        let s = self.image_size;
        let data = window.as_slice();
        let mut out = vec![0.0f32; s * s];
        let denom = (s - 1).max(1) as f32;
        for y in 0..s {
            let fy = y as f32 / denom;
            let t_vert = (1.0 - fy) * t[0] + fy * t[1];
            for x in 0..s {
                let fx = x as f32 / denom;
                let t_horiz = (1.0 - fx) * t[2] + fx * t[3];
                let threshold = 0.5 * (t_vert + t_horiz);
                if data[y * s + x] >= threshold {
                    out[y * s + x] = 1.0;
                }
            }
        }
        keep_central_component(&Tensor::from_vec(out, &[s, s])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_window(size: usize, peak: f32, sigma: f32) -> Tensor {
        let c = (size - 1) as f32 / 2.0;
        let data = (0..size * size)
            .map(|i| {
                let y = (i / size) as f32 - c;
                let x = (i % size) as f32 - c;
                peak * (-(x * x + y * y) / (2.0 * sigma * sigma)).exp()
            })
            .collect();
        Tensor::from_vec(data, &[size, size]).unwrap()
    }

    #[test]
    fn golden_thresholds_match_slicing_level() {
        let size = 32;
        let window = gaussian_window(size, 0.4, 6.0);
        // Golden = the window sliced at 0.2.
        let golden = window.map(|v| if v >= 0.2 { 1.0 } else { 0.0 });
        let t = ThresholdBaseline::golden_thresholds(&window, &golden).unwrap();
        for edge in t {
            assert!((edge - 0.2).abs() < 0.05, "edge threshold {edge}");
        }
    }

    #[test]
    fn golden_thresholds_need_foreground() {
        let window = gaussian_window(16, 0.4, 4.0);
        let empty = Tensor::zeros(&[16, 16]);
        assert!(ThresholdBaseline::golden_thresholds(&window, &empty).is_err());
    }

    #[test]
    fn contour_process_recovers_sliced_disk() {
        let process = ProcessConfig::n10();
        let net = NetConfig::scaled(32);
        let baseline = ThresholdBaseline::new(&process, &net, 128, 128.0, 0).unwrap();
        let window = gaussian_window(32, 0.4, 6.0);
        let out = baseline.contour_process(&window, &[0.2; 4]).unwrap();
        let golden = window.map(|v| if v >= 0.2 { 1.0 } else { 0.0 });
        assert_eq!(out, golden);
    }

    #[test]
    fn threshold_cnn_learns_constant_mapping() {
        let process = ProcessConfig::n10();
        let net = NetConfig::scaled(16);
        let mut baseline = ThresholdBaseline::new(&process, &net, 128, 128.0, 1).unwrap();
        // Windows with varying peaks; thresholds at 55% of peak.
        let samples: Vec<(Tensor, [f32; 4])> = (0..12)
            .map(|i| {
                let peak = 0.2 + 0.02 * i as f32;
                (gaussian_window(16, peak, 4.0), [peak * 0.55; 4])
            })
            .collect();
        let cfg = TrainConfig {
            epochs: 40,
            learning_rate: 1e-3,
            seed: 5,
            ..TrainConfig::paper()
        };
        let losses = baseline.train(&samples, &cfg).unwrap();
        // SGD on a 12-sample set oscillates near convergence, so judge the
        // best of the final stretch rather than the very last epoch.
        let tail_best = losses[losses.len() - 10..]
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        assert!(
            tail_best < losses[0] * 0.5 && losses.last().unwrap() < &losses[0],
            "losses {:?} .. {:?}",
            &losses[..2],
            &losses[losses.len() - 2..]
        );
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let process = ProcessConfig::n10();
        let net = NetConfig::scaled(16);
        let mut baseline = ThresholdBaseline::new(&process, &net, 128, 128.0, 0).unwrap();
        assert!(baseline.train(&[], &TrainConfig::paper()).is_err());
    }
}
