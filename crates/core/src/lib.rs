//! LithoGAN: end-to-end lithography modeling with conditional GANs.
//!
//! A from-scratch Rust reproduction of *LithoGAN: End-to-End Lithography
//! Modeling with Generative Adversarial Networks* (Ye, Alawieh, Lin, Pan —
//! DAC 2019). The crate assembles the paper's three networks on the
//! [`litho-nn`] training stack and ties them to the data pipeline of
//! [`litho-dataset`]:
//!
//! * [`Cgan`] — the pix2pix-style conditional GAN of Table 1 (encoder–
//!   decoder generator + convolutional discriminator) trained with the
//!   minimax objective of Eq. 1–3 (ℓ1 weight λ = 100, Adam lr 2e-4,
//!   β = (0.5, 0.999), batch 4).
//! * [`CenterCnn`] — the centre-regression CNN of Table 2.
//! * [`LithoGan`] — the dual-learning framework of Figure 5: the CGAN
//!   predicts the re-centred resist *shape*; the CNN predicts the resist
//!   *centre*; inference shifts the generated shape to the predicted
//!   centre ("post-adjustment").
//! * [`ThresholdBaseline`] — the comparison flow of Ref. \[12\] (Lin et
//!   al., TCAD'18): compact optical simulation + a CNN that predicts four
//!   slicing thresholds + contour processing.
//!
//! # Example
//!
//! ```no_run
//! use litho_dataset::{generate, DatasetConfig};
//! use litho_sim::ProcessConfig;
//! use lithogan::{LithoGan, NetConfig, TrainConfig};
//!
//! let config = DatasetConfig::scaled(ProcessConfig::n10(), 24, 32);
//! let (dataset, _) = generate(&config)?;
//! let (train, test) = dataset.split();
//!
//! let mut model = LithoGan::new(&NetConfig::scaled(32), 0);
//! model.train(&train, &TrainConfig { epochs: 4, ..TrainConfig::paper() }, |_, _| {})?;
//! let prediction = model.predict(&test[0].mask)?;
//! # Ok::<(), litho_tensor::TensorError>(())
//! ```
//!
//! [`litho-nn`]: https://docs.rs/litho-nn
//! [`litho-dataset`]: https://docs.rs/litho-dataset

mod baseline;
mod cgan;
mod center;
pub mod dash;
mod health;
pub mod incident;
mod lithogan;
mod netconfig;
mod unet;

pub use baseline::{BaselinePrediction, ThresholdBaseline};
pub use cgan::{Cgan, ReconLoss, TrainConfig, TrainHistory, TrainPair};
pub use center::CenterCnn;
pub use dash::{run_dash, DashConfig};
pub use health::{HealthConfig, HealthMonitor};
pub use lithogan::{LithoGan, LithoGanPrediction};
pub use netconfig::NetConfig;
pub use unet::UNetGenerator;

pub use litho_health::AbortCondition;
pub use litho_tensor::{Result, Tensor, TensorError};
