//! The `lithogan-cli dash` observability daemon.
//!
//! Serves the runs fleet over HTTP (see DESIGN §4f for the endpoint and
//! exposition schema):
//!
//! * `GET /` — minimal HTML fleet page;
//! * `GET /metrics` — Prometheus text exposition: index-level gauges,
//!   drift-detector state, live gauges for in-flight runs, and the
//!   dash's own request accounting;
//! * `GET /api/runs`, `GET /api/runs/<id>` — JSON over the same
//!   [`litho_ledger::IndexRecord`] serializer as `runs ls --json`;
//! * `GET /api/eval/<id>` — eval forensics for one run: the aggregate
//!   metric summary, per-clip-family slices and the worst-clip ranking,
//!   rebuilt from `samples.jsonl` on demand. Absent values are absent
//!   fields, never `NaN`;
//! * `GET /api/alerts` — evaluates the fleet's alert rules on demand
//!   (same engine as `lithogan_cli alerts`), persists any state
//!   transitions to `runs/alerts.jsonl`, and returns the active alerts
//!   as JSON; the fleet page shows firing alerts as a banner and
//!   `/metrics` exposes them as `lithogan_alerts_*` families;
//! * `GET /runs/<id>/{dashboard,triage,health,trend,flamegraph}.svg` —
//!   the ledger renderers, invoked on demand;
//! * `POST /shutdown` — clean stop (what tests and the CI smoke use).
//!
//! The daemon itself is a ledger run: request counts and latency go
//! through litho-telemetry into its `trace.jsonl` (quantile summaries
//! land at shutdown via [`litho_telemetry::emit_histogram_summaries`]),
//! and `main` finalizes its manifest when [`run_dash`] returns — so
//! `runs trend` can watch the watcher. Ctrl-C / SIGTERM funnel into the
//! same atomic-flag + connect-to-self shutdown the `/shutdown` route
//! uses: the signal handler only stores a flag (async-signal-safe), a
//! watchdog thread performs the actual wakeup.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use litho_alert::{AlertRecord, AlertRule, EngineContext, EvalOutcome};
use litho_http::{Request, Response, Server, ShutdownHandle};
use litho_ledger::json::Json;
use litho_ledger::{
    dashboard_svg, flamegraph_svg, fleet_html, health_svg, load_index, load_run,
    prometheus_exposition, rank_worst, trend, trend_svg, triage_svg, validate_run_id,
    DashSelfMetrics, IndexRecord, LatencySummary, LiveTails, TrendConfig, DASH_TREND_METRICS,
};
use litho_metrics::MetricSummary;

/// `Content-Type` of the Prometheus text exposition format.
const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Configuration for one dash daemon.
#[derive(Debug, Clone)]
pub struct DashConfig {
    /// `HOST:PORT` to bind; port 0 picks an ephemeral port (announced on
    /// stdout as `dash listening on http://…`).
    pub addr: String,
    /// The fleet to serve.
    pub runs_root: PathBuf,
    /// The dash's own run-ledger id, excluded from live-run tailing so
    /// the daemon does not watch itself.
    pub run_id: Option<String>,
}

/// Shared request-handler state.
struct DashState {
    runs_root: PathBuf,
    tails: Mutex<LiveTails>,
    started: Instant,
    requests: AtomicU64,
    responses_by_code: Mutex<BTreeMap<u16, u64>>,
    shutdown: ShutdownHandle,
}

/// Set by the SIGINT/SIGTERM handler; nothing else happens in signal
/// context.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // `signal` is in the C library std already links; declaring it here
    // keeps the workspace std-only. The handler must be async-signal-safe,
    // hence the bare atomic store.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Runs the daemon until `/shutdown` or a termination signal. Blocking;
/// returns once the accept loop has drained and the workers joined.
///
/// # Errors
///
/// Bind/accept errors.
pub fn run_dash(cfg: &DashConfig) -> io::Result<()> {
    let server = Server::bind(cfg.addr.as_str())?;
    let addr = server.local_addr();
    let state = Arc::new(DashState {
        runs_root: cfg.runs_root.clone(),
        tails: Mutex::new(LiveTails::new(&cfg.runs_root, cfg.run_id.clone())),
        started: Instant::now(),
        requests: AtomicU64::new(0),
        responses_by_code: Mutex::new(BTreeMap::new()),
        shutdown: server.shutdown_handle(),
    });
    install_signal_handlers();
    let watchdog = server.shutdown_handle();
    std::thread::Builder::new()
        .name("dash-watchdog".into())
        .spawn(move || loop {
            if SIGNALLED.load(Ordering::SeqCst) {
                watchdog.shutdown();
                return;
            }
            if watchdog.is_shutdown() {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        })?;
    // The announce line is the contract with scripts starting dash on an
    // ephemeral port: parse the URL off stdout.
    println!(
        "dash listening on http://{addr} (runs root {})",
        cfg.runs_root.display()
    );
    io::stdout().flush()?;
    let handler_state = Arc::clone(&state);
    server.serve(Arc::new(move |req: &Request| handle(&handler_state, req)))?;
    // Latency histograms never stream per-sample; persist the final
    // quantiles into the run's trace before main finalizes the manifest.
    litho_telemetry::emit_histogram_summaries();
    println!(
        "dash: shut down after {} request(s)",
        state.requests.load(Ordering::Relaxed)
    );
    Ok(())
}

/// Accounting wrapper around [`route`]: request counter, per-code
/// counters and a latency histogram, through both the local state (for
/// `/metrics` self-exposition) and litho-telemetry (for the dash run's
/// own trace). Every response carries `Cache-Control: no-store`: the
/// dash serves live fleet state, and a cached fleet page or metrics
/// scrape is worse than a slow one.
fn handle(state: &DashState, req: &Request) -> Response {
    let t0 = Instant::now();
    state.requests.fetch_add(1, Ordering::Relaxed);
    litho_telemetry::counter_add("http.requests", 1);
    let mut response = route(state, req);
    response
        .headers
        .push(("Cache-Control".to_string(), "no-store".to_string()));
    litho_telemetry::observe_duration("http.request_s", t0.elapsed());
    litho_telemetry::counter_add(&format!("http.responses.{}", response.status), 1);
    *state
        .responses_by_code
        .lock()
        .unwrap()
        .entry(response.status)
        .or_default() += 1;
    response
}

fn route(state: &DashState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/shutdown") => {
            state.shutdown.shutdown();
            Response::text(200, "shutting down\n")
        }
        ("GET", "/") => fleet_page(state),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/api/runs") => api_runs(state),
        ("GET", "/api/alerts") => api_alerts(state),
        ("GET", path) if path.starts_with("/api/runs/") => {
            api_run(state, &path["/api/runs/".len()..])
        }
        ("GET", path) if path.starts_with("/api/eval/") => {
            api_eval(state, &path["/api/eval/".len()..])
        }
        ("GET", path) if path.starts_with("/runs/") => artifact(state, &path["/runs/".len()..]),
        ("GET", path) => Response::not_found(path),
        _ => Response::method_not_allowed(),
    }
}

/// One alert-engine pass over the fleet: rules from
/// `<runs_root>/alerts.toml` (or the defaults), prior state replayed
/// from `runs/alerts.jsonl`, transitions appended back best-effort.
/// Shared by the fleet page, `/metrics` and `/api/alerts`, so every
/// surface shows the same evaluation the CLI would.
fn eval_alerts(state: &DashState, records: &[IndexRecord]) -> (Vec<AlertRule>, EvalOutcome) {
    let rules = litho_alert::load_rules(&state.runs_root, None)
        .unwrap_or_else(|_| litho_alert::default_rules());
    let prior = litho_alert::load_alerts(&state.runs_root)
        .map(|load| load.active())
        .unwrap_or_default();
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let outcome = litho_alert::evaluate(
        &rules,
        &EngineContext {
            records,
            runs_root: &state.runs_root,
            now_unix_s: now,
        },
        &prior,
    );
    let _ = litho_alert::append_alerts(&state.runs_root, &outcome.transitions);
    (rules, outcome)
}

fn fleet_page(state: &DashState) -> Response {
    let records = match load_index(&state.runs_root) {
        Ok(parse) => parse.records,
        Err(e) => return Response::text(500, format!("index: {e}\n")),
    };
    let live = state.tails.lock().unwrap().poll().unwrap_or_default();
    let (_, alerts) = eval_alerts(state, &records);
    let banner = litho_alert::alerts_html(&alerts.active);
    Response::ok(
        "text/html; charset=utf-8",
        fleet_html(&records, &live, &banner),
    )
}

fn metrics(state: &DashState) -> Response {
    let records = match load_index(&state.runs_root) {
        Ok(parse) => parse.records,
        Err(e) => return Response::text(500, format!("index: {e}\n")),
    };
    let live = match state.tails.lock().unwrap().poll() {
        Ok(live) => live,
        Err(e) => return Response::text(500, format!("live tails: {e}\n")),
    };
    let me = self_metrics(state);
    let mut text = prometheus_exposition(&records, &live, Some(&me), &TrendConfig::default());
    let (rules, alerts) = eval_alerts(state, &records);
    text.push_str(&litho_alert::alerts_exposition(&rules, &alerts.active));
    Response::ok(METRICS_CONTENT_TYPE, text)
}

fn api_alerts(state: &DashState) -> Response {
    let records = match load_index(&state.runs_root) {
        Ok(parse) => parse.records,
        Err(e) => return Response::text(500, format!("index: {e}\n")),
    };
    let (_, alerts) = eval_alerts(state, &records);
    let active: Vec<AlertRecord> = alerts.active;
    let firing = active
        .iter()
        .filter(|a| a.state == litho_alert::AlertState::Firing)
        .count();
    // AlertRecord serializes itself (it is the alerts.jsonl line format);
    // splice those objects into the envelope verbatim.
    let mut body = String::with_capacity(64 + active.len() * 256);
    body.push_str("{\"firing\":");
    let _ = write!(body, "{firing}");
    body.push_str(",\"active\":[");
    for (i, a) in active.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&a.to_json());
    }
    body.push_str("]}");
    Response::ok("application/json; charset=utf-8", body)
}

fn self_metrics(state: &DashState) -> DashSelfMetrics {
    // Latency quantiles come from the telemetry registry; with telemetry
    // off (--no-run --metrics-out unset) the histogram is simply absent.
    let latency = litho_telemetry::snapshot()
        .histograms
        .into_iter()
        .find(|(name, _)| name == "http.request_s")
        .map(|(_, h)| LatencySummary {
            count: h.count,
            sum_s: h.sum,
            p50_s: h.p50,
            p95_s: h.p95,
            p99_s: h.p99,
        });
    DashSelfMetrics {
        uptime_s: state.started.elapsed().as_secs_f64(),
        requests_total: state.requests.load(Ordering::Relaxed),
        responses_by_code: state
            .responses_by_code
            .lock()
            .unwrap()
            .iter()
            .map(|(code, count)| (*code, *count))
            .collect(),
        latency,
    }
}

fn api_runs(state: &DashState) -> Response {
    match load_index(&state.runs_root) {
        Ok(parse) => {
            let arr = Json::Arr(parse.records.iter().map(|r| r.to_json()).collect());
            Response::ok("application/json; charset=utf-8", arr.to_string_compact())
        }
        Err(e) => Response::text(500, format!("index: {e}\n")),
    }
}

fn api_run(state: &DashState, id: &str) -> Response {
    if let Err(e) = validate_run_id(id) {
        return Response::bad_request(&e.to_string());
    }
    let index = load_index(&state.runs_root)
        .ok()
        .and_then(|parse| parse.records.into_iter().find(|r| r.run_id == id))
        .map(|r| r.to_json());
    // A still-running run has no index line yet; the on-disk manifest is
    // the authority either way.
    let manifest = std::fs::read_to_string(state.runs_root.join(id).join("manifest.json"))
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    if index.is_none() && manifest.is_none() {
        return Response::not_found(&format!("run {id}"));
    }
    let artifacts = Json::Obj(
        ["dashboard", "triage", "health", "trend", "flamegraph"]
            .iter()
            .map(|kind| {
                (
                    format!("{kind}_svg"),
                    Json::Str(format!("/runs/{id}/{kind}.svg")),
                )
            })
            .collect(),
    );
    let body = Json::Obj(vec![
        ("run_id".to_string(), Json::Str(id.to_string())),
        ("index".to_string(), index.unwrap_or(Json::Null)),
        ("manifest".to_string(), manifest.unwrap_or(Json::Null)),
        ("artifacts".to_string(), artifacts),
    ]);
    Response::ok("application/json; charset=utf-8", body.to_string_compact())
}

/// Serializes a metric summary for `/api/eval/<id>`. Absent box metrics
/// (an all-skipped slice) become absent fields, never `NaN`.
fn summary_json(s: &MetricSummary) -> Json {
    let num = |v: f64| Json::Num(if v.is_finite() { v } else { 0.0 });
    let mut slices = Vec::with_capacity(s.slices.len());
    for slice in &s.slices {
        let mut obj = vec![
            ("family".to_string(), Json::Str(slice.family.clone())),
            ("samples".to_string(), num(slice.samples as f64)),
            ("skipped".to_string(), num(slice.skipped as f64)),
        ];
        if let Some(v) = slice.ede_mean_nm {
            obj.push(("ede_mean_nm".to_string(), num(v)));
        }
        if let Some(v) = slice.center_error_nm {
            obj.push(("center_error_nm".to_string(), num(v)));
        }
        obj.push(("pixel_accuracy".to_string(), num(slice.pixel_accuracy)));
        obj.push(("class_accuracy".to_string(), num(slice.class_accuracy)));
        obj.push(("mean_iou".to_string(), num(slice.mean_iou)));
        slices.push(Json::Obj(obj));
    }
    Json::Obj(vec![
        ("samples".to_string(), num(s.samples as f64)),
        ("skipped".to_string(), num(s.skipped as f64)),
        ("ede_mean_nm".to_string(), num(s.ede_mean_nm)),
        ("ede_std_nm".to_string(), num(s.ede_std_nm)),
        (
            "ede_edge_mean_nm".to_string(),
            Json::Arr(s.ede_edge_mean_nm.iter().map(|v| num(*v)).collect()),
        ),
        ("pixel_accuracy".to_string(), num(s.pixel_accuracy)),
        ("class_accuracy".to_string(), num(s.class_accuracy)),
        ("mean_iou".to_string(), num(s.mean_iou)),
        ("center_error_nm".to_string(), num(s.center_error_nm)),
        ("slices".to_string(), Json::Arr(slices)),
    ])
}

/// `GET /api/eval/<id>` — per-run eval forensics: aggregate summary,
/// per-family slices and the worst-clip ranking, from `samples.jsonl`.
fn api_eval(state: &DashState, id: &str) -> Response {
    if let Err(e) = validate_run_id(id) {
        return Response::bad_request(&e.to_string());
    }
    let data = match load_run(&state.runs_root.join(id)) {
        Ok(data) => data,
        Err(e) => return Response::not_found(&format!("run {id}: {e}")),
    };
    let num = |v: f64| Json::Num(v);
    let mut worst = Vec::new();
    for r in rank_worst(&data.records, 10) {
        let mut obj = vec![("sample".to_string(), num(r.sample as f64))];
        if let Some(fp) = &r.clip_fingerprint {
            obj.push(("clip_fingerprint".to_string(), Json::Str(fp.clone())));
        }
        if let Some(family) = &r.family {
            obj.push(("family".to_string(), Json::Str(family.clone())));
        }
        if let Some(v) = r.ede_mean_nm {
            obj.push(("ede_mean_nm".to_string(), num(v)));
        }
        worst.push(Json::Obj(obj));
    }
    let body = Json::Obj(vec![
        ("run_id".to_string(), Json::Str(id.to_string())),
        (
            "summary".to_string(),
            data.summary.as_ref().map_or(Json::Null, summary_json),
        ),
        ("worst".to_string(), Json::Arr(worst)),
        (
            "skipped_records".to_string(),
            num(data.skipped_records as f64),
        ),
        (
            "triage_svg".to_string(),
            Json::Str(format!("/runs/{id}/triage.svg")),
        ),
    ]);
    Response::ok("application/json; charset=utf-8", body.to_string_compact())
}

/// `GET /runs/<id>/<kind>.svg` — render one run view on demand.
fn artifact(state: &DashState, rest: &str) -> Response {
    let Some((id, file)) = rest.split_once('/') else {
        return Response::not_found(rest);
    };
    if let Err(e) = validate_run_id(id) {
        return Response::bad_request(&e.to_string());
    }
    let dir = state.runs_root.join(id);
    match file {
        "dashboard.svg" => match load_run(&dir) {
            Ok(data) => Response::ok("image/svg+xml", dashboard_svg(&data)),
            Err(e) => Response::not_found(&format!("run {id}: {e}")),
        },
        "triage.svg" => match load_run(&dir) {
            Ok(data) => {
                let nm_per_px = data
                    .manifest
                    .dataset
                    .as_ref()
                    .map_or(1.0, |d| d.nm_per_px);
                Response::ok(
                    "image/svg+xml",
                    triage_svg(id, &data.records, 10, nm_per_px),
                )
            }
            Err(e) => Response::not_found(&format!("run {id}: {e}")),
        },
        "health.svg" => match load_run(&dir) {
            Ok(data) => match &data.health {
                Some(h) => Response::ok("image/svg+xml", health_svg(id, h)),
                None => Response::not_found(&format!("run {id} has no health stream")),
            },
            Err(e) => Response::not_found(&format!("run {id}: {e}")),
        },
        "flamegraph.svg" => match load_run(&dir) {
            Ok(data) => match &data.trace {
                Some(t) => Response::ok("image/svg+xml", flamegraph_svg(t)),
                None => Response::not_found(&format!("run {id} has no telemetry trace")),
            },
            Err(e) => Response::not_found(&format!("run {id}: {e}")),
        },
        // Fleet-level trends, anchored on a run that must exist so the
        // route namespace stays consistent with the other views.
        "trend.svg" => {
            if !dir.join("manifest.json").is_file() {
                return Response::not_found(&format!("run {id}"));
            }
            match load_index(&state.runs_root) {
                Ok(parse) => {
                    let cfg = TrendConfig::default();
                    let trends: Vec<_> = DASH_TREND_METRICS
                        .iter()
                        .map(|m| trend(&parse.records, m, None, &cfg))
                        .collect();
                    Response::ok("image/svg+xml", trend_svg(&trends))
                }
                Err(e) => Response::text(500, format!("index: {e}\n")),
            }
        }
        other => Response::not_found(other),
    }
}
