//! Bridges the `litho-nn` [`StatsHook`] machinery to the `litho-health`
//! record stream.
//!
//! A [`HealthMonitor`] owns the `health.jsonl` writer for one training
//! run. [`crate::Cgan::attach_health`] / [`crate::CenterCnn::attach_health`]
//! install per-network layer hooks (`"G"`, `"D"`, `"C"`), enable
//! optimizer update tracking on sampled steps, and emit per-epoch GAN
//! balance / regression signals. With [`HealthConfig::abort_on`] set,
//! the training loops bail with [`TensorError::Aborted`] as soon as an
//! online-detectable failure mode (NaN poison, mode collapse) fires.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use litho_health::record::NetId;
use litho_health::{
    AbortCondition, CenterEpochRecord, GanEpochRecord, HealthRecord, HealthWriter, LayerRecord,
    Pass, Thresholds, UpdateRecord,
};
use litho_nn::{Optimizer, Sequential, StatsHook, TensorStats};
use litho_tensor::{Result, Tensor, TensorError};

/// Model-health sampling configuration for one training run.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Sample every Nth training step (per network). Stride 1 samples
    /// everything; the default keeps overhead under 5% of step time.
    pub stride: u64,
    /// Failure modes that abort training when detected online.
    pub abort_on: Vec<AbortCondition>,
    /// Fault injection: poison one generator weight with NaN at the
    /// start of this epoch (testing the NaN pipeline end to end).
    pub poison_nan_at_epoch: Option<usize>,
    /// Detection thresholds for online abort checks.
    pub thresholds: Thresholds,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            stride: 8,
            abort_on: Vec::new(),
            poison_nan_at_epoch: None,
            thresholds: Thresholds::default(),
        }
    }
}

/// Shared by the monitor, every layer hook, and every training loop.
#[derive(Debug)]
struct MonitorState {
    writer: HealthWriter,
    /// Current 0-based epoch, stamped into every record.
    epoch: u64,
    /// Set as soon as any sampled tensor carries NaN/Inf.
    poisoned: bool,
}

/// Owner of one run's `health.jsonl` stream.
#[derive(Debug)]
pub struct HealthMonitor {
    shared: Arc<Mutex<MonitorState>>,
    config: HealthConfig,
}

impl HealthMonitor {
    /// Creates (truncates) `path` and the monitor writing to it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path, config: HealthConfig) -> io::Result<HealthMonitor> {
        Ok(HealthMonitor {
            shared: Arc::new(Mutex::new(MonitorState {
                writer: HealthWriter::create(path)?,
                epoch: 0,
                poisoned: false,
            })),
            config,
        })
    }

    /// Flushes buffered records to disk (also called on drop of the
    /// underlying writer).
    pub fn flush(&self) {
        if let Ok(mut st) = self.shared.lock() {
            st.writer.flush();
        }
    }

    /// Whether any sampled tensor so far carried NaN/Inf.
    pub fn poisoned(&self) -> bool {
        self.shared.lock().map(|st| st.poisoned).unwrap_or(false)
    }

    /// A boxed per-layer hook for one network, ready for
    /// [`Sequential::set_stats_hook`].
    pub(crate) fn layer_hook(&self, net: &'static str) -> Box<dyn StatsHook> {
        Box::new(NetHook {
            net,
            stride: self.config.stride.max(1),
            step: 0,
            sampled: false,
            shared: Arc::clone(&self.shared),
        })
    }

    pub(crate) fn loop_state(&self, net: &'static str) -> LoopHealth {
        LoopHealth {
            net,
            shared: Arc::clone(&self.shared),
            stride: self.config.stride.max(1),
            abort_on: self.config.abort_on.clone(),
            poison_nan_at_epoch: self.config.poison_nan_at_epoch,
            thresholds: self.config.thresholds.clone(),
            step: 0,
            signals: GanSignals::default(),
            collapse_streak: 0,
        }
    }
}

/// The [`StatsHook`] installed on one network: stride-samples passes and
/// streams [`LayerRecord`]s.
#[derive(Debug)]
struct NetHook {
    net: &'static str,
    stride: u64,
    /// Forward passes seen (the hook's own step clock).
    step: u64,
    /// Whether the current forward/backward pair is sampled.
    sampled: bool,
    shared: Arc<Mutex<MonitorState>>,
}

impl NetHook {
    fn record(&self, pass: Pass, index: usize, name: &str, stats: &TensorStats) {
        let Ok(mut st) = self.shared.lock() else {
            return;
        };
        if stats.is_poisoned() {
            st.poisoned = true;
        }
        let epoch = st.epoch;
        let record = LayerRecord {
            net: self.net.to_string(),
            pass,
            epoch,
            step: self.step,
            layer: index as u64,
            name: name.to_string(),
            count: stats.count as u64,
            mean: stats.mean as f64,
            std: stats.std as f64,
            l2: stats.l2 as f64,
            abs_max: stats.abs_max as f64,
            zero_frac: stats.zero_frac as f64,
            nan: stats.nan_count as u64,
            inf: stats.inf_count as u64,
        };
        // Crash forensics keeps the freshest snapshot per layer so an
        // incident bundle can show the net's state at death.
        crate::incident::record_layer_stats(&record);
        st.writer.append(&HealthRecord::Layer(record));
    }
}

impl StatsHook for NetHook {
    fn begin_forward(&mut self, _num_layers: usize) -> bool {
        self.step += 1;
        self.sampled = self.step.is_multiple_of(self.stride);
        self.sampled
    }

    fn on_activation(&mut self, index: usize, name: &str, stats: &TensorStats) {
        self.record(Pass::Forward, index, name, stats);
    }

    fn begin_backward(&mut self, _num_layers: usize) -> bool {
        self.sampled
    }

    fn on_gradient(&mut self, index: usize, name: &str, stats: &TensorStats) {
        self.record(Pass::Backward, index, name, stats);
    }
}

/// Per-epoch GAN signal accumulators (reset each epoch).
#[derive(Debug, Clone, Copy, Default)]
struct GanSignals {
    real_hits: u64,
    real_total: u64,
    fake_hits: u64,
    fake_total: u64,
    diversity_sum: f64,
    diversity_batches: u64,
}

/// The training-loop side of the monitor, embedded in [`crate::Cgan`] /
/// [`crate::CenterCnn`]: optimizer-step sampling, per-epoch signal
/// emission and abort checks.
#[derive(Debug)]
pub(crate) struct LoopHealth {
    net: &'static str,
    shared: Arc<Mutex<MonitorState>>,
    stride: u64,
    abort_on: Vec<AbortCondition>,
    poison_nan_at_epoch: Option<usize>,
    thresholds: Thresholds,
    /// Optimizer steps taken (the loop's own step clock).
    step: u64,
    signals: GanSignals,
    collapse_streak: usize,
}

impl LoopHealth {
    /// Marks the start of epoch `epoch`: stamps subsequent records and
    /// reports whether the NaN fault injection should fire now.
    pub(crate) fn begin_epoch(&mut self, epoch: usize) -> bool {
        if let Ok(mut st) = self.shared.lock() {
            st.epoch = epoch as u64;
        }
        self.poison_nan_at_epoch == Some(epoch)
    }

    /// Advances the optimizer-step clock; `true` when this step is
    /// sampled (enable update tracking before `Optimizer::step`).
    pub(crate) fn begin_step(&mut self) -> bool {
        self.step += 1;
        self.step.is_multiple_of(self.stride)
    }

    /// Streams one sampled step's update-to-weight ratios.
    pub(crate) fn record_updates(&mut self, net: NetId, opt: &dyn Optimizer) {
        let Ok(mut st) = self.shared.lock() else {
            return;
        };
        let epoch = st.epoch;
        for (i, u) in opt.update_stats().iter().enumerate() {
            st.writer.append(&HealthRecord::Update(UpdateRecord {
                net: net.clone(),
                epoch,
                step: self.step,
                param: i as u64,
                update_l2: u.update_l2 as f64,
                weight_l2: u.weight_l2 as f64,
                ratio: u.ratio as f64,
            }));
        }
    }

    /// Accumulates discriminator verdicts for one batch: `real_logits`
    /// should score positive, `fake_logits` negative.
    pub(crate) fn observe_d_batch(&mut self, real_logits: &Tensor, fake_logits: &Tensor) {
        for &v in real_logits.as_slice() {
            self.signals.real_total += 1;
            if v > 0.0 {
                self.signals.real_hits += 1;
            }
        }
        for &v in fake_logits.as_slice() {
            self.signals.fake_total += 1;
            if v < 0.0 {
                self.signals.fake_hits += 1;
            }
        }
    }

    /// Accumulates the mode-collapse proxy for one generated batch
    /// `[n, c, h, w]`: mean per-pixel standard deviation across the
    /// batch. Batches of one sample carry no diversity signal.
    pub(crate) fn observe_g_batch(&mut self, fake: &Tensor) {
        let dims = fake.dims();
        if dims.len() != 4 || dims[0] < 2 {
            return;
        }
        let n = dims[0];
        let per = fake.len() / n;
        let data = fake.as_slice();
        let mut sum_std = 0.0f64;
        for p in 0..per {
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            for s in 0..n {
                let v = data[s * per + p] as f64;
                sum += v;
                sum_sq += v * v;
            }
            let mean = sum / n as f64;
            sum_std += (sum_sq / n as f64 - mean * mean).max(0.0).sqrt();
        }
        self.signals.diversity_sum += sum_std / per as f64;
        self.signals.diversity_batches += 1;
    }

    /// Closes a cGAN epoch: writes the [`GanEpochRecord`] and runs the
    /// online abort checks.
    ///
    /// # Errors
    ///
    /// [`TensorError::Aborted`] when an armed abort condition fires.
    pub(crate) fn end_gan_epoch(&mut self, epoch: usize, g_loss: f64, d_loss: f64) -> Result<()> {
        let s = std::mem::take(&mut self.signals);
        let d_real_acc = s.real_hits as f64 / s.real_total.max(1) as f64;
        let d_fake_acc = s.fake_hits as f64 / s.fake_total.max(1) as f64;
        let diversity = if s.diversity_batches > 0 {
            s.diversity_sum / s.diversity_batches as f64
        } else {
            f64::NAN
        };
        if let Ok(mut st) = self.shared.lock() {
            st.writer.append(&HealthRecord::Gan(GanEpochRecord {
                epoch: epoch as u64,
                d_real_acc,
                d_fake_acc,
                g_loss,
                d_loss,
                loss_ratio: d_loss / (g_loss.abs() + 1e-12),
                diversity,
            }));
            st.writer.flush();
        }
        if litho_telemetry::is_enabled() {
            use litho_telemetry::Value;
            litho_telemetry::stat(
                "gan_health",
                &[
                    ("epoch", Value::U64(epoch as u64)),
                    ("d_real_acc", Value::F64(d_real_acc)),
                    ("d_fake_acc", Value::F64(d_fake_acc)),
                    ("g_loss", Value::F64(g_loss)),
                    ("d_loss", Value::F64(d_loss)),
                    ("diversity", Value::F64(diversity)),
                ],
            );
        }
        if diversity.is_finite() && diversity < self.thresholds.collapse_diversity {
            self.collapse_streak += 1;
        } else {
            self.collapse_streak = 0;
        }
        self.check_abort(g_loss.is_finite() && d_loss.is_finite())
    }

    /// Closes a center-CNN epoch: writes the [`CenterEpochRecord`] and
    /// runs the online abort checks.
    ///
    /// # Errors
    ///
    /// [`TensorError::Aborted`] when an armed abort condition fires.
    pub(crate) fn end_center_epoch(&mut self, epoch: usize, mse: f64, grad_norm: f64) -> Result<()> {
        if let Ok(mut st) = self.shared.lock() {
            st.writer.append(&HealthRecord::Center(CenterEpochRecord {
                epoch: epoch as u64,
                mse,
                grad_norm,
            }));
            st.writer.flush();
        }
        if litho_telemetry::is_enabled() {
            use litho_telemetry::Value;
            litho_telemetry::stat(
                "center_health",
                &[
                    ("epoch", Value::U64(epoch as u64)),
                    ("mse", Value::F64(mse)),
                    ("grad_norm", Value::F64(grad_norm)),
                ],
            );
        }
        self.check_abort(mse.is_finite())
    }

    fn check_abort(&self, losses_finite: bool) -> Result<()> {
        for cond in &self.abort_on {
            match cond {
                AbortCondition::Nan => {
                    let poisoned = self.shared.lock().map(|st| st.poisoned).unwrap_or(false);
                    if poisoned || !losses_finite {
                        return Err(TensorError::Aborted(format!(
                            "nan detected in {} training",
                            self.net
                        )));
                    }
                }
                AbortCondition::Collapse => {
                    if self.collapse_streak >= self.thresholds.collapse_epochs {
                        return Err(TensorError::Aborted(format!(
                            "mode collapse: generator diversity below {} for {} epochs",
                            self.thresholds.collapse_diversity, self.collapse_streak
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Poisons one parameter element of the network's *last* parameterized
/// layer with NaN — the `--poison-nan-at-epoch` fault injection.
///
/// The last layer is chosen deliberately: a NaN planted early in the
/// net can be silently cleansed by a downstream `ReLU` (`NaN > 0` is
/// false, so the output is 0), never reaching the loss. Poisoning the
/// output layer guarantees the fault is visible to the per-epoch loss
/// check even when the sampling stride skips every layer pass.
pub(crate) fn poison_param(seq: &mut Sequential) {
    use litho_nn::Layer;
    let mut count = 0usize;
    seq.visit_params(&mut |_| count += 1);
    let mut index = 0usize;
    seq.visit_params(&mut |p| {
        index += 1;
        if index == count {
            if let Some(v) = p.value.as_mut_slice().first_mut() {
                *v = f32::NAN;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_tensor::rng::{SeedableRng, StdRng, Uniform};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lithogan_health_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn rand(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::random(dims, &Uniform::new(-1.0, 1.0), &mut rng)
    }

    fn linear(inp: usize, out: usize, seed: u64) -> litho_nn::Linear {
        let mut rng = StdRng::seed_from_u64(seed);
        litho_nn::Linear::new(inp, out, &mut rng)
    }

    #[test]
    fn monitor_streams_layer_records_through_hooks() {
        use litho_nn::{Layer, Phase, Relu};
        let path = tmp("hook.jsonl");
        let monitor = HealthMonitor::create(
            &path,
            HealthConfig {
                stride: 1,
                ..HealthConfig::default()
            },
        )
        .unwrap();
        let mut net = Sequential::new();
        net.push(linear(4, 3, 7));
        net.push(Relu::new());
        net.set_stats_hook(Some(monitor.layer_hook("G")));
        let mut lh = monitor.loop_state("G");
        assert!(!lh.begin_epoch(0));
        let x = rand(&[2, 4], 5);
        let y = net.forward(&x, Phase::Train).unwrap();
        net.backward(&Tensor::full(y.dims(), 0.1)).unwrap();
        monitor.flush();
        let parsed = litho_health::parse_health_file(&path).unwrap();
        // 2 layers forward + 2 backward.
        assert_eq!(parsed.records.len(), 4);
        assert!(!monitor.poisoned());
    }

    #[test]
    fn stride_skips_unsampled_steps() {
        use litho_nn::{Layer, Phase};
        let path = tmp("stride.jsonl");
        let monitor = HealthMonitor::create(
            &path,
            HealthConfig {
                stride: 4,
                ..HealthConfig::default()
            },
        )
        .unwrap();
        let mut net = Sequential::new();
        net.push(linear(4, 3, 7));
        net.set_stats_hook(Some(monitor.layer_hook("G")));
        let x = rand(&[1, 4], 5);
        for _ in 0..8 {
            net.forward(&x, Phase::Train).unwrap();
        }
        monitor.flush();
        let parsed = litho_health::parse_health_file(&path).unwrap();
        // Steps 4 and 8 sampled, one layer each.
        assert_eq!(parsed.records.len(), 2);
    }

    #[test]
    fn nan_epoch_aborts_when_armed() {
        let path = tmp("abort.jsonl");
        let monitor = HealthMonitor::create(
            &path,
            HealthConfig {
                abort_on: vec![AbortCondition::Nan],
                ..HealthConfig::default()
            },
        )
        .unwrap();
        let mut lh = monitor.loop_state("G");
        lh.begin_epoch(0);
        assert!(lh.end_gan_epoch(0, 1.0, 0.5).is_ok());
        let err = lh.end_gan_epoch(1, f64::NAN, 0.5).unwrap_err();
        assert!(matches!(err, TensorError::Aborted(ref r) if r.contains("nan")));
    }

    #[test]
    fn collapse_streak_aborts_when_armed() {
        let path = tmp("collapse.jsonl");
        let monitor = HealthMonitor::create(
            &path,
            HealthConfig {
                abort_on: vec![AbortCondition::Collapse],
                ..HealthConfig::default()
            },
        )
        .unwrap();
        let mut lh = monitor.loop_state("G");
        lh.begin_epoch(0);
        // Two consecutive near-zero-diversity epochs trip the default
        // threshold (collapse_epochs = 2).
        let flat = Tensor::full(&[2, 1, 4, 4], 0.5);
        lh.observe_g_batch(&flat);
        assert!(lh.end_gan_epoch(0, 1.0, 0.5).is_ok());
        lh.observe_g_batch(&flat);
        let err = lh.end_gan_epoch(1, 1.0, 0.5).unwrap_err();
        assert!(matches!(err, TensorError::Aborted(ref r) if r.contains("collapse")));
    }

    #[test]
    fn d_batch_accuracy_and_diversity_accumulate() {
        let path = tmp("signals.jsonl");
        let monitor = HealthMonitor::create(&path, HealthConfig::default()).unwrap();
        let mut lh = monitor.loop_state("G");
        lh.begin_epoch(0);
        let real = Tensor::from_vec(vec![2.0, -1.0], &[2, 1]).unwrap();
        let fake = Tensor::from_vec(vec![-2.0, -3.0], &[2, 1]).unwrap();
        lh.observe_d_batch(&real, &fake);
        let diverse = rand(&[2, 1, 4, 4], 3);
        lh.observe_g_batch(&diverse);
        lh.end_gan_epoch(0, 1.0, 0.5).unwrap();
        monitor.flush();
        let parsed = litho_health::parse_health_file(&path).unwrap();
        assert_eq!(parsed.records.len(), 1);
        match &parsed.records[0] {
            HealthRecord::Gan(g) => {
                assert!((g.d_real_acc - 0.5).abs() < 1e-9);
                assert!((g.d_fake_acc - 1.0).abs() < 1e-9);
                assert!(g.diversity > 0.0);
            }
            other => panic!("expected gan record, got {other:?}"),
        }
    }

    #[test]
    fn poison_param_survives_a_relu_sandwich() {
        use litho_nn::{Layer, Phase, Relu};
        // An early-layer NaN would be cleansed by the ReLU; the fault
        // must land past it to reach the output.
        let mut net = Sequential::new();
        net.push(linear(4, 3, 7));
        net.push(Relu::new());
        net.push(linear(3, 2, 9));
        poison_param(&mut net);
        let y = net
            .forward(&rand(&[1, 4], 5), Phase::Eval)
            .unwrap();
        assert!(y.as_slice().iter().any(|v| v.is_nan()));
    }
}
