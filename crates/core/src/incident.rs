//! Crash forensics: the incident bundle writer and the process-wide
//! panic hook.
//!
//! Once a run is *armed* (the CLI arms every ledger-backed run), the
//! telemetry flight recorder rings the last N events in memory, and
//! this module keeps the last per-layer health stats alongside. When
//! the run dies — a panic anywhere in the process, or the `--abort-on`
//! health bail — [`dump`] freezes everything into
//! `runs/<id>/incident/`, a self-contained post-mortem:
//!
//! | file            | contents                                        |
//! |-----------------|-------------------------------------------------|
//! | `ring.jsonl`    | flight-recorder dump, oldest event first        |
//! | `panic.txt`     | reason, panic payload/location, full backtrace  |
//! | `manifest.json` | manifest snapshot at the moment of death        |
//! | `counters.json` | peak RSS, tensor/workspace bytes, pool stats    |
//! | `stats.jsonl`   | last sampled `TensorStats` per layer            |
//!
//! The dump path allocates but never panics: every write is best-effort
//! so a failing disk can't turn one crash into two. The panic hook
//! chains the previously installed hook, so default backtrace printing
//! (and test-harness capture) keeps working.

use std::backtrace::Backtrace;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::panic::{self, PanicHookInfo};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, Once};

use litho_health::{HealthRecord, LayerRecord};

/// Run directory to dump into, when armed.
static ARMED_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
/// Last sampled layer stats, keyed by `(net, pass, layer)` so forward
/// and backward snapshots of every layer survive independently.
#[allow(clippy::type_complexity)]
static LAST_STATS: Mutex<Option<BTreeMap<(String, &'static str, u64), LayerRecord>>> =
    Mutex::new(None);

/// Arms crash forensics for `run_dir`: starts the telemetry flight
/// recorder with a ring of `ring_capacity` events, begins retaining
/// per-layer stats, and installs the panic hook (once per process).
/// Re-arming switches the target directory and clears retained state.
pub fn arm(run_dir: &Path, ring_capacity: usize) {
    litho_telemetry::flight_arm(ring_capacity);
    *ARMED_DIR.lock().unwrap() = Some(run_dir.to_path_buf());
    *LAST_STATS.lock().unwrap() = Some(BTreeMap::new());
    install_panic_hook();
}

/// Disarms forensics (the flight ring too). Used by tests; production
/// runs stay armed until process exit.
pub fn disarm() {
    litho_telemetry::flight_disarm();
    *ARMED_DIR.lock().unwrap() = None;
    *LAST_STATS.lock().unwrap() = None;
}

/// Whether a run is currently armed.
pub fn armed() -> bool {
    ARMED_DIR.lock().unwrap().is_some()
}

/// Retains the latest stats snapshot for one layer; called by the
/// health monitor's hook on every sampled pass. Cheap map insert, no-op
/// when disarmed.
pub fn record_layer_stats(record: &LayerRecord) {
    let mut guard = LAST_STATS.lock().unwrap();
    if let Some(map) = guard.as_mut() {
        map.insert(
            (record.net.clone(), record.pass.as_str(), record.layer),
            record.clone(),
        );
    }
}

fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info: &PanicHookInfo| {
            // Best effort; a second panic here would abort the process.
            let payload = panic_payload(info);
            let location = info
                .location()
                .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
                .unwrap_or_else(|| "unknown location".to_string());
            let _ = dump("panic", Some(&format!("panicked at {location}: {payload}")));
            previous(info);
        }));
    });
}

fn panic_payload(info: &PanicHookInfo) -> String {
    if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Writes the incident bundle for the armed run. `reason` is the
/// short machine-readable cause (`panic`, `aborted(nan)`, …); `detail`
/// carries the panic message when there is one. Returns the bundle
/// directory, or `Ok(None)` when no run is armed.
pub fn dump(reason: &str, detail: Option<&str>) -> io::Result<Option<PathBuf>> {
    let Some(run_dir) = ARMED_DIR.lock().unwrap().clone() else {
        return Ok(None);
    };
    let dir = run_dir.join("incident");
    fs::create_dir_all(&dir)?;

    // Ring dump: the last moments of telemetry, oldest first.
    let ring = litho_telemetry::flight_snapshot();
    let mut ring_text = String::with_capacity(ring.len() * 128);
    for line in &ring {
        ring_text.push_str(line);
        ring_text.push('\n');
    }
    fs::write(dir.join("ring.jsonl"), ring_text)?;

    // Reason + backtrace. `force_capture` ignores RUST_BACKTRACE so the
    // bundle is complete even when the environment never opted in.
    let mut panic_text = format!("reason: {reason}\n");
    if let Some(d) = detail {
        let _ = writeln!(panic_text, "detail: {d}");
    }
    let _ = writeln!(panic_text, "\nbacktrace:\n{}", Backtrace::force_capture());
    fs::write(dir.join("panic.txt"), panic_text)?;

    // Manifest snapshot: whatever the ledger last persisted. The live
    // manifest may still say "running" — that's the point: it captures
    // the run as it looked when it died.
    match fs::read(run_dir.join("manifest.json")) {
        Ok(bytes) => fs::write(dir.join("manifest.json"), bytes)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }

    // Process counters at the moment of death.
    let pool = litho_tensor::pool::stats();
    let mut counters = String::with_capacity(256);
    counters.push('{');
    let _ = write!(counters, "\"reason\":");
    litho_ledger::json::write_str(&mut counters, reason);
    let _ = write!(
        counters,
        ",\"peak_rss_bytes\":{},\"tensor_alloc_bytes\":{},\"peak_workspace_bytes\":{},\
         \"ring_events\":{},\"threads\":{}",
        litho_ledger::peak_rss_bytes()
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".to_string()),
        litho_tensor::allocated_bytes(),
        litho_tensor::peak_workspace_bytes(),
        ring.len(),
        litho_tensor::pool::effective_threads(),
    );
    if let Some(u) = pool.utilization() {
        let _ = write!(counters, ",\"pool_utilization\":{u:.4}");
    }
    counters.push_str("}\n");
    fs::write(dir.join("counters.json"), counters)?;

    // Last per-layer stats, as health.jsonl-format lines.
    let stats = LAST_STATS.lock().unwrap();
    let mut stats_text = String::new();
    if let Some(map) = stats.as_ref() {
        for rec in map.values() {
            stats_text.push_str(&HealthRecord::Layer(rec.clone()).to_jsonl());
            stats_text.push('\n');
        }
    }
    fs::write(dir.join("stats.jsonl"), stats_text)?;

    Ok(Some(dir))
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_health::Pass;

    fn layer(net: &str, pass: Pass, layer_idx: u64, mean: f64) -> LayerRecord {
        LayerRecord {
            net: net.to_string(),
            pass,
            epoch: 1,
            step: 7,
            layer: layer_idx,
            name: format!("conv{layer_idx}"),
            count: 16,
            mean,
            std: 1.0,
            l2: 4.0,
            abs_max: 2.0,
            zero_frac: 0.0,
            nan: 0,
            inf: 0,
        }
    }

    // One test: the armed state is process-global, and the parallel
    // test harness must not interleave arm/disarm cycles.
    #[test]
    fn arm_dump_bundle_disarm() {
        let dir = std::env::temp_dir().join(format!("litho-incident-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("manifest.json"), "{\"status\":\"running\"}").unwrap();

        assert!(dump("noop", None).unwrap().is_none()); // disarmed: no bundle

        arm(&dir, 16);
        assert!(armed());
        litho_telemetry::flight_note_line("{\"milestone\":\"epoch 1\"}");
        record_layer_stats(&layer("generator", Pass::Forward, 0, 0.5));
        record_layer_stats(&layer("generator", Pass::Forward, 0, 0.7)); // supersedes
        record_layer_stats(&layer("generator", Pass::Backward, 0, 0.1));

        let bundle = dump("aborted(nan)", Some("poisoned at epoch 1")).unwrap().unwrap();
        assert_eq!(bundle, dir.join("incident"));
        let ring = fs::read_to_string(bundle.join("ring.jsonl")).unwrap();
        assert!(ring.contains("epoch 1"));
        let panic_txt = fs::read_to_string(bundle.join("panic.txt")).unwrap();
        assert!(panic_txt.contains("reason: aborted(nan)"));
        assert!(panic_txt.contains("poisoned at epoch 1"));
        assert!(panic_txt.contains("backtrace:"));
        assert_eq!(
            fs::read_to_string(bundle.join("manifest.json")).unwrap(),
            "{\"status\":\"running\"}"
        );
        let counters = fs::read_to_string(bundle.join("counters.json")).unwrap();
        assert!(counters.contains("\"reason\":\"aborted(nan)\""));
        assert!(counters.contains("\"tensor_alloc_bytes\":"));
        let stats = fs::read_to_string(bundle.join("stats.jsonl")).unwrap();
        // Last-wins per (net, pass, layer): two snapshots survive, the
        // newer forward mean replaced the older one.
        assert_eq!(stats.lines().filter(|l| !l.is_empty()).count(), 2);
        assert!(stats.contains("0.7"));
        assert!(!stats.contains("0.5"));

        disarm();
        assert!(!armed());
        assert!(dump("noop", None).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
