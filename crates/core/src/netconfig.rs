use litho_tensor::rng::StdRng;
use litho_tensor::rng::SeedableRng;

use litho_nn::{
    BatchNorm2d, Conv2d, ConvTranspose2d, Dropout, Flatten, LeakyRelu, Linear, MaxPool2d, Relu,
    Sequential, Tanh,
};

/// Architecture hyper-parameters for the three networks.
///
/// [`NetConfig::paper`] builds the exact layer stacks of the paper's
/// Table 1 and Table 2 (256 × 256 images, base width 64).
/// [`NetConfig::scaled`] builds the same topology at reduced resolution
/// and width for CPU-budget experiments — depth scales with
/// `log2(image_size)` so the generator always bottlenecks at 1 × 1.
///
/// Two documented deviations from the published tables (see DESIGN.md):
/// the generator emits 1 monochrome channel through `tanh` (the table
/// lists a 3-channel `Deconv-LReLU` output, but the resist target is a
/// monochrome image and `tanh` is the standard pix2pix output), and
/// encoder/decoder activations follow the paper's *text* (encoder
/// LeakyReLU, decoder ReLU) where the table swaps them.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Image edge length (power of two, ≥ 8).
    pub image_size: usize,
    /// Mask-image channels (3: neighbors/target/SRAFs).
    pub in_channels: usize,
    /// Resist-image channels (1, monochrome).
    pub out_channels: usize,
    /// Width of the first encoder level (64 in the paper).
    pub base_channels: usize,
    /// Channel cap as a multiple of `base_channels` (8 in the paper:
    /// 64 → 512).
    pub max_channel_multiplier: usize,
    /// Dropout probability in the decoder and CNN head (0.5).
    pub dropout_p: f32,
    /// Negative slope of leaky ReLU activations (0.2).
    pub leaky_slope: f32,
}

impl NetConfig {
    /// The paper's architecture: 256 × 256, base width 64.
    pub fn paper() -> Self {
        NetConfig {
            image_size: 256,
            in_channels: 3,
            out_channels: 1,
            base_channels: 64,
            max_channel_multiplier: 8,
            dropout_p: 0.5,
            leaky_slope: 0.2,
        }
    }

    /// A reduced configuration with the same topology (see DESIGN.md's
    /// substitution table for why experiments default to this scale).
    ///
    /// # Panics
    ///
    /// Panics if `image_size` is not a power of two at least 8.
    pub fn scaled(image_size: usize) -> Self {
        assert!(
            image_size.is_power_of_two() && image_size >= 8,
            "image size must be a power of two >= 8"
        );
        NetConfig {
            image_size,
            in_channels: 3,
            out_channels: 1,
            base_channels: 16,
            max_channel_multiplier: 8,
            dropout_p: 0.5,
            leaky_slope: 0.2,
        }
    }

    /// Number of stride-2 encoder levels (bottleneck at 1 × 1).
    pub fn encoder_levels(&self) -> usize {
        self.image_size.trailing_zeros() as usize
    }

    /// Channel width of encoder level `i`.
    fn ch(&self, i: usize) -> usize {
        (self.base_channels << i).min(self.base_channels * self.max_channel_multiplier)
    }

    /// Builds the generator of Table 1: a stride-2 conv encoder down to a
    /// 1 × 1 bottleneck, mirrored by a transposed-conv decoder with
    /// dropout after the first two blocks, `tanh` output.
    pub fn build_generator(&self, seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = self.encoder_levels();
        let mut net = Sequential::new();
        // Encoder: Conv-LReLU then Conv-BN-LReLU blocks.
        for i in 0..levels {
            let in_ch = if i == 0 { self.in_channels } else { self.ch(i - 1) };
            net.push(Conv2d::new(in_ch, self.ch(i), 5, 2, 2, &mut rng));
            if i > 0 {
                net.push(BatchNorm2d::new(self.ch(i)));
            }
            net.push(LeakyRelu::new(self.leaky_slope));
        }
        // Decoder: Deconv-BN-ReLU blocks, dropout on the first two,
        // final Deconv-Tanh.
        for j in 0..levels {
            let in_ch = self.ch(levels - 1 - j);
            let last = j == levels - 1;
            let out_ch = if last {
                self.out_channels
            } else {
                self.ch(levels - 2 - j)
            };
            net.push(ConvTranspose2d::new(in_ch, out_ch, 5, 2, 2, 1, &mut rng));
            if !last {
                net.push(BatchNorm2d::new(out_ch));
                net.push(Relu::new());
                if j < 2 {
                    net.push(Dropout::new(self.dropout_p, seed.wrapping_add(j as u64 + 1)));
                }
            } else {
                net.push(Tanh::new());
            }
        }
        net
    }

    /// Builds the discriminator of Table 1: stride-2 Conv-(BN-)LReLU
    /// blocks over the concatenated `(x, y)` pair, then a fully connected
    /// logit (the loss applies the sigmoid).
    pub fn build_discriminator(&self, seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        // 4 stride-2 levels in the paper (256 → 16); shallower images
        // reduce depth so at least a 4 × 4 map feeds the FC layer.
        let levels = 4.min(self.image_size.trailing_zeros() as usize - 2);
        let mut net = Sequential::new();
        let mut in_ch = self.in_channels + self.out_channels;
        for i in 0..levels {
            let out_ch = self.ch(i);
            net.push(Conv2d::new(in_ch, out_ch, 5, 2, 2, &mut rng));
            if i > 0 {
                net.push(BatchNorm2d::new(out_ch));
            }
            net.push(LeakyRelu::new(self.leaky_slope));
            in_ch = out_ch;
        }
        let spatial = self.image_size >> levels;
        net.push(Flatten::new());
        net.push(Linear::new(in_ch * spatial * spatial, 1, &mut rng));
        net
    }

    /// Builds the centre-prediction CNN of Table 2: a 7 × 7 stem then
    /// 3 × 3 Conv-ReLU-BN-MaxPool blocks down to an 8 × 8 map, a 64-unit
    /// FC with ReLU + dropout, and a 2-unit regression head.
    pub fn build_center_cnn(&self, seed: u64) -> Sequential {
        self.build_regression_cnn(seed, self.in_channels, 2)
    }

    /// Builds a Table-2-style regression CNN with arbitrary input channel
    /// count and output dimension (the Ref. \[12\] baseline's threshold
    /// predictor uses 1 input channel and 4 outputs).
    pub fn build_regression_cnn(&self, seed: u64, in_channels: usize, outputs: usize) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        // Pool down to 8x8 (paper: 256 → five pools → 8).
        let levels = (self.image_size.trailing_zeros() as usize).saturating_sub(3).max(1);
        let cnn_ch = |i: usize| if i == 0 { 32 } else { 64 };
        let mut net = Sequential::new();
        let mut in_ch = in_channels;
        for i in 0..levels {
            let k = if i == 0 { 7 } else { 3 };
            let out_ch = cnn_ch(i);
            net.push(Conv2d::new(in_ch, out_ch, k, 1, k / 2, &mut rng));
            net.push(Relu::new());
            net.push(BatchNorm2d::new(out_ch));
            net.push(MaxPool2d::new(2, 2));
            in_ch = out_ch;
        }
        let spatial = self.image_size >> levels;
        net.push(Flatten::new());
        net.push(Linear::new(in_ch * spatial * spatial, 64, &mut rng));
        net.push(Relu::new());
        net.push(Dropout::new(self.dropout_p, seed.wrapping_add(99)));
        net.push(Linear::new(64, outputs, &mut rng));
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_nn::{Layer, Phase};
    use litho_tensor::Tensor;

    #[test]
    fn scaled_generator_shapes() {
        let cfg = NetConfig::scaled(32);
        let mut g = cfg.build_generator(0);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        let y = g.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 1, 32, 32]);
        // Output through tanh: bounded.
        assert!(y.max() <= 1.0 && y.min() >= -1.0);
    }

    #[test]
    fn scaled_discriminator_shapes() {
        let cfg = NetConfig::scaled(32);
        let mut d = cfg.build_discriminator(0);
        let xy = Tensor::zeros(&[4, 4, 32, 32]);
        let out = d.forward(&xy, Phase::Eval).unwrap();
        assert_eq!(out.dims(), &[4, 1]);
    }

    #[test]
    fn scaled_center_cnn_shapes() {
        let cfg = NetConfig::scaled(32);
        let mut c = cfg.build_center_cnn(0);
        let x = Tensor::zeros(&[3, 3, 32, 32]);
        let out = c.forward(&x, Phase::Eval).unwrap();
        assert_eq!(out.dims(), &[3, 2]);
    }

    #[test]
    fn paper_architecture_matches_table1_depth() {
        let cfg = NetConfig::paper();
        assert_eq!(cfg.encoder_levels(), 8);
        // 8 encoder convs (Table 1's input + 8 rows) and 8 decoder deconvs.
        let g = cfg.build_generator(0);
        let names = g.layer_names();
        let convs = names.iter().filter(|n| n.starts_with("Conv2d")).count();
        let deconvs = names.iter().filter(|n| n.starts_with("ConvTranspose2d")).count();
        let dropouts = names.iter().filter(|n| n.starts_with("Dropout")).count();
        assert_eq!(convs, 8);
        assert_eq!(deconvs, 8);
        assert_eq!(dropouts, 2); // Table 1: dropout after the first two deconv blocks
        // Channel cap at 512 = 64 * 8.
        assert!(names.iter().any(|n| n.contains("512")));
        assert!(!names.iter().any(|n| n.contains("1024")));
    }

    #[test]
    fn paper_generator_forward_shape() {
        // One shape-level sanity pass at full paper scale (batch 1).
        let cfg = NetConfig::paper();
        let mut g = cfg.build_generator(0);
        let x = Tensor::zeros(&[1, 3, 256, 256]);
        let y = g.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 1, 256, 256]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn scaled_rejects_non_power_of_two() {
        NetConfig::scaled(48);
    }

    #[test]
    fn generator_is_deterministic_in_seed() {
        let cfg = NetConfig::scaled(16);
        let mut a = cfg.build_generator(5);
        let mut b = cfg.build_generator(5);
        let x = Tensor::ones(&[1, 3, 16, 16]);
        assert_eq!(
            a.forward(&x, Phase::Eval).unwrap(),
            b.forward(&x, Phase::Eval).unwrap()
        );
    }
}
