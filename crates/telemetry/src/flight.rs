//! Flight recorder: a fixed-size ring buffer of the most recent
//! telemetry events, kept in memory so a crash handler can dump the
//! last moments of a run into `runs/<id>/incident/`.
//!
//! The ring is deliberately lock-light. Writers reserve a slot with one
//! relaxed `fetch_add` on a shared cursor and then lock *only their own
//! slot's* mutex, so concurrent recorders from worker-pool threads never
//! serialize against each other (two writers contend only when the ring
//! has wrapped all the way around to the same slot). Events are stored
//! pre-rendered as JSONL lines — the same representation
//! [`crate::JsonlSink`] writes — which keeps the dump path trivial and
//! the capture path free of any deferred formatting surprises.
//!
//! Arming the recorder is independent of enabling telemetry or
//! installing a sink: `arm(capacity)` alone makes [`crate::emit`] tee
//! every routed event into the ring even when no sink is configured.
//! When disarmed (the default) the only cost on the emit path is one
//! relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use crate::sink::Event;

/// Default ring capacity used by callers that don't care: enough for a
/// few epochs of layer stats plus the tail of kernel spans.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

struct Ring {
    slots: Vec<Mutex<Option<String>>>,
    /// Total number of records ever written; `cursor % slots.len()` is
    /// the next slot to overwrite.
    cursor: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    fn push(&self, line: String) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        *self.slots[idx].lock().unwrap() = Some(line);
    }

    /// Oldest-first copy of the current contents.
    fn snapshot(&self) -> Vec<String> {
        let cap = self.slots.len() as u64;
        let cursor = self.cursor.load(Ordering::Relaxed);
        let start = cursor.saturating_sub(cap);
        let mut out = Vec::with_capacity((cursor - start) as usize);
        for seq in start..cursor {
            let idx = (seq % cap) as usize;
            if let Some(line) = self.slots[idx].lock().unwrap().as_ref() {
                out.push(line.clone());
            }
        }
        out
    }
}

/// Fast-path gate checked on every emit; avoids touching the `RwLock`
/// when the recorder is disarmed.
static ARMED: AtomicBool = AtomicBool::new(false);

fn ring() -> &'static RwLock<Option<Ring>> {
    static RING: RwLock<Option<Ring>> = RwLock::new(None);
    &RING
}

/// Arms the flight recorder with a ring of `capacity` events (clamped to
/// at least 1). Re-arming replaces the ring and discards prior contents.
pub fn flight_arm(capacity: usize) {
    *ring().write().unwrap() = Some(Ring::new(capacity));
    ARMED.store(true, Ordering::Release);
}

/// Disarms the recorder and drops the ring.
pub fn flight_disarm() {
    ARMED.store(false, Ordering::Release);
    *ring().write().unwrap() = None;
}

/// Whether the recorder is currently armed.
pub fn flight_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Oldest-first JSONL lines currently held in the ring (empty when
/// disarmed). Safe to call from a panic hook: read lock plus per-slot
/// locks, no allocation beyond the returned vector.
pub fn flight_snapshot() -> Vec<String> {
    match ring().read().unwrap().as_ref() {
        Some(r) => r.snapshot(),
        None => Vec::new(),
    }
}

/// Records one already-assembled event. Called from [`crate::emit`];
/// also usable directly for out-of-band lines (e.g. health records).
pub(crate) fn flight_record(event: &Event) {
    if !flight_armed() {
        return;
    }
    let line = event.to_jsonl();
    if let Some(r) = ring().read().unwrap().as_ref() {
        r.push(line);
    }
}

/// Records a raw pre-rendered JSONL line (no trailing newline) into the
/// ring, letting non-telemetry streams — health records, CLI milestones
/// — share the same crash context.
pub fn flight_note_line(line: &str) {
    if !flight_armed() {
        return;
    }
    if let Some(r) = ring().read().unwrap().as_ref() {
        r.push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global, so every scenario lives in one test
    // to avoid cross-test interference under the parallel harness.
    #[test]
    fn arm_record_wrap_snapshot_disarm() {
        assert!(!flight_armed());
        assert!(flight_snapshot().is_empty());
        flight_note_line("{\"dropped\":true}"); // disarmed: no-op
        assert!(flight_snapshot().is_empty());

        flight_arm(3);
        assert!(flight_armed());
        for i in 0..5 {
            flight_note_line(&format!("{{\"i\":{i}}}"));
        }
        // Capacity 3, five writes: the ring keeps the last three,
        // oldest first.
        assert_eq!(
            flight_snapshot(),
            vec!["{\"i\":2}", "{\"i\":3}", "{\"i\":4}"]
        );

        // Re-arming discards prior contents.
        flight_arm(8);
        assert!(flight_snapshot().is_empty());
        flight_note_line("{\"fresh\":1}");
        assert_eq!(flight_snapshot(), vec!["{\"fresh\":1}"]);

        flight_disarm();
        assert!(!flight_armed());
        assert!(flight_snapshot().is_empty());
    }
}
