//! Log-scale histogram with cheap fixed storage and quantile extraction.

/// Buckets per decade. The relative width of one bucket is
/// `10^(1/16) ≈ 1.155`, so quantile estimates carry at most ~15.5%
/// relative error — plenty for runtime distributions spanning ns to s.
const BUCKETS_PER_DECADE: f64 = 16.0;
/// Smallest representable value (1 ns when observing seconds).
const MIN_VALUE: f64 = 1e-9;
/// Total bucket count: covers `[1e-9, 1e7)` — sixteen decades.
const NUM_BUCKETS: usize = 256;

/// Fixed-size log-scale histogram. Also tracks exact min/max/sum/count so
/// means and extrema do not suffer bucketing error.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

fn bucket_index(value: f64) -> usize {
    if value <= MIN_VALUE {
        return 0;
    }
    let idx = ((value / MIN_VALUE).log10() * BUCKETS_PER_DECADE).floor() as isize;
    idx.clamp(0, NUM_BUCKETS as isize - 1) as usize
}

/// Geometric midpoint of bucket `i`.
fn bucket_mid(i: usize) -> f64 {
    MIN_VALUE * 10f64.powf((i as f64 + 0.5) / BUCKETS_PER_DECADE)
}

impl Histogram {
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let v = value.max(0.0);
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`). Returns the geometric
    /// midpoint of the bucket containing the target rank, clamped to the
    /// exact observed `[min, max]` range.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based ceil like classical
        // nearest-rank quantiles.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0.0);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = Histogram::default();
        h.record(0.125);
        // Clamped to [min, max] == [0.125, 0.125].
        assert_eq!(h.p50(), 0.125);
        assert_eq!(h.p99(), 0.125);
        assert_eq!(h.max(), 0.125);
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0;
        let mut v = 1e-9;
        while v < 1e6 {
            let i = bucket_index(v);
            assert!(i >= prev);
            prev = i;
            v *= 1.31;
        }
    }
}
