//! Human-readable summary table over a registry [`Snapshot`].

use std::fmt::Write as _;
use std::time::Duration;

use crate::registry::Snapshot;

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{}ns", d.as_nanos())
    }
}

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Render counters, gauges, histograms and the nested span tree. Span
/// nesting is recovered from the `/`-separated paths (already sorted so
/// children follow their parent).
pub fn report_to_string(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== telemetry report ==");

    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        let w = snap.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<w$}  {v}");
        }
    }

    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        let w = snap.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {name:<w$}  {}", fmt_value(*v));
        }
    }

    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        let w = snap
            .histograms
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(4);
        // mean/min/max are exact (tracked beside the log-scale bins);
        // only the quantile columns are bucket estimates.
        let _ = writeln!(
            out,
            "  {:<w$}  {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "mean", "min", "p50", "p95", "p99", "max"
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<w$}  {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count,
                fmt_value(h.mean),
                fmt_value(h.min),
                fmt_value(h.p50),
                fmt_value(h.p95),
                fmt_value(h.p99),
                fmt_value(h.max),
            );
        }
    }

    if !snap.spans.is_empty() {
        let _ = writeln!(out, "spans:");
        // Indent by depth; show only the leaf segment at depth > 0.
        let rows: Vec<(String, &str, usize)> = snap
            .spans
            .iter()
            .map(|(path, _)| {
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                (format!("{}{}", "  ".repeat(depth), leaf), path.as_str(), depth)
            })
            .collect();
        let w = rows.iter().map(|(label, _, _)| label.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            out,
            "  {:<w$}  {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "path", "count", "total", "mean", "min", "p50", "p95", "max"
        );
        for (label, path, _) in &rows {
            let stat = snap.span(path).expect("span path from snapshot");
            let mean = if stat.count == 0 {
                Duration::ZERO
            } else {
                stat.total / stat.count as u32
            };
            let _ = writeln!(
                out,
                "  {:<w$}  {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                label,
                stat.count,
                fmt_duration(stat.total),
                fmt_duration(mean),
                fmt_duration(stat.min),
                fmt_duration(stat.p50),
                fmt_duration(stat.p95),
                fmt_duration(stat.max),
            );
        }
    }

    if snap.counters.is_empty()
        && snap.gauges.is_empty()
        && snap.histograms.is_empty()
        && snap.spans.is_empty()
    {
        let _ = writeln!(out, "  (no data collected)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_reports_no_data() {
        let s = report_to_string(&Snapshot::default());
        assert!(s.contains("no data collected"));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.000us");
        assert_eq!(fmt_duration(Duration::from_nanos(30)), "30ns");
    }
}
