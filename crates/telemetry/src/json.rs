//! Minimal JSON string/number writing — just enough for the JSONL sink,
//! so the workspace stays free of external serialization crates.

/// Append `s` to `out` as a JSON string literal (with quotes).
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number; non-finite floats become `null`
/// (JSON has no representation for them).
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_is_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }
}
