//! Global aggregation: counters, gauges, histograms and per-path span
//! statistics, all behind one `std::sync::Mutex`.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::histogram::Histogram;

/// Aggregated statistics for one span path.
#[derive(Default, Clone)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total: Duration,
    pub hist: Histogram,
}

/// The mutable core; `BTreeMap` keeps report ordering stable and groups
/// span paths with their children lexicographically.
#[derive(Default)]
pub(crate) struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
}

impl Registry {
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    pub fn record_span(&mut self, path: &str, dur: Duration) {
        let stat = self.spans.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total += dur;
        stat.hist.record(dur.as_secs_f64());
    }

    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.spans.clear();
    }

    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone().into_iter().collect(),
            gauges: self.gauges.clone().into_iter().collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::from(h)))
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        SpanStatSnapshot {
                            count: s.count,
                            total: s.total,
                            min: Duration::from_secs_f64(s.hist.min()),
                            max: Duration::from_secs_f64(s.hist.max()),
                            p50: Duration::from_secs_f64(s.hist.p50()),
                            p95: Duration::from_secs_f64(s.hist.p95()),
                            p99: Duration::from_secs_f64(s.hist.p99()),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Read-only copy of one histogram's summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl From<&Histogram> for HistogramSnapshot {
    fn from(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
        }
    }
}

/// Read-only copy of one span path's aggregate timing. `min`/`max` are
/// exact observed extremes; the quantiles are log-bucket estimates
/// clamped to `[min, max]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStatSnapshot {
    pub count: u64,
    pub total: Duration,
    pub min: Duration,
    pub max: Duration,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
}

/// A point-in-time copy of everything the registry has aggregated.
/// Entries are sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub spans: Vec<(String, SpanStatSnapshot)>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    pub fn span(&self, path: &str) -> Option<&SpanStatSnapshot> {
        self.spans.iter().find(|(n, _)| n == path).map(|(_, s)| s)
    }
}
