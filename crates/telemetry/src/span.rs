//! RAII timing scopes with thread-local nesting.
//!
//! Each thread keeps a stack of the currently-open span paths; a span
//! opened while another is open gets the parent's path as a `/`-separated
//! prefix, so aggregation and the report's tree view fall out of plain
//! lexicographic ordering.

use std::borrow::Cow;
use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::sink::Value;

thread_local! {
    /// Full paths of the spans currently open on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A running timing scope. Created via [`crate::span`]; records itself on
/// [`Span::finish`] or on drop, whichever comes first.
pub struct Span {
    start: Option<Instant>,
    /// Full `/`-separated path; empty for inert (disabled) spans.
    path: String,
    depth: usize,
    /// Caller-attached fields emitted with the span's close event (e.g.
    /// a kernel's static cost model).
    extra: Vec<(&'static str, Value)>,
}

impl Span {
    /// A public inert span: records nothing on drop. Useful for callers
    /// that decide per invocation whether a scope is worth tracing (e.g.
    /// kernels below a work threshold).
    pub fn inert() -> Span {
        Span::noop()
    }

    /// An inert span: no timing, no allocation beyond the empty struct.
    pub(crate) fn noop() -> Span {
        Span {
            start: None,
            path: String::new(),
            depth: 0,
            extra: Vec::new(),
        }
    }

    pub(crate) fn start(name: Cow<'static, str>) -> Span {
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => {
                    let mut p = String::with_capacity(parent.len() + 1 + name.len());
                    p.push_str(parent);
                    p.push('/');
                    p.push_str(&name);
                    p
                }
                None => name.into_owned(),
            };
            stack.push(path.clone());
            (path, stack.len() - 1)
        });
        Span {
            start: Some(Instant::now()),
            path,
            depth,
            extra: Vec::new(),
        }
    }

    /// Attach an extra field to this span's close event. Inert spans
    /// ignore the call. `flops` / `bytes` annotations additionally yield
    /// derived `gflops` / `ai` fields when the span closes.
    pub fn annotate(&mut self, key: &'static str, value: Value) {
        if self.start.is_some() {
            self.extra.push((key, value));
        }
    }

    /// Is this span actually recording? False when telemetry was disabled
    /// at creation time.
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }

    /// Time elapsed so far (zero for inert spans).
    pub fn elapsed(&self) -> Duration {
        self.start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO)
    }

    /// Stop the span now, record it, and return its duration. Inert spans
    /// return zero.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let Some(start) = self.start.take() else {
            return Duration::ZERO;
        };
        let dur = start.elapsed();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // RAII spans close in reverse order of creation; search from
            // the end so an out-of-order drop still removes its own entry.
            if let Some(pos) = stack.iter().rposition(|p| *p == self.path) {
                stack.remove(pos);
            }
        });
        crate::record_span_with(&self.path, self.depth, dur, &self.extra);
        dur
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.start.is_some() {
            self.close();
        }
    }
}
