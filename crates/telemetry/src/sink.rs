//! Pluggable event sinks: human-readable stderr lines and machine-readable
//! JSONL streams.

use std::io::Write;

use litho_json as json;

/// A loosely-typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => json::write_str(out, s),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => json::write_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }

    fn write_human(&self, out: &mut String) {
        match self {
            Value::Str(s) => out.push_str(s),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => out.push_str(&format!("{v:.6}")),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

/// Classifies an event for downstream consumers; serialized as the `kind`
/// JSON field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Span,
    Counter,
    Gauge,
    Event,
    Meta,
    /// Model-health statistics (per-layer activation/gradient summaries,
    /// update ratios) — high-volume, so consumers can filter them out of
    /// timing analyses cheaply by kind.
    Stat,
}

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Event => "event",
            EventKind::Meta => "meta",
            EventKind::Stat => "stat",
        }
    }
}

/// One telemetry event, borrowed from the call site.
pub struct Event<'a> {
    /// Microseconds since the process' first telemetry touch.
    pub ts_us: u64,
    pub kind: EventKind,
    /// Span path (`a/b/c`) or metric/event name.
    pub name: &'a str,
    pub fields: &'a [(&'a str, Value)],
}

impl Event<'_> {
    /// Render as one JSONL line (no trailing newline):
    /// `{"ts_us":12,"kind":"span","name":"sim/optical","dur_us":42.5}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_us\":");
        out.push_str(&self.ts_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        json::write_str(&mut out, self.name);
        for (k, v) in self.fields {
            out.push(',');
            json::write_str(&mut out, k);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Receives telemetry events as they are recorded.
pub trait Sink {
    fn emit(&mut self, event: &Event);
    fn flush(&mut self) {}
}

/// Human-readable sink: one aligned line per event on stderr.
#[derive(Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&mut self, event: &Event) {
        let mut line = String::with_capacity(96);
        line.push_str(&format!(
            "[{:>10.3}ms] {:<7} {}",
            event.ts_us as f64 / 1e3,
            event.kind.as_str(),
            event.name
        ));
        for (k, v) in event.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            v.write_human(&mut line);
        }
        eprintln!("{line}");
    }
}

/// Machine-readable sink: one JSON object per line into any writer.
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Consume the sink, returning the writer (used by tests to inspect
    /// what was written).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Open (create/truncate) `path` for JSONL output.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        // An unwritable sink should never take down the instrumented
        // program; drop the line instead.
        let _ = writeln!(self.writer, "{}", event.to_jsonl());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_line_shape() {
        let ev = Event {
            ts_us: 7,
            kind: EventKind::Event,
            name: "train_epoch",
            fields: &[
                ("epoch", Value::U64(3)),
                ("g_loss", Value::F64(1.25)),
                ("note", Value::Str("a\"b".into())),
            ],
        };
        assert_eq!(
            ev.to_jsonl(),
            "{\"ts_us\":7,\"kind\":\"event\",\"name\":\"train_epoch\",\"epoch\":3,\"g_loss\":1.25,\"note\":\"a\\\"b\"}"
        );
    }
}
