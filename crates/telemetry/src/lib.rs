//! Zero-dependency observability for the LithoGAN reproduction.
//!
//! The paper's headline result (Table 5) is a runtime comparison, so this
//! workspace needs trustworthy per-stage timing rather than ad-hoc
//! `Instant::now()` plumbing. `litho-telemetry` provides:
//!
//! * RAII [`Span`] scopes with thread-local nesting and wall-clock timing,
//! * a global registry of counters, gauges and log-scale histograms with
//!   p50/p95/p99 quantile extraction,
//! * pluggable [`Sink`]s — a human-readable stderr reporter and a
//!   machine-readable JSONL event stream — selected at runtime,
//! * a [`report`] summary table covering everything collected so far.
//!
//! Everything lives behind a single `AtomicBool`: when telemetry is disabled
//! (the default) every entry point is a relaxed load plus a branch and
//! performs no allocation, so instrumented hot paths cost ~nothing.
//!
//! ```
//! litho_telemetry::enable();
//! {
//!     let _outer = litho_telemetry::span("pipeline");
//!     let inner = litho_telemetry::span("optical");
//!     litho_telemetry::counter_add("clips", 1);
//!     inner.finish();
//! }
//! let snap = litho_telemetry::snapshot();
//! assert!(snap.span("pipeline/optical").is_some());
//! assert_eq!(snap.counter("clips"), Some(1));
//! litho_telemetry::reset();
//! ```

mod flight;
mod histogram;
mod registry;
mod report;
mod sink;
mod span;

pub use flight::{
    flight_arm, flight_armed, flight_disarm, flight_note_line, flight_snapshot,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use histogram::Histogram;
pub use registry::{HistogramSnapshot, Snapshot, SpanStatSnapshot};
pub use report::report_to_string;
pub use sink::{Event, EventKind, JsonlSink, Sink, StderrSink, Value};
pub use span::Span;

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use registry::Registry;

/// Process-wide telemetry state. A single instance lives in [`global`].
struct Global {
    enabled: AtomicBool,
    registry: Mutex<Registry>,
    sink: Mutex<Option<Box<dyn Sink + Send>>>,
    epoch: OnceLock<Instant>,
    run_id: Mutex<Option<String>>,
    /// Current sample id, or `-1` when outside any per-sample scope.
    sample_id: AtomicI64,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        enabled: AtomicBool::new(false),
        registry: Mutex::new(Registry::default()),
        sink: Mutex::new(None),
        epoch: OnceLock::new(),
        run_id: Mutex::new(None),
        sample_id: AtomicI64::new(-1),
    })
}

/// Microseconds since the first telemetry touch in this process.
fn ts_us() -> u64 {
    let epoch = *global().epoch.get_or_init(Instant::now);
    epoch.elapsed().as_micros() as u64
}

/// Turn collection on. Idempotent.
pub fn enable() {
    let g = global();
    g.epoch.get_or_init(Instant::now);
    g.enabled.store(true, Ordering::Release);
}

/// Turn collection off. Already-collected data is kept until [`reset`].
pub fn disable() {
    global().enabled.store(false, Ordering::Release);
}

/// The hot-path guard: one relaxed atomic load.
#[inline]
pub fn is_enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Install (or remove) the event sink. Events recorded while a sink is
/// installed are forwarded to it as they happen; aggregation into the
/// registry is unconditional while enabled.
pub fn set_sink(sink: Option<Box<dyn Sink + Send>>) {
    let mut slot = global().sink.lock().unwrap();
    if let Some(mut old) = slot.take() {
        old.flush();
    }
    *slot = sink;
}

/// Flush the installed sink, if any.
pub fn flush() {
    if let Some(sink) = global().sink.lock().unwrap().as_mut() {
        sink.flush();
    }
}

/// Disable collection, drop the sink and clear all aggregated data.
/// Intended for tests and for starting a fresh measurement window.
pub fn reset() {
    let g = global();
    g.enabled.store(false, Ordering::Release);
    set_sink(None);
    g.registry.lock().unwrap().clear();
    *g.run_id.lock().unwrap() = None;
    g.sample_id.store(-1, Ordering::Relaxed);
}

/// Attach (or clear) a run id. While set, every sink event carries a
/// `"run"` field, so a JSONL trace is attributable to its `runs/<id>/`
/// ledger directory even after files are moved around.
pub fn set_run_id(id: Option<&str>) {
    *global().run_id.lock().unwrap() = id.map(str::to_string);
}

/// Attach (or clear) the current sample id. While set, every sink event
/// carries a `"sample"` field; evaluation loops set it per test sample so
/// per-span timings can be joined against per-sample metric records.
pub fn set_sample_id(id: Option<u64>) {
    global()
        .sample_id
        .store(id.map(|v| v as i64).unwrap_or(-1), Ordering::Relaxed);
}

/// Start a [`Span`]. When telemetry is disabled this returns an inert span
/// without allocating; `&'static str` names avoid allocation entirely on
/// the caller side.
pub fn span<N: Into<std::borrow::Cow<'static, str>>>(name: N) -> Span {
    if !is_enabled() {
        return Span::noop();
    }
    Span::start(name.into())
}

/// Add `delta` to the named monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    global().registry.lock().unwrap().counter_add(name, delta);
    emit(EventKind::Counter, name, &[("delta", Value::U64(delta))]);
}

/// Set the named gauge to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    global().registry.lock().unwrap().gauge_set(name, value);
    emit(EventKind::Gauge, name, &[("value", Value::F64(value))]);
}

/// Record one observation into the named log-scale histogram.
pub fn observe(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    global().registry.lock().unwrap().observe(name, value);
}

/// Record a duration (in seconds) into the named histogram.
pub fn observe_duration(name: &str, d: Duration) {
    observe(name, d.as_secs_f64());
}

/// Record a structured event. Events are forwarded to the sink only; they
/// carry run metadata and per-epoch training statistics.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !is_enabled() {
        return;
    }
    emit(EventKind::Event, name, fields);
}

/// Record a model-health statistic record (per-layer activation/gradient
/// summary, update ratio, GAN signal). Stats are forwarded to the sink
/// only, under their own [`EventKind::Stat`] so trace consumers can
/// separate the high-volume health stream from timing data by kind.
pub fn stat(name: &str, fields: &[(&str, Value)]) {
    if !is_enabled() {
        return;
    }
    emit(EventKind::Stat, name, fields);
}

/// Emit a `run_meta` event describing the current process: binary name,
/// OS/arch, available parallelism, plus any caller-provided fields.
/// Bench binaries call this so every JSONL stream is self-describing.
pub fn emit_run_metadata(extra: &[(&str, Value)]) {
    if !is_enabled() {
        return;
    }
    let bin = std::env::args()
        .next()
        .map(|p| {
            std::path::Path::new(&p)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or(p)
        })
        .unwrap_or_else(|| "unknown".to_string());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let mut fields: Vec<(&str, Value)> = vec![
        ("bin", Value::Str(bin)),
        ("os", Value::Str(std::env::consts::OS.to_string())),
        ("arch", Value::Str(std::env::consts::ARCH.to_string())),
        ("threads", Value::U64(threads)),
    ];
    fields.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    emit(EventKind::Meta, "run_meta", &fields);
}

/// Internal: route one event to the installed sink (if any) and, when
/// the flight recorder is armed, into its ring — appending the ambient
/// run/sample ids when they are set.
pub(crate) fn emit(kind: EventKind, name: &str, fields: &[(&str, Value)]) {
    let g = global();
    let mut slot = g.sink.lock().unwrap();
    if slot.is_none() && !flight::flight_armed() {
        return;
    }
    let run = g.run_id.lock().unwrap().clone();
    let sample = g.sample_id.load(Ordering::Relaxed);
    let mut extended;
    let fields = if run.is_none() && sample < 0 {
        fields
    } else {
        extended = fields.to_vec();
        if let Some(run) = run {
            extended.push(("run", Value::Str(run)));
        }
        if sample >= 0 {
            extended.push(("sample", Value::U64(sample as u64)));
        }
        &extended
    };
    let event = Event {
        ts_us: ts_us(),
        kind,
        name,
        fields,
    };
    if let Some(sink) = slot.as_mut() {
        sink.emit(&event);
    }
    flight::flight_record(&event);
}

/// Internal: called by [`Span`] on completion. Caller annotations ride on
/// the close event; `flops` / `bytes` annotations additionally yield the
/// derived roofline fields (`gflops`, achieved GFLOP/s, and `ai`,
/// arithmetic intensity in FLOPs/byte).
pub(crate) fn record_span_with(
    path: &str,
    depth: usize,
    dur: Duration,
    extra: &[(&'static str, Value)],
) {
    if !is_enabled() {
        return;
    }
    global().registry.lock().unwrap().record_span(path, dur);
    if extra.is_empty() {
        emit(
            EventKind::Span,
            path,
            &[
                ("dur_us", Value::F64(dur.as_secs_f64() * 1e6)),
                ("depth", Value::U64(depth as u64)),
            ],
        );
        return;
    }
    let mut fields: Vec<(&str, Value)> = Vec::with_capacity(2 + extra.len() + 2);
    fields.push(("dur_us", Value::F64(dur.as_secs_f64() * 1e6)));
    fields.push(("depth", Value::U64(depth as u64)));
    fields.extend(extra.iter().cloned());
    let lookup = |key: &str| {
        extra.iter().find_map(|(k, v)| match v {
            Value::U64(n) if *k == key => Some(*n),
            _ => None,
        })
    };
    if let Some(flops) = lookup("flops") {
        let secs = dur.as_secs_f64();
        if secs > 0.0 {
            fields.push(("gflops", Value::F64(flops as f64 / secs / 1e9)));
        }
        if let Some(bytes) = lookup("bytes") {
            if bytes > 0 {
                fields.push(("ai", Value::F64(flops as f64 / bytes as f64)));
            }
        }
    }
    emit(EventKind::Span, path, &fields);
}

/// A point-in-time copy of the aggregated registry, for reports and tests.
pub fn snapshot() -> Snapshot {
    global().registry.lock().unwrap().snapshot()
}

/// Emit one `hist_summary` event per registered histogram to the sink.
///
/// [`observe`] aggregates into the registry only — individual samples
/// never reach the JSONL stream (a request-latency histogram would
/// otherwise dominate a long-running daemon's trace). Long-lived
/// processes call this once at shutdown so the final quantiles land in
/// `trace.jsonl` next to the run's manifest, making histograms as
/// durable as spans without the per-sample volume.
pub fn emit_histogram_summaries() {
    if !is_enabled() {
        return;
    }
    for (name, h) in snapshot().histograms {
        emit(
            EventKind::Event,
            "hist_summary",
            &[
                ("hist", Value::Str(name)),
                ("count", Value::U64(h.count)),
                ("sum", Value::F64(h.sum)),
                ("mean", Value::F64(h.mean)),
                ("min", Value::F64(h.min)),
                ("max", Value::F64(h.max)),
                ("p50", Value::F64(h.p50)),
                ("p95", Value::F64(h.p95)),
                ("p99", Value::F64(h.p99)),
            ],
        );
    }
}

/// Render the summary table (counters, gauges, histograms and the nested
/// span tree) as a string.
pub fn report() -> String {
    report_to_string(&snapshot())
}

/// Print [`report`] to stderr.
pub fn print_report() {
    eprintln!("{}", report());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_inert() {
        // Not enabled: nothing is recorded.
        counter_add("x", 1);
        observe("y", 1.0);
        let s = span("z");
        assert_eq!(s.finish(), Duration::ZERO);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }
}
