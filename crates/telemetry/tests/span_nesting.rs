//! Span nesting and ordering: paths aggregate parent/child structure and
//! the thread-local stack keeps concurrent threads independent.

#[test]
fn nested_spans_aggregate_under_slash_paths() {
    litho_telemetry::enable();
    {
        let _outer = litho_telemetry::span("nest_pipeline");
        {
            let _mid = litho_telemetry::span("optical");
            let _inner = litho_telemetry::span("fft");
        }
        let _sibling = litho_telemetry::span("resist");
    }
    let snap = litho_telemetry::snapshot();
    for path in [
        "nest_pipeline",
        "nest_pipeline/optical",
        "nest_pipeline/optical/fft",
        "nest_pipeline/resist",
    ] {
        let stat = snap.span(path).unwrap_or_else(|| panic!("missing span {path}"));
        assert_eq!(stat.count, 1, "{path}");
    }
    // A parent's total covers its children.
    let outer = snap.span("nest_pipeline").unwrap();
    let inner = snap.span("nest_pipeline/optical/fft").unwrap();
    assert!(outer.total >= inner.total);
}

#[test]
fn repeated_spans_accumulate_counts() {
    litho_telemetry::enable();
    for _ in 0..5 {
        let span = litho_telemetry::span("nest_repeat");
        assert!(span.is_active());
        span.finish();
    }
    let snap = litho_telemetry::snapshot();
    let stat = snap.span("nest_repeat").unwrap();
    assert_eq!(stat.count, 5);
    assert!(stat.p95 >= stat.p50);
}

#[test]
fn sibling_order_does_not_create_false_nesting() {
    litho_telemetry::enable();
    {
        let first = litho_telemetry::span("nest_a");
        first.finish();
        let second = litho_telemetry::span("nest_b");
        second.finish();
    }
    let snap = litho_telemetry::snapshot();
    assert!(snap.span("nest_a").is_some());
    assert!(snap.span("nest_b").is_some(), "b must be a root span");
    assert!(snap.span("nest_a/nest_b").is_none(), "b must not nest under finished a");
}

#[test]
fn threads_have_independent_span_stacks() {
    litho_telemetry::enable();
    let _outer = litho_telemetry::span("nest_main_thread");
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                let _s = litho_telemetry::span(format!("nest_worker_{t}"));
            });
        }
    });
    let snap = litho_telemetry::snapshot();
    for t in 0..4 {
        // Worker spans are roots: the main thread's open span is invisible
        // to other threads.
        assert!(snap.span(&format!("nest_worker_{t}")).is_some());
        assert!(snap.span(&format!("nest_main_thread/nest_worker_{t}")).is_none());
    }
}

#[test]
fn span_snapshot_reports_exact_extremes() {
    use std::time::Duration;
    litho_telemetry::enable();
    for sleep in [Duration::from_micros(200), Duration::from_millis(2)] {
        let span = litho_telemetry::span("nest_minmax");
        std::thread::sleep(sleep);
        span.finish();
    }
    let snap = litho_telemetry::snapshot();
    let stat = snap.span("nest_minmax").unwrap();
    assert_eq!(stat.count, 2);
    // min/max are the true recorded extremes, not log-bin floors.
    assert!(stat.min >= Duration::from_micros(200));
    assert!(stat.max >= Duration::from_millis(2));
    assert!(stat.min < stat.max);
    assert!(stat.max <= stat.total);
}

#[test]
fn drop_and_finish_record_exactly_once() {
    litho_telemetry::enable();
    {
        let span = litho_telemetry::span("nest_once");
        let dur = span.finish();
        assert!(dur > std::time::Duration::ZERO);
    }
    {
        let _span = litho_telemetry::span("nest_once"); // recorded on drop
    }
    let snap = litho_telemetry::snapshot();
    let stat = snap.span("nest_once").unwrap();
    assert_eq!(stat.count, 2);
}
