//! Shutdown-time histogram persistence: [`litho_telemetry::observe`]
//! aggregates into the registry only, so a long-running daemon calls
//! [`litho_telemetry::emit_histogram_summaries`] once at exit to land
//! the final quantiles in its JSONL trace. Single test — the sink slot
//! is global.

use std::io::Write;
use std::sync::{Arc, Mutex};

use litho_telemetry::JsonlSink;

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn histogram_summaries_reach_the_sink_only_on_request() {
    let buf = SharedBuf::default();
    litho_telemetry::set_sink(Some(Box::new(JsonlSink::new(buf.clone()))));
    litho_telemetry::enable();

    for i in 1..=100u64 {
        litho_telemetry::observe("http.request_s", i as f64 / 1000.0);
    }
    litho_telemetry::flush();
    assert!(
        buf.0.lock().unwrap().is_empty(),
        "observations alone must not reach the sink"
    );

    litho_telemetry::emit_histogram_summaries();
    litho_telemetry::flush();
    litho_telemetry::set_sink(None);
    litho_telemetry::reset();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "one summary per histogram:\n{text}");
    let line = lines[0];
    assert!(line.contains("\"kind\":\"event\""), "{line}");
    assert!(line.contains("\"name\":\"hist_summary\""), "{line}");
    assert!(line.contains("\"hist\":\"http.request_s\""), "{line}");
    assert!(line.contains("\"count\":100"), "{line}");
    assert!(line.contains("\"min\":0.001"), "{line}");
    assert!(line.contains("\"max\":0.1"), "{line}");
    for q in ["\"p50\":", "\"p95\":", "\"p99\":", "\"sum\":", "\"mean\":"] {
        assert!(line.contains(q), "missing {q}: {line}");
    }

    // Disabled: a no-op, not a panic.
    litho_telemetry::emit_histogram_summaries();
}
