//! Disabled-mode cost: with telemetry off, the instrumentation entry
//! points must not allocate. A counting global allocator makes the claim
//! checkable; counting is scoped to the measuring thread so the libtest
//! harness's own threads cannot perturb the result, and the test lives in
//! its own binary so nothing else flips the global enabled flag.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(Cell::get) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_does_not_allocate() {
    assert!(!litho_telemetry::is_enabled());
    // Warm up lazily-initialised global state outside the measured window.
    litho_telemetry::counter_add("warmup", 1);
    drop(litho_telemetry::span("warmup"));

    TRACKING.with(|t| t.set(true));
    for i in 0..10_000u64 {
        litho_telemetry::counter_add("disabled.counter", i);
        litho_telemetry::gauge_set("disabled.gauge", i as f64);
        litho_telemetry::observe("disabled.histogram", i as f64);
        litho_telemetry::observe_duration(
            "disabled.duration",
            std::time::Duration::from_nanos(i),
        );
        litho_telemetry::event("disabled.event", &[]);
        let span = litho_telemetry::span("disabled.span");
        assert!(!span.is_active());
        drop(span);
    }
    TRACKING.with(|t| t.set(false));
    let counted = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(counted, 0, "disabled telemetry must be allocation-free");

    // Nothing was recorded either.
    let snap = litho_telemetry::snapshot();
    assert!(snap.counter("disabled.counter").is_none());
    assert!(snap.span("disabled.span").is_none());
}
