//! Span annotations ride the close event, and `flops`/`bytes`
//! annotations yield derived roofline fields. Single test — the sink
//! slot is global.

use std::io::Write;
use std::sync::{Arc, Mutex};

use litho_telemetry::{JsonlSink, Value};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn annotations_and_derived_roofline_fields() {
    let buf = SharedBuf::default();
    litho_telemetry::set_sink(Some(Box::new(JsonlSink::new(buf.clone()))));
    litho_telemetry::enable();

    {
        let mut span = litho_telemetry::span("gemm[8x8x8]");
        span.annotate("flops", Value::U64(1024));
        span.annotate("bytes", Value::U64(512));
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    {
        // No annotations: close event keeps the legacy two-field shape.
        let _plain = litho_telemetry::span("plain");
    }
    {
        // Inert spans ignore annotations entirely.
        let mut inert = litho_telemetry::Span::inert();
        inert.annotate("flops", Value::U64(7));
        assert!(!inert.is_active());
    }

    litho_telemetry::flush();
    litho_telemetry::set_sink(None);
    litho_telemetry::reset();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");

    let annotated = lines[0];
    assert!(annotated.contains("\"name\":\"gemm[8x8x8]\""), "{annotated}");
    assert!(annotated.contains("\"flops\":1024"), "{annotated}");
    assert!(annotated.contains("\"bytes\":512"), "{annotated}");
    // ai = 1024 / 512; gflops is duration-dependent but must be present
    // and positive.
    assert!(annotated.contains("\"ai\":2"), "{annotated}");
    assert!(annotated.contains("\"gflops\":"), "{annotated}");

    let plain = lines[1];
    assert!(plain.contains("\"name\":\"plain\""), "{plain}");
    assert!(!plain.contains("gflops"), "{plain}");
}
