//! End-to-end JSONL stream shape: events recorded through the public API
//! come out of a [`JsonlSink`] as one well-formed JSON object per line
//! with the documented schema. Single test — the sink slot is global.

use std::io::Write;
use std::sync::{Arc, Mutex};

use litho_telemetry::{JsonlSink, Value};

/// `Vec<u8>` writer that stays readable after the sink takes ownership.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn stream_covers_all_event_kinds_with_valid_lines() {
    let buf = SharedBuf::default();
    litho_telemetry::set_sink(Some(Box::new(JsonlSink::new(buf.clone()))));
    litho_telemetry::enable();

    litho_telemetry::emit_run_metadata(&[("scale", Value::Str("test".into()))]);
    {
        let _outer = litho_telemetry::span("stream_pipeline");
        let _inner = litho_telemetry::span("stage");
    }
    litho_telemetry::counter_add("stream.clips", 3);
    litho_telemetry::gauge_set("stream.loss", 0.25);
    litho_telemetry::event(
        "train_epoch",
        &[
            ("epoch", Value::U64(1)),
            ("g_loss", Value::F64(1.5)),
            ("done", Value::Bool(false)),
            ("note", Value::Str("a \"quoted\" name".into())),
        ],
    );
    litho_telemetry::flush();
    litho_telemetry::set_sink(None);
    litho_telemetry::reset();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("stream is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "one line per event:\n{text}");

    // Every line is one `{...}` object with the common envelope fields.
    for line in &lines {
        assert!(line.starts_with("{\"ts_us\":"), "envelope: {line}");
        assert!(line.ends_with('}') && !line.contains('\n'));
        assert!(line.contains("\"kind\":"), "kind field: {line}");
        assert!(line.contains("\"name\":"), "name field: {line}");
    }

    assert!(lines[0].contains("\"kind\":\"meta\"") && lines[0].contains("\"name\":\"run_meta\""));
    assert!(lines[0].contains("\"scale\":\"test\"") && lines[0].contains("\"os\":"));

    // Spans close inner-first and carry duration + depth.
    assert!(lines[1].contains("\"name\":\"stream_pipeline/stage\""));
    assert!(lines[1].contains("\"kind\":\"span\"") && lines[1].contains("\"depth\":1"));
    assert!(lines[2].contains("\"name\":\"stream_pipeline\"") && lines[2].contains("\"depth\":0"));
    assert!(lines[2].contains("\"dur_us\":"));

    assert!(lines[3].contains("\"kind\":\"counter\"") && lines[3].contains("\"delta\":3"));
    assert!(lines[4].contains("\"kind\":\"gauge\"") && lines[4].contains("\"value\":0.25"));

    assert!(lines[5].contains("\"kind\":\"event\"") && lines[5].contains("\"name\":\"train_epoch\""));
    assert!(lines[5].contains("\"epoch\":1") && lines[5].contains("\"g_loss\":1.5"));
    assert!(lines[5].contains("\"done\":false"));
    assert!(lines[5].contains(r#""note":"a \"quoted\" name""#), "escaping: {}", lines[5]);

    // Timestamps are monotone non-decreasing.
    let ts: Vec<u64> = lines
        .iter()
        .map(|l| {
            l.trim_start_matches("{\"ts_us\":")
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");

    // Second phase (same test: the sink slot is global): with a run id and
    // sample id set, every event carries `run`, and `sample` while set.
    let buf = SharedBuf::default();
    litho_telemetry::set_sink(Some(Box::new(JsonlSink::new(buf.clone()))));
    litho_telemetry::enable();
    litho_telemetry::set_run_id(Some("train-1-2"));
    litho_telemetry::counter_add("stream.run_tagged", 1);
    litho_telemetry::set_sample_id(Some(4));
    litho_telemetry::event("per_sample", &[("x", Value::U64(9))]);
    litho_telemetry::set_sample_id(None);
    litho_telemetry::gauge_set("stream.after_sample", 1.0);
    litho_telemetry::flush();
    litho_telemetry::set_sink(None);
    litho_telemetry::reset();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("stream is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    for line in &lines {
        assert!(line.contains("\"run\":\"train-1-2\""), "run id: {line}");
    }
    assert!(!lines[0].contains("\"sample\":"), "{}", lines[0]);
    assert!(lines[1].contains("\"sample\":4"), "{}", lines[1]);
    assert!(!lines[2].contains("\"sample\":"), "sample id cleared: {}", lines[2]);
}
