//! Quantile accuracy of the log-scale histogram on known distributions.
//! The bucket layout (16 per decade) bounds relative quantile error at
//! roughly ±8% (geometric bucket midpoint), which these tests pin down.

use litho_telemetry::Histogram;

fn rel_err(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs() / truth
}

#[test]
fn quantiles_of_a_uniform_grid() {
    let mut h = Histogram::default();
    for i in 1..=10_000 {
        h.record(i as f64 / 100.0); // 0.01 .. 100.0
    }
    assert_eq!(h.count(), 10_000);
    assert!(rel_err(h.quantile(0.5), 50.0) < 0.10, "p50 {}", h.quantile(0.5));
    assert!(rel_err(h.p95(), 95.0) < 0.10, "p95 {}", h.p95());
    assert!(rel_err(h.p99(), 99.0) < 0.10, "p99 {}", h.p99());
    // Exact extremes are tracked outside the buckets.
    assert_eq!(h.min(), 0.01);
    assert_eq!(h.max(), 100.0);
    assert!(rel_err(h.mean(), 50.005) < 1e-9);
}

#[test]
fn constant_distribution_collapses_all_quantiles() {
    let mut h = Histogram::default();
    for _ in 0..1000 {
        h.record(3.5e-3);
    }
    for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
        // Clamped to the exact observed min/max.
        assert!(rel_err(h.quantile(q), 3.5e-3) < 1e-9, "q{q} {}", h.quantile(q));
    }
}

#[test]
fn heavy_tail_separates_p50_from_p99() {
    let mut h = Histogram::default();
    // 49 fast operations for every slow one, three decades apart: the
    // slow 2% tail owns the p99 rank outright.
    for i in 0..10_000 {
        h.record(if i % 50 == 49 { 1.0 } else { 1e-3 });
    }
    assert!(rel_err(h.p50(), 1e-3) < 0.10);
    assert!(rel_err(h.p99(), 1.0) < 0.10);
    assert!(h.p99() / h.p50() > 500.0);
}

#[test]
fn out_of_range_values_clamp_but_count() {
    let mut h = Histogram::default();
    h.record(0.0); // below MIN_VALUE: lands in the first bucket
    h.record(-5.0); // negative durations cannot happen but must not panic
    h.record(1e30); // beyond the top bucket
    assert_eq!(h.count(), 3);
    assert_eq!(h.max(), 1e30);
    assert!(h.quantile(0.0) <= h.quantile(1.0));
}
