//! A small self-contained microbenchmark harness.
//!
//! The sanctioned dependency list has no criterion, so the `benches/`
//! targets (all `harness = false`) use this instead: warm-up, iteration
//! calibration against a minimum sample duration, and a median/mean/min
//! summary over a fixed number of samples. Every result is also recorded
//! in the telemetry registry (`bench.<name>` histograms), so running a
//! bench with `--metrics-out` produces a machine-readable JSONL stream.
//!
//! With `--json-out=FILE`, [`MicroBench::flush_json`] merges the
//! best-observed (minimum) per-iteration seconds of every bench into FILE
//! in the [`litho_ledger::Baseline`] format — several bench binaries can
//! accumulate into one `BENCH_KERNELS.json`, which `perf_gate` then
//! compares against the committed baseline. The minimum, not the median,
//! is recorded: scheduler and frequency noise only ever add time, so
//! best-of-N is the low-variance estimator a regression gate needs on a
//! shared CI host.

use std::cell::RefCell;
use std::hint::black_box;
use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use litho_ledger::Baseline;
use litho_tensor::profile::KernelCost;

/// Suffix of derived achieved-GFLOP/s metrics written by
/// [`MicroBench::run_costed`]. Rate metrics merge by *maximum* in
/// [`MicroBench::flush_json`] and gate as higher-is-better in `perf_gate`.
pub const GFLOPS_SUFFIX: &str = "_gflops";

/// Suffix of derived worker-pool-utilization metrics (busy time over
/// wall time across all pool threads during the bench). Higher is better.
pub const UTIL_SUFFIX: &str = "_util";

/// Suffix of derived arithmetic-intensity metrics (FLOPs per byte). A
/// shape constant, recorded for roofline context and never gated.
pub const AI_SUFFIX: &str = "_ai";

/// Synthetic metric embedded in every `--json-out` file: the time of a
/// fixed integer workload measured at flush time. `perf_gate` divides the
/// current file's value by the baseline's to estimate how fast this host
/// is running *right now* relative to when the baseline was captured, and
/// normalizes every bench time by that ratio — cancelling CPU frequency
/// scaling and shared-host throttling, which on a busy CI box can swing
/// absolute times by far more than any sane gate tolerance. The workload
/// is hardcoded here, so code changes cannot shift it.
pub const CALIBRATION_METRIC: &str = "_calibration";

/// Best-of-3 wall time of the fixed calibration spin (a 20M-step
/// xorshift64 fold — CPU-bound, cache-resident, allocation-free).
fn calibration_secs() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut acc = 0u64;
        for _ in 0..20_000_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc = acc.wrapping_add(x);
        }
        black_box(acc);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Summary statistics of one benchmark, all per-iteration.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name.
    pub name: String,
    /// Iterations batched into each timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean over all samples.
    pub mean: Duration,
    /// Population standard deviation over samples.
    pub stddev: Duration,
}

/// Harness configuration: sample count and the minimum wall-clock time
/// one timed sample should cover (fast closures are batched until they
/// do, so timer granularity never dominates).
#[derive(Debug, Clone)]
pub struct MicroBench {
    samples: usize,
    min_sample: Duration,
    json_out: Option<PathBuf>,
    /// Provenance name this binary claims its metrics under in the
    /// merged file's `sources` map (see [`MicroBench::flush_json`]).
    source: Option<String>,
    /// `(name, min seconds/iter)` of every completed bench, drained by
    /// [`MicroBench::flush_json`].
    results: RefCell<Vec<(String, f64)>>,
}

impl Default for MicroBench {
    fn default() -> Self {
        MicroBench {
            samples: 15,
            min_sample: Duration::from_millis(20),
            json_out: None,
            source: None,
            results: RefCell::new(Vec::new()),
        }
    }
}

/// The bench binary's provenance name: the executable file stem with
/// cargo's trailing `-<16 hex>` disambiguation hash stripped
/// (`nn_kernels-1d38f2a6c90b74e5` → `nn_kernels`).
fn source_from_exe() -> Option<String> {
    let exe = std::env::current_exe().ok()?;
    let stem = exe.file_stem()?.to_str()?.to_string();
    match stem.rsplit_once('-') {
        Some((name, hash))
            if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            Some(name.to_string())
        }
        _ => Some(stem),
    }
}

impl MicroBench {
    /// Default configuration overridden by `--samples=N`,
    /// `--min-sample-ms=N` and `--json-out=FILE` process arguments
    /// (`--quick` halves samples and the minimum sample duration).
    pub fn from_args() -> Self {
        let mut mb = MicroBench {
            source: source_from_exe(),
            ..MicroBench::default()
        };
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("--samples=") {
                mb.samples = v.parse().expect("--samples=N");
            } else if let Some(v) = arg.strip_prefix("--min-sample-ms=") {
                mb.min_sample = Duration::from_millis(v.parse().expect("--min-sample-ms=N"));
            } else if let Some(v) = arg.strip_prefix("--json-out=") {
                mb.json_out = Some(PathBuf::from(v));
            } else if arg == "--quick" {
                mb.samples = (mb.samples / 2).max(5);
                mb.min_sample /= 2;
            }
        }
        mb
    }

    /// Explicit `--json-out` destination (tests; CLIs use [`Self::from_args`]).
    pub fn with_json_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.json_out = Some(path.into());
        self
    }

    /// Explicit provenance name (tests; [`Self::from_args`] derives it
    /// from the executable name).
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Merges this process's best-observed times into the `--json-out`
    /// file (read-merge-write, so `nn_kernels` and `pipeline` can share
    /// one `BENCH_KERNELS.json`); an existing entry only improves, never
    /// worsens. A no-op without `--json-out`.
    ///
    /// Each binary also *claims* the metric names it emitted under its
    /// provenance name in the file's `sources` map, and any key it
    /// claimed on a previous pass but no longer emits — a renamed or
    /// deleted bench — is dropped from the merged file (unless another
    /// binary also claims it). Without that, read-merge-write accretes
    /// stale rows forever and the perf gate ends up comparing against
    /// benches that no longer exist. `_calibration` is shared by every
    /// binary and is never claimed or dropped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and malformed existing files.
    pub fn flush_json(&self) -> io::Result<()> {
        let Some(path) = &self.json_out else {
            return Ok(());
        };
        let mut base = match std::fs::read_to_string(path) {
            Ok(text) => Baseline::from_json_str(&text)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Baseline {
                // Default tolerance of the kernel perf gate; kept on merge.
                tol_pct: 15.0,
                run_id: None,
                metrics: Vec::new(),
                sources: Vec::new(),
            },
            Err(e) => return Err(e),
        };
        if let Some(source) = &self.source {
            let emitted: Vec<String> =
                self.results.borrow().iter().map(|(k, _)| k.clone()).collect();
            let stale: Vec<String> = base
                .sources
                .iter()
                .find(|(s, _)| s == source)
                .map(|(_, claimed)| {
                    claimed
                        .iter()
                        .filter(|k| {
                            !emitted.iter().any(|e| e == *k)
                                // Another binary still emits it — keep.
                                && !base
                                    .sources
                                    .iter()
                                    .any(|(s, names)| s != source && names.contains(k))
                        })
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
            base.metrics.retain(|(k, _)| !stale.contains(k));
            match base.sources.iter_mut().find(|(s, _)| s == source) {
                Some(slot) => slot.1 = emitted,
                None => base.sources.push((source.clone(), emitted)),
            }
        }
        let mut entries = vec![(CALIBRATION_METRIC.to_string(), calibration_secs())];
        entries.extend(self.results.borrow().iter().cloned());
        for (name, best) in entries {
            match base.metrics.iter_mut().find(|(k, _)| *k == name) {
                Some(slot) => slot.1 = merge_metric(&name, slot.1, best),
                None => base.metrics.push((name, best)),
            }
        }
        std::fs::write(path, base.to_json_string())
    }

    /// Times `f`, prints one aligned result line and records the
    /// per-iteration sample durations as a `bench.<name>` histogram.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) -> BenchStats {
        // Warm-up doubles as calibration: batch enough iterations that
        // one sample spans at least `min_sample`.
        let t = Instant::now();
        black_box(f());
        let first = t.elapsed().max(Duration::from_nanos(1));
        let iters = (self.min_sample.as_secs_f64() / first.as_secs_f64())
            .ceil()
            .clamp(1.0, 1e6) as u64;

        let mut secs: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            secs.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        secs.sort_by(f64::total_cmp);
        let n = secs.len();
        let mean = secs.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            secs[n / 2]
        } else {
            (secs[n / 2 - 1] + secs[n / 2]) / 2.0
        };
        let var = secs.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;

        if litho_telemetry::is_enabled() {
            for &s in &secs {
                litho_telemetry::observe(&format!("bench.{name}"), s);
            }
        }
        self.results.borrow_mut().push((name.to_string(), secs[0]));

        let stats = BenchStats {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: n,
            min: Duration::from_secs_f64(secs[0]),
            median: Duration::from_secs_f64(median),
            mean: Duration::from_secs_f64(mean),
            stddev: Duration::from_secs_f64(var.sqrt()),
        };
        println!(
            "{:<32} {:>10}/iter  (min {}, mean {} ± {}, {}×{} iters)",
            stats.name,
            fmt_duration(stats.median),
            fmt_duration(stats.min),
            fmt_duration(stats.mean),
            fmt_duration(stats.stddev),
            stats.samples,
            stats.iters_per_sample,
        );
        stats
    }

    /// Times `f` like [`Self::run`] and derives roofline companion
    /// metrics from the static `cost` of one iteration: `<name>_gflops`
    /// (achieved GFLOP/s at the best-observed time), `<name>_ai`
    /// (arithmetic intensity — a shape constant, recorded for context)
    /// and `<name>_util` (worker-pool utilization over the timed region,
    /// when the pool did any work). The companions ride into `--json-out`
    /// next to the time; rate metrics merge by maximum and gate as
    /// higher-is-better in `perf_gate`.
    pub fn run_costed<R>(&self, name: &str, cost: KernelCost, f: impl FnMut() -> R) -> BenchStats {
        litho_tensor::pool::set_profiling(true);
        let base = litho_tensor::pool::stats();
        let stats = self.run(name, f);
        let pool = litho_tensor::pool::stats().delta_since(&base);
        let best = stats.min.as_secs_f64();
        let mut line = String::new();
        let mut results = self.results.borrow_mut();
        if cost.flops > 0 {
            let gflops = cost.gflops(best);
            results.push((format!("{name}{GFLOPS_SUFFIX}"), gflops));
            line.push_str(&format!("{gflops:.2} GFLOP/s"));
        }
        if cost.bytes > 0 {
            let ai = cost.arithmetic_intensity();
            results.push((format!("{name}{AI_SUFFIX}"), ai));
            line.push_str(&format!(
                "{}AI {ai:.2} ({})",
                if line.is_empty() { "" } else { ", " },
                cost.bound().as_str()
            ));
        }
        if let Some(util) = pool.utilization() {
            results.push((format!("{name}{UTIL_SUFFIX}"), util));
            line.push_str(&format!(
                "{}pool {:.0}%",
                if line.is_empty() { "" } else { ", " },
                util * 100.0
            ));
        }
        if !line.is_empty() {
            println!("{:<32}   {line}", "");
        }
        stats
    }
}

/// Per-metric merge policy when several passes accumulate into one
/// `--json-out` file: times keep the minimum (scheduler and frequency
/// noise only ever add time), rate metrics (`_gflops`, `_util`) keep the
/// maximum for the same reason, and `_ai` — a shape constant — takes the
/// latest value so a cost-model fix propagates.
fn merge_metric(name: &str, old: f64, new: f64) -> f64 {
    if name.ends_with(GFLOPS_SUFFIX) || name.ends_with(UTIL_SUFFIX) {
        old.max(new)
    } else if name.ends_with(AI_SUFFIX) {
        new
    } else {
        old.min(new)
    }
}

/// Formats a duration with an auto-selected unit.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_reports_sane_statistics() {
        let mb = MicroBench {
            samples: 7,
            min_sample: Duration::from_micros(200),
            ..MicroBench::default()
        };
        let mut count = 0u64;
        let stats = mb.run("spin", || {
            count += 1;
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        assert_eq!(stats.samples, 7);
        assert!(stats.iters_per_sample >= 1);
        // Warm-up + samples×iters calls happened.
        assert_eq!(count, 1 + 7 * stats.iters_per_sample);
        assert!(stats.min <= stats.median && stats.median <= stats.mean * 2);
    }

    #[test]
    fn flush_json_min_merges_existing_entries() {
        let path = std::env::temp_dir().join(format!(
            "litho_bench_minmerge_{}.json",
            std::process::id()
        ));
        // Pre-seed an unbeatable time: a real measurement can never go
        // lower, so surviving the merge proves min-merge semantics.
        std::fs::write(&path, r#"{"tol_pct":15,"metrics":{"spin":0.0}}"#).unwrap();
        let mb = MicroBench {
            samples: 3,
            min_sample: Duration::from_micros(50),
            ..MicroBench::default()
        }
        .with_json_out(&path);
        mb.run("spin", || black_box((0..64u64).sum::<u64>()));
        mb.flush_json().unwrap();
        let merged =
            Baseline::from_json_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        let get = |k: &str| merged.metrics.iter().find(|(m, _)| m == k).map(|(_, v)| *v);
        assert_eq!(get("spin"), Some(0.0), "existing faster entry must win");
        assert!(get(CALIBRATION_METRIC).unwrap() > 0.0, "calibration added");
    }

    #[test]
    fn flush_json_drops_stale_keys_of_its_own_source_only() {
        let path = std::env::temp_dir().join(format!(
            "litho_bench_staledrop_{}.json",
            std::process::id()
        ));
        // A previous pass of `kern` emitted `old_bench` (since renamed)
        // and `spin`; `other` still claims `shared`. `_calibration` is
        // never claimed by anyone.
        std::fs::write(
            &path,
            concat!(
                r#"{"tol_pct":15,"metrics":{"old_bench":1.0,"spin":9.0,"shared":2.0,"_calibration":0.5},"#,
                r#""sources":{"kern":["old_bench","spin"],"other":["shared"]}}"#
            ),
        )
        .unwrap();
        let mb = MicroBench {
            samples: 3,
            min_sample: Duration::from_micros(50),
            ..MicroBench::default()
        }
        .with_json_out(&path)
        .with_source("kern");
        mb.run("spin", || black_box((0..64u64).sum::<u64>()));
        mb.flush_json().unwrap();
        let merged =
            Baseline::from_json_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        let get = |k: &str| merged.metrics.iter().find(|(m, _)| m == k).map(|(_, v)| *v);
        assert_eq!(get("old_bench"), None, "stale own key dropped");
        assert!(get("spin").is_some_and(|v| v < 9.0), "re-emitted key min-merged");
        assert_eq!(get("shared"), Some(2.0), "other binary's row untouched");
        assert!(get(CALIBRATION_METRIC).is_some(), "calibration never dropped");
        let kern = merged.sources.iter().find(|(s, _)| s == "kern").unwrap();
        assert_eq!(kern.1, vec!["spin".to_string()], "claims updated");
        assert!(merged.sources.iter().any(|(s, _)| s == "other"));
    }

    #[test]
    fn source_name_strips_cargo_hash() {
        // The test binary itself is `microbench-<hash>` — whatever the
        // stem, the derived name must not keep a 16-hex-digit suffix.
        let src = source_from_exe().unwrap();
        assert!(!src.is_empty());
        if let Some((_, tail)) = src.rsplit_once('-') {
            assert!(!(tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit())));
        }
    }

    #[test]
    fn merge_metric_is_direction_aware() {
        // Times: min wins.
        assert_eq!(merge_metric("conv", 1.0, 2.0), 1.0);
        assert_eq!(merge_metric("conv", 2.0, 1.0), 1.0);
        // Rates: max wins.
        assert_eq!(merge_metric("conv_gflops", 10.0, 12.0), 12.0);
        assert_eq!(merge_metric("conv_gflops", 12.0, 10.0), 12.0);
        assert_eq!(merge_metric("conv_util", 0.5, 0.8), 0.8);
        // Shape constants: latest wins, even when smaller.
        assert_eq!(merge_metric("conv_ai", 32.0, 16.0), 16.0);
    }

    #[test]
    fn run_costed_records_roofline_companions() {
        let mb = MicroBench {
            samples: 3,
            min_sample: Duration::from_micros(50),
            ..MicroBench::default()
        };
        mb.run_costed("spin", KernelCost::gemm(64, 64, 64), || {
            // black_box the bound too: a constant range const-folds in
            // release and the whole loop can time at 0 ns.
            black_box((0..black_box(4096u64)).sum::<u64>())
        });
        let results = mb.results.borrow();
        let get = |k: &str| results.iter().find(|(m, _)| m == k).map(|(_, v)| *v);
        assert!(get("spin").is_some());
        assert!(get("spin_gflops").unwrap() > 0.0);
        let ai = KernelCost::gemm(64, 64, 64).arithmetic_intensity();
        assert!((get("spin_ai").unwrap() - ai).abs() < 1e-12);
        // `spin_util` is absent unless a concurrent test drove the global
        // pool during the bench window, so it is deliberately unasserted.
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.000 µs");
        assert_eq!(fmt_duration(Duration::from_nanos(90)), "90.0 ns");
    }
}
