//! A small self-contained microbenchmark harness.
//!
//! The sanctioned dependency list has no criterion, so the `benches/`
//! targets (all `harness = false`) use this instead: warm-up, iteration
//! calibration against a minimum sample duration, and a median/mean/min
//! summary over a fixed number of samples. Every result is also recorded
//! in the telemetry registry (`bench.<name>` histograms), so running a
//! bench with `--metrics-out` produces a machine-readable JSONL stream.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Summary statistics of one benchmark, all per-iteration.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name.
    pub name: String,
    /// Iterations batched into each timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean over all samples.
    pub mean: Duration,
    /// Population standard deviation over samples.
    pub stddev: Duration,
}

/// Harness configuration: sample count and the minimum wall-clock time
/// one timed sample should cover (fast closures are batched until they
/// do, so timer granularity never dominates).
#[derive(Debug, Clone)]
pub struct MicroBench {
    samples: usize,
    min_sample: Duration,
}

impl Default for MicroBench {
    fn default() -> Self {
        MicroBench {
            samples: 15,
            min_sample: Duration::from_millis(20),
        }
    }
}

impl MicroBench {
    /// Default configuration overridden by `--samples=N` and
    /// `--min-sample-ms=N` process arguments (`--quick` halves both).
    pub fn from_args() -> Self {
        let mut mb = MicroBench::default();
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("--samples=") {
                mb.samples = v.parse().expect("--samples=N");
            } else if let Some(v) = arg.strip_prefix("--min-sample-ms=") {
                mb.min_sample = Duration::from_millis(v.parse().expect("--min-sample-ms=N"));
            } else if arg == "--quick" {
                mb.samples = (mb.samples / 2).max(5);
                mb.min_sample /= 2;
            }
        }
        mb
    }

    /// Times `f`, prints one aligned result line and records the
    /// per-iteration sample durations as a `bench.<name>` histogram.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) -> BenchStats {
        // Warm-up doubles as calibration: batch enough iterations that
        // one sample spans at least `min_sample`.
        let t = Instant::now();
        black_box(f());
        let first = t.elapsed().max(Duration::from_nanos(1));
        let iters = (self.min_sample.as_secs_f64() / first.as_secs_f64())
            .ceil()
            .clamp(1.0, 1e6) as u64;

        let mut secs: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            secs.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        secs.sort_by(f64::total_cmp);
        let n = secs.len();
        let mean = secs.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            secs[n / 2]
        } else {
            (secs[n / 2 - 1] + secs[n / 2]) / 2.0
        };
        let var = secs.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;

        if litho_telemetry::is_enabled() {
            for &s in &secs {
                litho_telemetry::observe(&format!("bench.{name}"), s);
            }
        }

        let stats = BenchStats {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: n,
            min: Duration::from_secs_f64(secs[0]),
            median: Duration::from_secs_f64(median),
            mean: Duration::from_secs_f64(mean),
            stddev: Duration::from_secs_f64(var.sqrt()),
        };
        println!(
            "{:<32} {:>10}/iter  (min {}, mean {} ± {}, {}×{} iters)",
            stats.name,
            fmt_duration(stats.median),
            fmt_duration(stats.min),
            fmt_duration(stats.mean),
            fmt_duration(stats.stddev),
            stats.samples,
            stats.iters_per_sample,
        );
        stats
    }
}

/// Formats a duration with an auto-selected unit.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_reports_sane_statistics() {
        let mb = MicroBench {
            samples: 7,
            min_sample: Duration::from_micros(200),
        };
        let mut count = 0u64;
        let stats = mb.run("spin", || {
            count += 1;
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        assert_eq!(stats.samples, 7);
        assert!(stats.iters_per_sample >= 1);
        // Warm-up + samples×iters calls happened.
        assert_eq!(count, 1 + 7 * stats.iters_per_sample);
        assert!(stats.min <= stats.median && stats.median <= stats.mean * 2);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.000 µs");
        assert_eq!(fmt_duration(Duration::from_nanos(90)), "90.0 ns");
    }
}
