//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §4 for the index). They share:
//!
//! * [`Scale`] — the experiment scale (clip count, image size, epochs,
//!   seed repetitions), parsed from CLI flags: `--quick` for smoke runs,
//!   `--paper` for the full published scale (CPU-days; see DESIGN.md's
//!   substitution table), default otherwise.
//! * [`dataset`] — cached dataset generation per node.
//! * [`train_all`] / [`Trained`] — the three models of Table 3 (Ref \[12\]
//!   baseline, CGAN, LithoGAN) trained on the same split.
//! * [`evaluate`] — [`MetricAccumulator`]-based scoring of a method.

pub mod microbench;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use litho_dataset::{generate, load_dataset, save_dataset, Dataset, DatasetConfig, Sample};
use litho_ledger::{fingerprint_file, DatasetInfo, RunLedger};
use litho_metrics::{MetricAccumulator, MetricSummary};
use litho_sim::ProcessConfig;
use litho_tensor::{Result, Tensor};
use lithogan::{Cgan, LithoGan, NetConfig, ThresholdBaseline, TrainConfig, TrainPair};

/// A benchmark node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The 10 nm-node dataset (982 clips in the paper).
    N10,
    /// The 7 nm-node dataset (979 clips in the paper).
    N7,
}

impl Node {
    /// Both nodes, in paper order.
    pub const ALL: [Node; 2] = [Node::N10, Node::N7];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Node::N10 => "N10",
            Node::N7 => "N7",
        }
    }

    /// Process configuration.
    pub fn process(self) -> ProcessConfig {
        match self {
            Node::N10 => ProcessConfig::n10(),
            Node::N7 => ProcessConfig::n7(),
        }
    }

    /// Clip count used in the paper.
    pub fn paper_clip_count(self) -> usize {
        match self {
            Node::N10 => 982,
            Node::N7 => 979,
        }
    }
}

/// Experiment scale. The paper's absolute scale (256 × 256, 80 epochs,
/// 982 clips, TITAN Xp) is out of reach for a pure-CPU Rust stack, so the
/// default reproduces the experiment *shapes* at reduced resolution; the
/// `--paper` flag constructs the full-scale configuration for users with
/// the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Human-readable label printed in reports.
    pub label: String,
    /// Clips per node (`None` = the paper's count).
    pub clip_count: Option<usize>,
    /// Image resolution (mask and golden windows).
    pub image_size: usize,
    /// Training epochs for every model.
    pub epochs: usize,
    /// Independent seeds to average over (paper: 5).
    pub seeds: usize,
}

impl Scale {
    /// Smoke-test scale: a few minutes end to end. 64 px is the minimum
    /// resolution at which the mask-write-jitter centre signal survives
    /// golden-window quantisation (2 nm/px), so the dual-learning
    /// comparison stays meaningful even on quick runs.
    pub fn quick() -> Self {
        Scale {
            label: "quick".into(),
            clip_count: Some(60),
            image_size: 64,
            epochs: 8,
            seeds: 1,
        }
    }

    /// Default scale: minutes-per-experiment on a multicore CPU.
    pub fn standard() -> Self {
        Scale {
            label: "standard".into(),
            clip_count: Some(140),
            image_size: 64,
            epochs: 10,
            seeds: 1,
        }
    }

    /// The paper's published scale (very slow on CPU).
    pub fn paper() -> Self {
        Scale {
            label: "paper".into(),
            clip_count: None,
            image_size: 256,
            epochs: 80,
            seeds: 5,
        }
    }

    /// Parses `--quick` / `--paper` / `--seeds=N` / `--epochs=N` /
    /// `--clips=N` from the process arguments; default is
    /// [`Scale::standard`]. Also opens a run ledger under `runs/` (opt
    /// out with `--no-run`, relocate with `--runs-root=DIR`) and honours
    /// the observability flags (`--trace`, `--metrics-out FILE`) via
    /// [`init_telemetry_from_args`], so every experiment binary gets them
    /// for free — pair with a [`finish_telemetry`] call at the end of
    /// `main`.
    pub fn from_args() -> Self {
        let mut scale = Scale::standard();
        let mut runs_root = "runs".to_string();
        let mut no_run = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => scale = Scale::quick(),
                "--paper" => scale = Scale::paper(),
                "--no-run" => no_run = true,
                other => {
                    if let Some(v) = other.strip_prefix("--seeds=") {
                        scale.seeds = v.parse().expect("--seeds=N");
                    } else if let Some(v) = other.strip_prefix("--epochs=") {
                        scale.epochs = v.parse().expect("--epochs=N");
                    } else if let Some(v) = other.strip_prefix("--clips=") {
                        scale.clip_count = Some(v.parse().expect("--clips=N"));
                    } else if let Some(v) = other.strip_prefix("--runs-root=") {
                        runs_root = v.to_string();
                    }
                }
            }
        }
        if !no_run {
            open_run_ledger(&runs_root, &scale);
        }
        init_telemetry_from_args(&[("scale", litho_telemetry::Value::Str(scale.label.clone()))]);
        scale
    }

    /// Dataset configuration for a node at this scale.
    pub fn dataset_config(&self, node: Node) -> DatasetConfig {
        let count = self.clip_count.unwrap_or_else(|| node.paper_clip_count());
        DatasetConfig::scaled(node.process(), count, self.image_size)
    }

    /// Network configuration at this scale.
    pub fn net_config(&self) -> NetConfig {
        if self.image_size == 256 {
            NetConfig::paper()
        } else {
            NetConfig::scaled(self.image_size)
        }
    }

    /// Training configuration at this scale, for seed repetition `seed`.
    pub fn train_config(&self, seed: u64) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            seed,
            ..TrainConfig::paper()
        }
    }
}

static TRACE_REQUESTED: AtomicBool = AtomicBool::new(false);
static RUN_LEDGER: Mutex<Option<RunLedger>> = Mutex::new(None);

/// The experiment's run ledger, opened by [`Scale::from_args`] (absent
/// under `--no-run` or if creation failed). Binaries may lock it to
/// attach dataset identity or append per-sample records.
pub fn run_ledger() -> &'static Mutex<Option<RunLedger>> {
    &RUN_LEDGER
}

/// Opens the run ledger for this bench invocation: manifest under
/// `<root>/<bin>-<unix>-<pid>/` with the scale as config. Failure is
/// non-fatal (benches still run without a ledger).
fn open_run_ledger(root: &str, scale: &Scale) {
    let bin = std::env::args()
        .next()
        .as_deref()
        .map(Path::new)
        .and_then(Path::file_stem)
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "bench".to_string());
    let config = vec![
        ("scale".to_string(), scale.label.clone()),
        (
            "clips".to_string(),
            scale
                .clip_count
                .map(|c| c.to_string())
                .unwrap_or_else(|| "paper".to_string()),
        ),
        ("size".to_string(), scale.image_size.to_string()),
        ("epochs".to_string(), scale.epochs.to_string()),
        ("seeds".to_string(), scale.seeds.to_string()),
    ];
    match RunLedger::create(Path::new(root), &bin, None, config, None) {
        Ok(ledger) => {
            eprintln!("[run] {}", ledger.dir().display());
            *RUN_LEDGER.lock().unwrap() = Some(ledger);
        }
        Err(e) => eprintln!("[run] ledger disabled: {e}"),
    }
}

/// Enables telemetry when `--trace` / `--metrics-out FILE` appear in the
/// process arguments or a run ledger is active, wiring a JSONL sink
/// (`--metrics-out` path, else the run's `trace.jsonl`), and emits the
/// run-metadata event (binary name, platform, thread count, `extra`).
/// A no-op when neither flags nor ledger are present.
pub fn init_telemetry_from_args(extra: &[(&str, litho_telemetry::Value)]) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    let metrics_out = args
        .windows(2)
        .find(|w| w[0] == "--metrics-out")
        .map(|w| w[1].clone());
    let mut guard = RUN_LEDGER.lock().unwrap();
    if !trace && metrics_out.is_none() && guard.is_none() {
        return;
    }
    let sink_path = metrics_out
        .clone()
        .map(PathBuf::from)
        .or_else(|| guard.as_ref().map(RunLedger::default_trace_path));
    if let Some(path) = sink_path {
        match litho_telemetry::JsonlSink::create(&path) {
            Ok(sink) => litho_telemetry::set_sink(Some(Box::new(sink))),
            Err(e) => eprintln!("[telemetry] cannot open {}: {e}", path.display()),
        }
    }
    if let Some(ledger) = guard.as_mut() {
        // An explicit --metrics-out path lives outside the run dir;
        // record it as given so `report` still finds the stream.
        let trace_path = metrics_out.unwrap_or_else(|| "trace.jsonl".to_string());
        if let Err(e) = ledger.set_trace_path(&trace_path) {
            eprintln!("[run] cannot record trace path: {e}");
        }
        litho_telemetry::set_run_id(Some(ledger.run_id()));
    }
    drop(guard);
    TRACE_REQUESTED.store(trace, Ordering::Relaxed);
    litho_telemetry::enable();
    litho_telemetry::emit_run_metadata(extra);
}

/// Flushes telemetry sinks, finalizes the run ledger (status `ok`) and,
/// when `--trace` was given, prints the span/metric report to stderr.
/// Call at the end of `main`.
pub fn finish_telemetry() {
    litho_telemetry::flush();
    if let Some(ledger) = RUN_LEDGER.lock().unwrap().as_mut() {
        if let Err(e) = ledger.finalize(true) {
            eprintln!("[run] cannot finalize ledger: {e}");
        }
    }
    if litho_telemetry::is_enabled() && TRACE_REQUESTED.load(Ordering::Relaxed) {
        litho_telemetry::print_report();
    }
}

/// Directory for cached datasets and experiment outputs.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiment output dir");
    dir
}

/// Generates (or loads from cache) the dataset for a node at a scale.
///
/// # Errors
///
/// Propagates generation or I/O errors.
pub fn dataset(node: Node, scale: &Scale) -> Result<Dataset> {
    let config = scale.dataset_config(node);
    let cache = out_dir().join(format!(
        "{}_{}clips_{}px_seed{}.lgd",
        node.name(),
        config.clip_count,
        config.image_size,
        config.seed
    ));
    if cache.exists() {
        if let Ok(ds) = load_dataset(&cache) {
            if ds.config == config {
                attach_dataset_to_ledger(&cache, &ds);
                return Ok(ds);
            }
        }
    }
    let t0 = std::time::Instant::now();
    let (ds, stats) = generate(&config)?;
    eprintln!(
        "[data] generated {} {} samples in {:.1?} ({} retries, {} OPC unconverged)",
        ds.len(),
        node.name(),
        t0.elapsed(),
        stats.empty_golden_retries,
        stats.opc_unconverged
    );
    save_dataset(&ds, &cache)?;
    attach_dataset_to_ledger(&cache, &ds);
    Ok(ds)
}

/// Records dataset identity in the run manifest (best effort; the first
/// dataset wins for multi-node experiments — per-node identity lives in
/// the trace/config).
fn attach_dataset_to_ledger(path: &Path, ds: &Dataset) {
    let mut guard = RUN_LEDGER.lock().unwrap();
    let Some(ledger) = guard.as_mut() else { return };
    if ledger.manifest().dataset.is_some() {
        return;
    }
    let Ok((fingerprint, bytes)) = fingerprint_file(path) else { return };
    let info = DatasetInfo {
        path: path.to_string_lossy().into_owned(),
        fingerprint,
        bytes,
        samples: ds.len(),
        image_size: ds.config.image_size,
        node: ds.config.process.name.clone(),
        nm_per_px: ds.config.golden_nm_per_px(),
    };
    if let Err(e) = ledger.set_dataset(info) {
        eprintln!("[run] cannot record dataset: {e}");
    }
}

/// The three models of Table 3, trained on one split with one seed.
pub struct Trained {
    /// The dual-learning LithoGAN.
    pub lithogan: LithoGan,
    /// Plain CGAN trained on *uncentred* golden targets.
    pub cgan: Cgan,
    /// The Ref. \[12\] threshold baseline.
    pub baseline: ThresholdBaseline,
}

/// Trains all three methods on the dataset's train split, caching the
/// trained weights under `target/experiments/models/` so that every
/// experiment binary at the same (node, scale, seed) shares one training
/// run.
///
/// # Errors
///
/// Propagates training errors.
pub fn train_all(ds: &Dataset, scale: &Scale, seed: u64) -> Result<Trained> {
    use litho_nn::serialize::{load_weights_from_path, save_weights_to_path};

    let (train, _) = ds.split();
    let net = scale.net_config();
    let cfg = scale.train_config(seed);

    let key = format!(
        "{}_{}clips_{}px_{}ep_seed{}",
        ds.config.process.name, ds.config.clip_count, scale.image_size, scale.epochs, seed
    );
    let model_dir = out_dir().join("models").join(key);
    std::fs::create_dir_all(&model_dir)
        .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;

    let mut lithogan = LithoGan::new(&net, seed);
    let mut cgan = Cgan::with_train_config(&net, &cfg, seed.wrapping_add(100));
    let mut baseline = ThresholdBaseline::new(
        &ds.config.process,
        &net,
        ds.config.sim_grid,
        ds.config.golden_window_nm,
        seed.wrapping_add(200),
    )?;

    // Try the cache first: all weight files plus the baseline stats.
    let stats_path = model_dir.join("baseline_stats.txt");
    let cached = load_weights_from_path(lithogan.cgan.generator_mut(), model_dir.join("lg_gen.lgw"))
        .and_then(|()| {
            load_weights_from_path(lithogan.cgan.discriminator_mut(), model_dir.join("lg_disc.lgw"))
        })
        .and_then(|()| {
            load_weights_from_path(lithogan.center.network_mut(), model_dir.join("lg_center.lgw"))
        })
        .and_then(|()| load_weights_from_path(cgan.generator_mut(), model_dir.join("cgan_gen.lgw")))
        .and_then(|()| {
            load_weights_from_path(cgan.discriminator_mut(), model_dir.join("cgan_disc.lgw"))
        })
        .and_then(|()| {
            load_weights_from_path(baseline.network_mut(), model_dir.join("baseline.lgw"))
        })
        .and_then(|()| {
            let text = std::fs::read_to_string(&stats_path)
                .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;
            let mut it = text.split_whitespace();
            let mean: f32 = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                litho_tensor::TensorError::InvalidArgument("bad baseline stats".into())
            })?;
            let std: f32 = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                litho_tensor::TensorError::InvalidArgument("bad baseline stats".into())
            })?;
            baseline.set_target_stats(mean, std);
            Ok(())
        });
    if cached.is_ok() {
        eprintln!("[train] loaded cached models from {}", model_dir.display());
        return Ok(Trained {
            lithogan,
            cgan,
            baseline,
        });
    }

    eprintln!("[train] LithoGAN ({} samples, {} epochs)", train.len(), cfg.epochs);
    lithogan.train(&train, &cfg, |_, _| {})?;

    eprintln!("[train] CGAN (uncentred targets)");
    let pairs: Vec<TrainPair> = train
        .iter()
        .map(|s| TrainPair::from_dataset(&s.mask, &s.golden))
        .collect::<Result<Vec<_>>>()?;
    cgan.train(&pairs, &cfg, |_, _| {})?;

    eprintln!("[train] Ref[12] threshold baseline");
    let mut threshold_samples = Vec::with_capacity(train.len());
    for s in &train {
        let (window, _) = baseline.aerial_window(s)?;
        let t = ThresholdBaseline::golden_thresholds(&window, &s.golden)?;
        threshold_samples.push((window, t));
    }
    baseline.train(&threshold_samples, &cfg)?;

    save_weights_to_path(lithogan.cgan.generator_mut(), model_dir.join("lg_gen.lgw"))?;
    save_weights_to_path(lithogan.cgan.discriminator_mut(), model_dir.join("lg_disc.lgw"))?;
    save_weights_to_path(lithogan.center.network_mut(), model_dir.join("lg_center.lgw"))?;
    save_weights_to_path(cgan.generator_mut(), model_dir.join("cgan_gen.lgw"))?;
    save_weights_to_path(cgan.discriminator_mut(), model_dir.join("cgan_disc.lgw"))?;
    save_weights_to_path(baseline.network_mut(), model_dir.join("baseline.lgw"))?;
    let (mean, std) = baseline.target_stats();
    std::fs::write(&stats_path, format!("{mean} {std}"))
        .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;

    Ok(Trained {
        lithogan,
        cgan,
        baseline,
    })
}

/// Scores a method's predictions over the test split.
///
/// `predict` maps a test sample to a `[S, S]` image in `[0, 1]`.
///
/// # Errors
///
/// Propagates prediction/metric errors.
pub fn evaluate<F>(
    test: &[&Sample],
    nm_per_px: f64,
    mut predict: F,
) -> Result<(MetricSummary, Vec<f64>)>
where
    F: FnMut(&Sample) -> Result<Tensor>,
{
    let mut acc = MetricAccumulator::new(nm_per_px);
    for s in test {
        let pred = predict(s)?;
        acc.add(&pred, &s.golden)?;
    }
    Ok((acc.summary(), acc.ede_values().to_vec()))
}

/// Formats one Table 3 row.
pub fn format_row(dataset: &str, method: &str, s: &MetricSummary) -> String {
    format!(
        "{dataset:<5} {method:<10} {:>7.2} {:>8.2} {:>10.4} {:>10.4} {:>9.4}",
        s.ede_mean_nm, s.ede_std_nm, s.pixel_accuracy, s.class_accuracy, s.mean_iou
    )
}

/// Table 3 header line.
pub fn table3_header() -> String {
    format!(
        "{:<5} {:<10} {:>7} {:>8} {:>10} {:>10} {:>9}",
        "Data", "Method", "EDE", "EDE-std", "PixelAcc", "ClassAcc", "MeanIoU"
    )
}
