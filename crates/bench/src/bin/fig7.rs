//! Reproduces **Figure 7**: the distribution (histogram) of per-sample
//! EDE values for CGAN vs LithoGAN over the test set. LithoGAN's
//! distribution should concentrate at lower EDE. Prints ASCII histograms
//! and writes `target/experiments/fig7.csv`.
//!
//! Run: `cargo run --release -p lithogan-bench --bin fig7 [--quick|--paper]`

use std::io::Write;

use litho_metrics::Histogram;
use litho_tensor::Result;
use lithogan_bench::{dataset, evaluate, out_dir, train_all, Node, Scale};

fn main() -> Result<()> {
    let scale = Scale::from_args();
    println!("# Figure 7 reproduction — scale: {}", scale.label);

    let node = Node::N10;
    let ds = dataset(node, &scale)?;
    let (_, test) = ds.split();
    let nmpp = ds.config.golden_nm_per_px();
    let mut trained = train_all(&ds, &scale, 0)?;

    let (_, cgan_ede) = evaluate(&test, nmpp, |s| trained.cgan.predict(&s.mask))?;
    let (_, lg_ede) = evaluate(&test, nmpp, |s| trained.lithogan.predict(&s.mask))?;

    let max = cgan_ede
        .iter()
        .chain(&lg_ede)
        .copied()
        .fold(1.0f64, f64::max)
        .ceil();
    let bins = (max as usize).clamp(8, 16);
    let mut h_cgan = Histogram::new(0.0, max, bins)?;
    h_cgan.extend(cgan_ede.iter().copied());
    let mut h_lg = Histogram::new(0.0, max, bins)?;
    h_lg.extend(lg_ede.iter().copied());

    println!("\nCGAN EDE distribution (nm):");
    print!("{}", h_cgan.to_ascii(40));
    println!("\nLithoGAN EDE distribution (nm):");
    print!("{}", h_lg.to_ascii(40));

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmeans: CGAN {:.2} nm, LithoGAN {:.2} nm (paper: LithoGAN shifts mass to lower EDE)",
        mean(&cgan_ede),
        mean(&lg_ede)
    );

    let csv = out_dir().join("fig7.csv");
    let mut f = std::fs::File::create(&csv)
        .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;
    writeln!(f, "bin_lo,bin_hi,cgan,lithogan")
        .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;
    for i in 0..bins {
        let (lo, hi) = h_cgan.bin_edges(i);
        writeln!(f, "{lo},{hi},{},{}", h_cgan.counts()[i], h_lg.counts()[i])
            .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;
    }
    println!("wrote {}", csv.display());
    lithogan_bench::finish_telemetry();
    Ok(())
}
