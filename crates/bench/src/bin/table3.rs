//! Reproduces **Table 3**: EDE (mean/std), pixel accuracy, class accuracy
//! and mean IoU for Ref \[12\] / CGAN / LithoGAN on the N10 and N7
//! datasets, plus the §4.1 centre-prediction error (0.43 nm N10,
//! 0.37 nm N7 in the paper). Averages over `--seeds=N` runs (paper: 5).
//!
//! Run: `cargo run --release -p lithogan-bench --bin table3 [--quick|--paper]`

use litho_metrics::MetricSummary;
use litho_tensor::Result;
use lithogan_bench::{dataset, evaluate, format_row, table3_header, train_all, Node, Scale};

fn mean_summary(list: &[MetricSummary]) -> MetricSummary {
    let n = list.len().max(1) as f64;
    MetricSummary {
        samples: list.first().map(|s| s.samples).unwrap_or(0),
        ede_mean_nm: list.iter().map(|s| s.ede_mean_nm).sum::<f64>() / n,
        ede_std_nm: list.iter().map(|s| s.ede_std_nm).sum::<f64>() / n,
        ede_edge_mean_nm: {
            let mut edges = [0.0; 4];
            for s in list {
                for (acc, e) in edges.iter_mut().zip(s.ede_edge_mean_nm) {
                    *acc += e / n;
                }
            }
            edges
        },
        pixel_accuracy: list.iter().map(|s| s.pixel_accuracy).sum::<f64>() / n,
        class_accuracy: list.iter().map(|s| s.class_accuracy).sum::<f64>() / n,
        mean_iou: list.iter().map(|s| s.mean_iou).sum::<f64>() / n,
        center_error_nm: list.iter().map(|s| s.center_error_nm).sum::<f64>() / n,
        skipped: list.iter().map(|s| s.skipped).sum(),
        // Per-seed slice aggregates don't average meaningfully here; the
        // table reports the paper's aggregate axes only.
        slices: Vec::new(),
    }
}

fn main() -> Result<()> {
    let scale = Scale::from_args();
    println!("# Table 3 reproduction — scale: {}", scale.label);
    println!("{}", table3_header());

    for node in Node::ALL {
        let ds = dataset(node, &scale)?;
        let (_, test) = ds.split();
        let nmpp = ds.config.golden_nm_per_px();

        let mut rows: [Vec<MetricSummary>; 3] = Default::default();
        let mut center_err_nm = Vec::new();
        for seed in 0..scale.seeds as u64 {
            let mut trained = train_all(&ds, &scale, seed)?;

            let (baseline_summary, _) =
                evaluate(&test, nmpp, |s| Ok(trained.baseline.predict(s)?.image))?;
            let (cgan_summary, _) = evaluate(&test, nmpp, |s| trained.cgan.predict(&s.mask))?;
            let (lg_summary, _) = evaluate(&test, nmpp, |s| trained.lithogan.predict(&s.mask))?;
            rows[0].push(baseline_summary);
            rows[1].push(cgan_summary);
            rows[2].push(lg_summary);

            // §4.1 centre-prediction error of the CNN alone.
            let mut err = 0.0f64;
            for s in &test {
                let (py, px) = trained.lithogan.center.predict(&s.mask)?;
                err += (((py - s.center_px.0).powi(2) + (px - s.center_px.1).powi(2)) as f64)
                    .sqrt()
                    * nmpp;
            }
            center_err_nm.push(err / test.len() as f64);
        }

        for (method, list) in ["Ref[12]", "CGAN", "LithoGAN"].iter().zip(&rows) {
            println!("{}", format_row(node.name(), method, &mean_summary(list)));
        }
        println!(
            "{:<5} CNN centre-prediction error: {:.2} nm (paper: {})",
            node.name(),
            center_err_nm.iter().sum::<f64>() / center_err_nm.len() as f64,
            if node == Node::N10 { "0.43 nm" } else { "0.37 nm" }
        );
    }
    println!();
    println!("Paper Table 3 (for shape comparison):");
    println!("  N10  Ref[12] 0.67/0.55 0.98 0.99 0.98 | CGAN 1.52/0.95 0.96 0.97 0.94 | LithoGAN 1.08/0.88 0.97 0.98 0.96");
    println!("  N7   Ref[12] 0.55/0.53 0.99 0.99 0.98 | CGAN 1.21/0.77 0.98 0.98 0.96 | LithoGAN 0.88/0.67 0.99 0.99 0.97");
    lithogan_bench::finish_telemetry();
    Ok(())
}
