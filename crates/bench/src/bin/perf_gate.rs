//! Kernel performance gate: compares a freshly-benched
//! `BENCH_KERNELS.json` against the committed baseline and fails on
//! regressions beyond tolerance.
//!
//! Both files use the ledger [`Baseline`] JSON format
//! (`{"tol_pct": N, "metrics": {"<bench>": <best secs/iter>, ...}}`),
//! written by the bench binaries' `--json-out=FILE` flag (best-of-N — see
//! the microbench module for why minimums, not medians, are gated). Plain
//! metrics are wall-clock times and gate lower-is-better; derived roofline
//! metrics gate by suffix: `_gflops` (achieved GFLOP/s) and `_util`
//! (worker-pool utilization) are rates and gate higher-is-better, while
//! `_ai` (arithmetic intensity) is a shape constant recorded for context
//! and never gated. A baseline bench missing from the current file fails
//! the gate (a vanished bench is itself a regression). Current-only
//! benches are reported but do not gate — they become binding once
//! promoted into the baseline.
//!
//! When both files carry the `_calibration` metric (a fixed workload
//! timed at bench time), current times are rescaled by
//! `min(baseline_cal / current_cal, 1)` before comparison: a host that
//! measures slower than at baseline capture (frequency scaling,
//! shared-CI throttling) has its times discounted, while a faster host
//! is compared raw — never inflated, since the ALU-bound spin speeds up
//! more than memory-bound kernels do.
//!
//! Usage: `perf_gate --current FILE --baseline FILE [--tol-pct N]`
//!
//! Baseline capture: `perf_gate --merge --out OUT FILE...` writes the
//! per-metric *median* across several independent bench passes. A
//! best-ever-window minimum makes an unreproducible baseline on a noisy
//! host; the median of per-pass minimums is what a typical window
//! achieves, which the min-merged current run then has to beat only
//! within tolerance.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use litho_ledger::{Baseline, GateCheck, GateOutcome};
use lithogan_bench::microbench::{
    fmt_duration, AI_SUFFIX, CALIBRATION_METRIC, GFLOPS_SUFFIX, UTIL_SUFFIX,
};

enum Args {
    Gate {
        current: PathBuf,
        baseline: PathBuf,
        tol_pct: Option<f64>,
    },
    Merge {
        out: PathBuf,
        passes: Vec<PathBuf>,
    },
}

fn parse_args() -> Result<Args, String> {
    let mut current = None;
    let mut baseline = None;
    let mut tol_pct = None;
    let mut merge = false;
    let mut out = None;
    let mut passes = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        // Accept both `--flag VALUE` and `--flag=VALUE`.
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            inline
                .clone()
                .or_else(|| it.next())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--current" => current = Some(PathBuf::from(value("--current")?)),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--tol-pct" => {
                let raw = value("--tol-pct")?;
                tol_pct = Some(
                    raw.parse::<f64>()
                        .map_err(|_| format!("--tol-pct: not a number: {raw}"))?,
                );
            }
            "--merge" => merge = true,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            other if !other.starts_with("--") => passes.push(PathBuf::from(flag)),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if merge {
        if passes.is_empty() {
            return Err("--merge needs at least one pass FILE".into());
        }
        return Ok(Args::Merge {
            out: out.ok_or("--merge needs --out FILE")?,
            passes,
        });
    }
    Ok(Args::Gate {
        current: current.ok_or("missing --current FILE")?,
        baseline: baseline.ok_or("missing --baseline FILE")?,
        tol_pct,
    })
}

fn lookup(base: &Baseline, key: &str) -> Option<f64> {
    base.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

/// Per-metric median across bench passes, preserving the first file's
/// metric order and `tol_pct`. Metrics missing from some passes take the
/// median of the passes that have them. Source provenance (which binary
/// claims which metric names) is unioned across passes so the blessed
/// baseline keeps the stale-key bookkeeping `--json-out` relies on.
fn merge_median(passes: &[Baseline]) -> Baseline {
    let mut merged = Baseline {
        tol_pct: passes.first().map_or(15.0, |p| p.tol_pct),
        run_id: None,
        metrics: Vec::new(),
        sources: Vec::new(),
    };
    for pass in passes {
        for (key, _) in &pass.metrics {
            if merged.metrics.iter().any(|(k, _)| k == key) {
                continue;
            }
            let mut vals: Vec<f64> = passes.iter().filter_map(|p| lookup(p, key)).collect();
            vals.sort_by(f64::total_cmp);
            let n = vals.len();
            let median = if n % 2 == 1 {
                vals[n / 2]
            } else {
                (vals[n / 2 - 1] + vals[n / 2]) / 2.0
            };
            merged.metrics.push((key.clone(), median));
        }
        for (src, names) in &pass.sources {
            match merged.sources.iter_mut().find(|(s, _)| s == src) {
                Some(slot) => {
                    for name in names {
                        if !slot.1.contains(name) {
                            slot.1.push(name.clone());
                        }
                    }
                }
                None => merged.sources.push((src.clone(), names.clone())),
            }
        }
    }
    merged
}

/// `baseline_cal / current_cal` when both files carry the calibration
/// metric: multiply current times by this to express them at the
/// baseline host's speed. Clamped to at most 1: a slower host discounts
/// current times, but a faster host never inflates them — the spin is
/// ALU-bound, and memory-bound kernels do not speed up with it, so
/// scaling upward manufactures false regressions.
fn host_speed_scale(current: &Baseline, baseline: &Baseline) -> Option<f64> {
    let cur = lookup(current, CALIBRATION_METRIC)?;
    let base = lookup(baseline, CALIBRATION_METRIC)?;
    (cur > 0.0 && base > 0.0).then_some((base / cur).min(1.0))
}

/// True for rate metrics (`_gflops`, `_util`): higher is better, and the
/// gate floor is `baseline * (1 - tol)` instead of a ceiling.
fn is_rate(key: &str) -> bool {
    key.ends_with(GFLOPS_SUFFIX) || key.ends_with(UTIL_SUFFIX)
}

/// Gates current bench metrics against the baseline. Plain metrics are
/// durations (lower-is-better, current times rescaled by `scale` to the
/// baseline host's speed); `_gflops` rates gate higher-is-better with the
/// inverse rescaling (a slower host's achieved rate is discounted *up*,
/// never down); `_util` is host-speed-independent and compared raw; `_ai`
/// is never gated.
fn gate_benches(
    current: &Baseline,
    baseline: &Baseline,
    tol_pct: Option<f64>,
    scale: f64,
) -> GateOutcome {
    let tol_pct = tol_pct.unwrap_or(baseline.tol_pct).max(0.0);
    let tol = tol_pct / 100.0;
    let mut outcome = GateOutcome {
        checks: Vec::new(),
        tol_pct,
    };
    for (key, base) in &baseline.metrics {
        if key == CALIBRATION_METRIC || key.ends_with(AI_SUFFIX) {
            continue;
        }
        let raw = lookup(current, key);
        let (actual, pass) = if key.ends_with(GFLOPS_SUFFIX) {
            let v = raw.map(|v| v / scale);
            (v, v.is_some_and(|v| v >= base * (1.0 - tol) - f64::EPSILON))
        } else if key.ends_with(UTIL_SUFFIX) {
            (raw, raw.is_some_and(|v| v >= base * (1.0 - tol) - f64::EPSILON))
        } else {
            let v = raw.map(|v| v * scale);
            (v, v.is_some_and(|v| v <= base * (1.0 + tol) + f64::EPSILON))
        };
        outcome.checks.push(GateCheck {
            metric: key.clone(),
            baseline: *base,
            actual,
            pass,
        });
    }
    outcome
}

/// Formats a metric value: duration units for times, plain numbers for
/// the rate metrics (GFLOP/s and utilization are not durations).
fn fmt_value(key: &str, v: f64) -> String {
    if is_rate(key) {
        format!("{v:.3}")
    } else {
        fmt_duration(Duration::from_secs_f64(v.max(0.0)))
    }
}

/// [`GateOutcome::render`] formats values as `{:.4}`, unreadable for
/// microsecond kernels — render the same table with duration units.
fn render(outcome: &GateOutcome) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "== perf gate (tolerance {:.1}%) ==", outcome.tol_pct);
    let w = outcome
        .checks
        .iter()
        .map(|c| c.metric.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let _ = writeln!(
        out,
        "{:<w$} {:>12} {:>12} {:>8}  verdict",
        "bench", "baseline", "actual", "ratio"
    );
    for c in &outcome.checks {
        let (actual, ratio) = match c.actual {
            Some(v) => (
                fmt_value(&c.metric, v),
                format!("{:.2}x", if c.baseline > 0.0 { v / c.baseline } else { f64::INFINITY }),
            ),
            None => ("missing".to_string(), "-".to_string()),
        };
        let _ = writeln!(
            out,
            "{:<w$} {:>12} {:>12} {:>8}  {}",
            c.metric,
            fmt_value(&c.metric, c.baseline),
            actual,
            ratio,
            if c.pass { "ok" } else { "REGRESSED" }
        );
    }
    let _ = writeln!(out, "gate: {}", if outcome.passed() { "PASS" } else { "FAIL" });
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            eprintln!("usage: perf_gate --current FILE --baseline FILE [--tol-pct N]");
            eprintln!("       perf_gate --merge --out FILE PASS_FILE...");
            return ExitCode::from(2);
        }
    };
    let load = |path: &PathBuf| {
        Baseline::load(path).unwrap_or_else(|e| {
            eprintln!("perf_gate: {}: {e}", path.display());
            std::process::exit(2);
        })
    };
    let (current, baseline, tol_pct) = match args {
        Args::Merge { out, passes } => {
            let merged = merge_median(&passes.iter().map(load).collect::<Vec<_>>());
            if let Err(e) = std::fs::write(&out, merged.to_json_string()) {
                eprintln!("perf_gate: {}: {e}", out.display());
                return ExitCode::from(2);
            }
            println!(
                "merged {} passes into {} ({} metrics, per-metric median)",
                passes.len(),
                out.display(),
                merged.metrics.len()
            );
            return ExitCode::SUCCESS;
        }
        Args::Gate {
            current,
            baseline,
            tol_pct,
        } => (load(&current), load(&baseline), tol_pct),
    };

    let scale = host_speed_scale(&current, &baseline);
    match scale {
        Some(s) if s < 1.0 => println!(
            "host {:.2}x slower than baseline capture; times normalized",
            1.0 / s
        ),
        Some(_) => println!("host at or above baseline-capture speed; comparing raw times"),
        None => println!("no shared {CALIBRATION_METRIC} metric; comparing raw times"),
    }
    let outcome = gate_benches(&current, &baseline, tol_pct, scale.unwrap_or(1.0));
    print!("{}", render(&outcome));

    // Surface benches that exist only in the current file so a stale
    // baseline is visible without failing the gate.
    let new: Vec<&str> = current
        .metrics
        .iter()
        .filter(|(k, _)| {
            k != CALIBRATION_METRIC
                && !k.ends_with(AI_SUFFIX)
                && !baseline.metrics.iter().any(|(b, _)| b == k)
        })
        .map(|(k, _)| k.as_str())
        .collect();
    if !new.is_empty() {
        println!("ungated (not in baseline): {}", new.join(", "));
    }

    if outcome.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(metrics: &[(&str, f64)]) -> Baseline {
        Baseline {
            tol_pct: 15.0,
            run_id: None,
            metrics: metrics
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            sources: Vec::new(),
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let outcome = gate_benches(&base(&[("conv", 1.10)]), &base(&[("conv", 1.0)]), None, 1.0);
        assert!(outcome.passed());
    }

    #[test]
    fn beyond_tolerance_fails() {
        let outcome = gate_benches(&base(&[("conv", 1.20)]), &base(&[("conv", 1.0)]), None, 1.0);
        assert!(!outcome.passed());
        assert_eq!(outcome.failures().count(), 1);
    }

    #[test]
    fn missing_bench_fails_and_override_applies() {
        let outcome = gate_benches(&base(&[]), &base(&[("conv", 1.0)]), None, 1.0);
        assert!(!outcome.passed());
        // A generous override admits a big slowdown.
        let outcome = gate_benches(
            &base(&[("conv", 1.9)]),
            &base(&[("conv", 1.0)]),
            Some(100.0),
            1.0,
        );
        assert!(outcome.passed());
    }

    #[test]
    fn speedups_always_pass() {
        let outcome = gate_benches(&base(&[("conv", 0.2)]), &base(&[("conv", 1.0)]), Some(0.0), 1.0);
        assert!(outcome.passed());
    }

    #[test]
    fn calibration_normalizes_a_throttled_host() {
        // Baseline captured on a fast host (cal 1.0); the current run sees
        // everything 2x slower including the calibration spin — the gate
        // must treat that as unchanged performance.
        let baseline = base(&[(CALIBRATION_METRIC, 1.0), ("conv", 1.0)]);
        let current = base(&[(CALIBRATION_METRIC, 2.0), ("conv", 2.0)]);
        let scale = host_speed_scale(&current, &baseline).unwrap();
        let outcome = gate_benches(&current, &baseline, Some(0.0), scale);
        assert!(outcome.passed());
        // A real 2x regression on a same-speed host still fails.
        let current = base(&[(CALIBRATION_METRIC, 1.0), ("conv", 2.0)]);
        let scale = host_speed_scale(&current, &baseline).unwrap();
        let outcome = gate_benches(&current, &baseline, Some(15.0), scale);
        assert!(!outcome.passed());
        // The calibration metric itself is never a gated check.
        assert!(outcome.checks.iter().all(|c| c.metric != CALIBRATION_METRIC));
    }

    #[test]
    fn rate_metrics_gate_higher_is_better() {
        // A GFLOP/s drop beyond tolerance fails; a rise always passes.
        let baseline = base(&[("matmul_gflops", 10.0), ("matmul_util", 0.9)]);
        let ok = base(&[("matmul_gflops", 9.0), ("matmul_util", 0.85)]);
        assert!(gate_benches(&ok, &baseline, Some(15.0), 1.0).passed());
        let fast = base(&[("matmul_gflops", 20.0), ("matmul_util", 1.0)]);
        assert!(gate_benches(&fast, &baseline, Some(0.0), 1.0).passed());
        let slow = base(&[("matmul_gflops", 8.0), ("matmul_util", 0.9)]);
        assert!(!gate_benches(&slow, &baseline, Some(15.0), 1.0).passed());
        let starved = base(&[("matmul_gflops", 10.0), ("matmul_util", 0.5)]);
        assert!(!gate_benches(&starved, &baseline, Some(15.0), 1.0).passed());
    }

    #[test]
    fn throttled_host_discounts_rates_up_but_not_utilization() {
        // Host at half speed: times double, achieved GFLOP/s halve, but
        // pool utilization is speed-independent. The calibration scale
        // must rescue the rate and leave utilization alone.
        let baseline = base(&[
            (CALIBRATION_METRIC, 1.0),
            ("conv", 1.0),
            ("conv_gflops", 10.0),
            ("conv_util", 0.9),
        ]);
        let current = base(&[
            (CALIBRATION_METRIC, 2.0),
            ("conv", 2.0),
            ("conv_gflops", 5.0),
            ("conv_util", 0.9),
        ]);
        let scale = host_speed_scale(&current, &baseline).unwrap();
        assert!(gate_benches(&current, &baseline, Some(0.0), scale).passed());
        // A genuine utilization collapse still fails on the slow host.
        let current = base(&[
            (CALIBRATION_METRIC, 2.0),
            ("conv", 2.0),
            ("conv_gflops", 5.0),
            ("conv_util", 0.4),
        ]);
        assert!(!gate_benches(&current, &baseline, Some(15.0), scale).passed());
    }

    #[test]
    fn arithmetic_intensity_is_never_gated() {
        // Even a wildly different _ai value produces no check at all.
        let baseline = base(&[("conv_ai", 32.0), ("conv", 1.0)]);
        let current = base(&[("conv_ai", 1.0), ("conv", 1.0)]);
        let outcome = gate_benches(&current, &baseline, Some(0.0), 1.0);
        assert!(outcome.passed());
        assert!(outcome.checks.iter().all(|c| c.metric != "conv_ai"));
    }

    #[test]
    fn merge_median_is_per_metric_and_order_preserving() {
        let passes = [
            base(&[("a", 3.0), ("b", 10.0)]),
            base(&[("a", 1.0), ("b", 30.0), ("c", 7.0)]),
            base(&[("a", 2.0), ("b", 20.0)]),
        ];
        let merged = merge_median(&passes);
        assert_eq!(merged.tol_pct, 15.0);
        let keys: Vec<&str> = merged.metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "b", "c"]);
        assert_eq!(lookup(&merged, "a"), Some(2.0));
        assert_eq!(lookup(&merged, "b"), Some(20.0));
        // Present in one pass only: that value is its own median.
        assert_eq!(lookup(&merged, "c"), Some(7.0));
        // Even count takes the midpoint.
        let merged = merge_median(&passes[..2]);
        assert_eq!(lookup(&merged, "a"), Some(2.0));
    }

    #[test]
    fn faster_host_never_inflates_times() {
        // The current host runs the ALU spin 2x faster, but a
        // memory-bound bench only improved 5% — upscaling its time 2x
        // would fake a regression. The scale clamps at 1 (raw compare).
        let baseline = base(&[(CALIBRATION_METRIC, 1.0), ("fft", 1.0)]);
        let current = base(&[(CALIBRATION_METRIC, 0.5), ("fft", 0.95)]);
        let scale = host_speed_scale(&current, &baseline).unwrap();
        assert_eq!(scale, 1.0);
        let outcome = gate_benches(&current, &baseline, Some(0.0), scale);
        assert!(outcome.passed());
        // A genuine regression still fails raw on the faster host.
        let current = base(&[(CALIBRATION_METRIC, 0.5), ("fft", 1.3)]);
        let scale = host_speed_scale(&current, &baseline).unwrap();
        assert!(!gate_benches(&current, &baseline, Some(15.0), scale).passed());
    }
}
