//! Reproduces **Figure 6**: per-sample visual panels of (a) the mask
//! input, (b) the CGAN output and (c) the LithoGAN output, with the
//! golden contour outlined in black and the prediction filled green with
//! a red outline. Writes PPM images to `target/experiments/fig6/`,
//! covering at least one sample of each contact-array family.
//!
//! Run: `cargo run --release -p lithogan-bench --bin fig6 [--quick|--paper]`

use litho_layout::image::{overlay_panel, write_ppm};
use litho_layout::ClipFamily;
use litho_tensor::{Result, Tensor};
use lithogan_bench::{dataset, out_dir, train_all, Node, Scale};

fn binarize(image: &Tensor) -> Tensor {
    image.map(|v| if v >= 0.5 { 1.0 } else { 0.0 })
}

fn main() -> Result<()> {
    let scale = Scale::from_args();
    let dir = out_dir().join("fig6");
    std::fs::create_dir_all(&dir)
        .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;
    println!("# Figure 6 reproduction — scale: {} -> {}", scale.label, dir.display());

    let node = Node::N10;
    let ds = dataset(node, &scale)?;
    let (_, test) = ds.split();
    let mut trained = train_all(&ds, &scale, 0)?;

    // One sample per family (plus a second Array2d like the paper's 4 rows).
    let mut picks = Vec::new();
    for family in ClipFamily::ALL {
        if let Some(s) = test.iter().find(|s| s.family == family) {
            picks.push(*s);
        }
    }
    if let Some(s) = test.iter().filter(|s| s.family == ClipFamily::Array2d).nth(1) {
        picks.push(*s);
    }

    for (row, s) in picks.iter().enumerate() {
        let mask_path = dir.join(format!("row{row}_{:?}_mask.ppm", s.family));
        write_ppm(&s.mask, &mask_path)?;

        let cgan_out = binarize(&trained.cgan.predict(&s.mask)?);
        let cgan_panel = overlay_panel(&cgan_out, &s.golden)?;
        write_ppm(&cgan_panel, dir.join(format!("row{row}_{:?}_cgan.ppm", s.family)))?;

        let lg_out = binarize(&trained.lithogan.predict(&s.mask)?);
        let lg_panel = overlay_panel(&lg_out, &s.golden)?;
        write_ppm(&lg_panel, dir.join(format!("row{row}_{:?}_lithogan.ppm", s.family)))?;

        // Quantified caption per row.
        let nmpp = ds.config.golden_nm_per_px();
        let ede = |pred: &Tensor| -> String {
            litho_metrics::ede(pred, &s.golden, nmpp)
                .map(|e| format!("{:.2} nm", e.mean_nm()))
                .unwrap_or_else(|_| "n/a (empty)".into())
        };
        println!(
            "row {row} [{:?}]: CGAN EDE {} | LithoGAN EDE {}",
            s.family,
            ede(&cgan_out),
            ede(&lg_out)
        );
    }
    println!("wrote {} panels to {}", picks.len() * 3, dir.display());
    lithogan_bench::finish_telemetry();
    Ok(())
}
