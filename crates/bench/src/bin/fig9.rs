//! Reproduces **Figure 9**: the generator and discriminator loss curves
//! over training epochs (the paper's model converges after ~50 of 80
//! epochs). Prints an ASCII chart and writes `target/experiments/fig9.csv`.
//!
//! Run: `cargo run --release -p lithogan-bench --bin fig9 [--quick|--paper]`

use std::io::Write;

use litho_tensor::Result;
use lithogan::{LithoGan, TrainPair};
use lithogan_bench::{dataset, out_dir, Node, Scale};

fn ascii_series(label: &str, values: &[f32], width: usize) {
    let max = values.iter().copied().fold(f32::MIN, f32::max).max(1e-6);
    println!("{label} (max {max:.2}):");
    for (i, &v) in values.iter().enumerate() {
        let bar = "#".repeat(((v / max) * width as f32).round() as usize);
        println!("  epoch {:>3} {:>8.3} {bar}", i + 1, v);
    }
}

fn main() -> Result<()> {
    let scale = Scale::from_args();
    println!("# Figure 9 reproduction — scale: {}", scale.label);

    let ds = dataset(Node::N10, &scale)?;
    let (train, _) = ds.split();
    let net = scale.net_config();
    let cfg = scale.train_config(0);

    let mut model = LithoGan::new(&net, 0);
    let pairs: Vec<TrainPair> = train
        .iter()
        .map(|s| TrainPair::from_dataset(&s.mask, &s.golden_centered))
        .collect::<Result<Vec<_>>>()?;
    let history = model.cgan.train(&pairs, &cfg, |_, _| {})?;

    ascii_series("Generator loss", &history.g_loss, 40);
    ascii_series("Discriminator loss", &history.d_loss, 40);

    let csv = out_dir().join("fig9.csv");
    let mut f = std::fs::File::create(&csv)
        .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;
    writeln!(f, "epoch,g_loss,d_loss")
        .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;
    for (i, (g, d)) in history.g_loss.iter().zip(&history.d_loss).enumerate() {
        writeln!(f, "{},{g},{d}", i + 1)
            .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;
    }
    println!("wrote {}", csv.display());
    println!("(paper: generator loss decays and flattens after ~50/80 epochs; discriminator stays low)");
    lithogan_bench::finish_telemetry();
    Ok(())
}
