//! Reproduces **Table 4**: runtime comparison between rigorous
//! simulation, the Ref \[12\] flow (optical sim + ML threshold prediction +
//! contour processing) and CGAN/LithoGAN inference, over a full test set.
//!
//! The paper reports >15 h rigorous, 80 m optical + 8 s ML + 15 m contour,
//! and 30 s for LithoGAN (ratios ≈ 1800 : 190 : 1). Absolute numbers here
//! differ (our "rigorous" simulator is itself fast), but the ordering and
//! the orders-of-magnitude gaps are the reproduction target.
//!
//! Run: `cargo run --release -p lithogan-bench --bin table4 [--quick|--paper]`

use std::time::Duration;

use litho_sim::RigorousSim;
use litho_tensor::Result;
use lithogan_bench::{dataset, train_all, Node, Scale};

fn fmt(d: Duration) -> String {
    if d.as_secs() >= 60 {
        format!("{:.1} min", d.as_secs_f64() / 60.0)
    } else if d.as_secs_f64() >= 1.0 {
        format!("{:.2} s", d.as_secs_f64())
    } else {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    }
}

fn main() -> Result<()> {
    let scale = Scale::from_args();
    println!("# Table 4 reproduction — scale: {}", scale.label);

    for node in Node::ALL {
        let ds = dataset(node, &scale)?;
        let (_, test) = ds.split();
        let mut trained = train_all(&ds, &scale, 0)?;

        // Rigorous simulation over the test set.
        let sim = RigorousSim::new(
            &ds.config.process,
            ds.config.sim_grid,
            2048.0 / ds.config.sim_grid as f64,
        )?;
        let mut rigorous = Duration::ZERO;
        for s in &test {
            let (_, report) = sim.simulate(&s.clip.to_mask_grid(ds.config.sim_grid))?;
            rigorous += report.total_time();
        }

        // Ref [12] staged flow.
        let (mut optical, mut ml, mut contour) =
            (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        for s in &test {
            let p = trained.baseline.predict(s)?;
            optical += p.optical_time;
            ml += p.ml_time;
            contour += p.contour_time;
        }
        let ref12 = optical + ml + contour;

        // LithoGAN inference.
        let mut lithogan = Duration::ZERO;
        for s in &test {
            lithogan += trained.lithogan.predict_detailed(&s.mask)?.elapsed;
        }

        let ratio = |d: Duration| d.as_secs_f64() / lithogan.as_secs_f64().max(1e-12);
        println!();
        println!(
            "{} ({} test clips):",
            node.name(),
            test.len()
        );
        println!("  {:<28} {:>10}  ratio vs LithoGAN", "Method", "Time");
        println!("  {:<28} {:>10}  {:>6.0}x", "Rigorous sim", fmt(rigorous), ratio(rigorous));
        println!(
            "  {:<28} {:>10}  {:>6.0}x   (optical {} + ML {} + contour {})",
            "Ref[12] flow",
            fmt(ref12),
            ratio(ref12),
            fmt(optical),
            fmt(ml),
            fmt(contour)
        );
        println!("  {:<28} {:>10}  {:>6.1}x", "LithoGAN", fmt(lithogan), 1.0);
    }
    println!();
    println!("Paper Table 4: rigorous >15 h (~1800x), Ref[12] 80m+8s+15m (~190x), LithoGAN 30 s (1x)");
    lithogan_bench::finish_telemetry();
    Ok(())
}
