//! Ablation study of the design choices called out in DESIGN.md §5:
//!
//! 1. λ (the ℓ1 weight of Eq. 3) — sweep {0, 1, 10, 100}.
//! 2. ℓ1 vs ℓ2 reconstruction loss (the paper argues ℓ1 "encourages less
//!    blurring").
//! 3. The RGB object-class color encoding vs a flat binary mask (paper
//!    §3.1: the coloring "helps the model discriminate these objects").
//! 4. Recentring — CGAN vs LithoGAN (the paper's core contribution;
//!    quantified in Table 3 / Figure 7 and re-measured here).
//!
//! Run: `cargo run --release -p lithogan-bench --bin ablate [--quick|--paper]`

use litho_tensor::{Result, Tensor};
use lithogan::{Cgan, LithoGan, ReconLoss, TrainConfig, TrainPair};
use lithogan_bench::{dataset, evaluate, Node, Scale};

/// Collapses the RGB object-class encoding into a flat "every shape is
/// the same color" mask replicated on all three channels.
fn collapse_colors(mask: &Tensor) -> Result<Tensor> {
    let dims = mask.dims();
    let (s, plane) = (dims[1], dims[1] * dims[2]);
    let data = mask.as_slice();
    let mut flat = vec![0.0f32; plane];
    for c in 0..3 {
        for i in 0..plane {
            flat[i] = (flat[i] + data[c * plane + i]).min(1.0);
        }
    }
    let mut out = Vec::with_capacity(3 * plane);
    for _ in 0..3 {
        out.extend_from_slice(&flat);
    }
    Tensor::from_vec(out, &[3, s, s])
}

fn main() -> Result<()> {
    let scale = Scale::from_args();
    println!("# Ablation studies — scale: {}", scale.label);
    let ds = dataset(Node::N10, &scale)?;
    let (train, test) = ds.split();
    let nmpp = ds.config.golden_nm_per_px();
    let net = scale.net_config();

    let centered_pairs: Vec<TrainPair> = train
        .iter()
        .map(|s| TrainPair::from_dataset(&s.mask, &s.golden_centered))
        .collect::<Result<Vec<_>>>()?;

    println!("\n## 1+2. λ sweep and reconstruction-loss flavour (CGAN on centred targets)");
    println!("{:<18} {:>8} {:>9} {:>9}", "config", "EDE", "MeanIoU", "PixAcc");
    for (label, lambda, recon) in [
        ("λ=0 (GAN only)", 0.0, ReconLoss::L1),
        ("λ=1", 1.0, ReconLoss::L1),
        ("λ=10", 10.0, ReconLoss::L1),
        ("λ=100 (paper)", 100.0, ReconLoss::L1),
        ("λ=100, ℓ2", 100.0, ReconLoss::L2),
    ] {
        let cfg = TrainConfig {
            lambda,
            recon,
            ..scale.train_config(0)
        };
        let mut cgan = Cgan::with_train_config(&net, &cfg, 11);
        cgan.train(&centered_pairs, &cfg, |_, _| {})?;
        let (summary, _) = evaluate(&test, nmpp, |s| cgan.predict(&s.mask))?;
        println!(
            "{label:<18} {:>8.2} {:>9.4} {:>9.4}",
            summary.ede_mean_nm, summary.mean_iou, summary.pixel_accuracy
        );
    }

    println!("\n## 3. Color encoding: RGB object classes vs flat binary mask");
    for (label, collapse) in [("RGB encoding (paper)", false), ("flat binary mask", true)] {
        let cfg = scale.train_config(0);
        let mut model = LithoGan::new(&net, 21);
        if collapse {
            let flat: Vec<litho_dataset::Sample> = train
                .iter()
                .map(|s| {
                    let mut c = (*s).clone();
                    c.mask = collapse_colors(&s.mask)?;
                    Ok(c)
                })
                .collect::<Result<Vec<_>>>()?;
            let refs: Vec<&litho_dataset::Sample> = flat.iter().collect();
            model.train(&refs, &cfg, |_, _| {})?;
            let (summary, _) = evaluate(&test, nmpp, |s| {
                let m = collapse_colors(&s.mask)?;
                model.predict(&m)
            })?;
            println!(
                "{label:<22} EDE {:.2} nm, mean IoU {:.4}",
                summary.ede_mean_nm, summary.mean_iou
            );
        } else {
            model.train(&train, &cfg, |_, _| {})?;
            let (summary, _) = evaluate(&test, nmpp, |s| model.predict(&s.mask))?;
            println!(
                "{label:<22} EDE {:.2} nm, mean IoU {:.4}",
                summary.ede_mean_nm, summary.mean_iou
            );
        }
    }

    println!("\n## 4. Recentring: CGAN (uncentred targets) vs LithoGAN (dual learning)");
    {
        let cfg = scale.train_config(0);
        let uncentered: Vec<TrainPair> = train
            .iter()
            .map(|s| TrainPair::from_dataset(&s.mask, &s.golden))
            .collect::<Result<Vec<_>>>()?;
        let mut cgan = Cgan::with_train_config(&net, &cfg, 31);
        cgan.train(&uncentered, &cfg, |_, _| {})?;
        let (cg, _) = evaluate(&test, nmpp, |s| cgan.predict(&s.mask))?;

        let mut model = LithoGan::new(&net, 31);
        model.train(&train, &cfg, |_, _| {})?;
        let (lg, _) = evaluate(&test, nmpp, |s| model.predict(&s.mask))?;
        println!("CGAN:     EDE {:.2} nm, centre error {:.2} nm", cg.ede_mean_nm, cg.center_error_nm);
        println!("LithoGAN: EDE {:.2} nm, centre error {:.2} nm", lg.ede_mean_nm, lg.center_error_nm);
    }
    lithogan_bench::finish_telemetry();
    Ok(())
}
