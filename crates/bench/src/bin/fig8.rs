//! Reproduces **Figure 8**: how the generated resist pattern for two test
//! clips evolves over training epochs (the paper snapshots epochs
//! 1, 3, 5, 7, 15, 27, 50, 80). Snapshot epochs are scaled to the run's
//! epoch budget; panels are written to `target/experiments/fig8/`.
//!
//! Run: `cargo run --release -p lithogan-bench --bin fig8 [--quick|--paper]`

use litho_layout::image::{overlay_panel, write_ppm};
use litho_tensor::Result;
use lithogan::{LithoGan, TrainConfig};
use lithogan_bench::{dataset, out_dir, Node, Scale};

/// The paper's snapshot epochs, rescaled from its 80-epoch budget.
fn snapshot_epochs(total: usize) -> Vec<usize> {
    let paper = [1usize, 3, 5, 7, 15, 27, 50, 80];
    let mut out: Vec<usize> = paper
        .iter()
        .map(|&e| ((e * total).div_ceil(80)).clamp(1, total))
        .collect();
    out.dedup();
    out
}

fn main() -> Result<()> {
    let scale = Scale::from_args();
    let dir = out_dir().join("fig8");
    std::fs::create_dir_all(&dir)
        .map_err(|e| litho_tensor::TensorError::InvalidArgument(e.to_string()))?;
    println!("# Figure 8 reproduction — scale: {} -> {}", scale.label, dir.display());

    let ds = dataset(Node::N10, &scale)?;
    let (train, test) = ds.split();
    let samples: Vec<_> = test.iter().take(2).copied().collect();
    let snaps = snapshot_epochs(scale.epochs);
    println!("snapshot epochs: {snaps:?} (paper: 1,3,5,7,15,27,50,80)");

    let net = scale.net_config();
    let cfg: TrainConfig = scale.train_config(0);
    let mut model = LithoGan::new(&net, 0);

    // Train the CGAN with per-epoch snapshots; epoch indices are 0-based
    // in the callback, 1-based in the figure.
    let pairs: Vec<lithogan::TrainPair> = train
        .iter()
        .map(|s| lithogan::TrainPair::from_dataset(&s.mask, &s.golden_centered))
        .collect::<Result<Vec<_>>>()?;
    let dir_ref = &dir;
    let samples_ref = &samples;
    model.cgan.train(&pairs, &cfg, |epoch, cgan| {
        let shown = epoch + 1;
        if !snaps.contains(&shown) {
            return;
        }
        for (row, s) in samples_ref.iter().enumerate() {
            if let Ok(pred) = cgan.predict(&s.mask) {
                let bin = pred.map(|v| if v >= 0.5 { 1.0 } else { 0.0 });
                if let Ok(panel) = overlay_panel(&bin, &s.golden_centered) {
                    let path = dir_ref.join(format!("row{row}_epoch{shown:03}.ppm"));
                    let _ = write_ppm(&panel, path);
                }
            }
        }
        eprintln!("  snapshot at epoch {shown}");
    })?;

    // Also store the inputs for the figure's leftmost column.
    for (row, s) in samples.iter().enumerate() {
        write_ppm(&s.mask, dir.join(format!("row{row}_input.ppm")))?;
    }
    println!("wrote snapshots for {} samples to {}", samples.len(), dir.display());
    lithogan_bench::finish_telemetry();
    Ok(())
}
