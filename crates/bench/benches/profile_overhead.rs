//! Measures the cost of compute-plane profiling: the same conv
//! forward+backward step with profiling off (telemetry disabled, every
//! kernel span inert) and then fully on — a JSONL trace sink, kernel
//! spans carrying cost annotations, and worker-pool busy/steal
//! accounting. The acceptance bar is < 5% median overhead; the process
//! exits nonzero past it so the check can run as a manual gate.
//!
//! Flags: `--samples=N`, `--min-sample-ms=N`, `--quick`.

use litho_tensor::rng::{Rng, SeedableRng, StdRng};
use litho_nn::{Conv2d, Layer, Phase};
use litho_tensor::Tensor;
use lithogan_bench::microbench::MicroBench;

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims).unwrap()
}

fn main() {
    let mb = MicroBench::from_args();
    let mut rng = StdRng::seed_from_u64(11);
    // The paper's first generator layer at half resolution: big enough
    // that its spans clear the emission floor, small enough to sample.
    let mut conv = Conv2d::new(3, 64, 5, 2, 2, &mut rng);
    let x = random_tensor(&[4, 3, 128, 128], 12);
    let step = |conv: &mut Conv2d| {
        let y = conv.forward(&x, Phase::Train).unwrap();
        conv.zero_grad();
        conv.backward(&y).unwrap()
    };

    let base = mb.run("conv_step_plain", || step(&mut conv));

    let path = std::env::temp_dir().join(format!("profile-overhead-{}.jsonl", std::process::id()));
    match litho_telemetry::JsonlSink::create(&path) {
        Ok(sink) => litho_telemetry::set_sink(Some(Box::new(sink))),
        Err(e) => {
            eprintln!("cannot open trace sink {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    litho_telemetry::enable();
    litho_tensor::pool::set_profiling(true);
    let with = mb.run("conv_step_profiled", || step(&mut conv));
    litho_telemetry::flush();
    std::fs::remove_file(&path).ok();

    let overhead =
        (with.median.as_secs_f64() - base.median.as_secs_f64()) / base.median.as_secs_f64();
    let pct = overhead * 100.0;
    let ok = pct < 5.0;
    println!(
        "profiling overhead (spans + pool accounting + JSONL sink): {pct:+.2}% (budget 5.00%) -> {}",
        if ok { "PASS" } else { "FAIL" }
    );
    if !ok {
        std::process::exit(1);
    }
}
