//! Measures the cost of arming the crash-forensics flight recorder —
//! the in-memory ring that tees every telemetry event so a crash can
//! dump the run's last moments (`runs/<id>/incident/ring.jsonl`).
//!
//! The tee costs sub-microseconds per event against a ~70 ms training
//! step, far below this machine's run-to-run drift, so timing whole
//! steps armed-vs-disarmed measures only noise. Instead the bench
//! derives the epoch overhead from its two stable components:
//!
//! 1. *per-event tee cost* — tight interleaved loops of
//!    [`litho_telemetry::event`] with the ring disarmed vs armed, best
//!    batch time each (scheduler noise only ever slows a batch down,
//!    so the minimum is the drift-robust estimator);
//! 2. *event rate* — how many events one real conv forward+backward
//!    step actually emits, counted by the ring itself.
//!
//! `overhead = tee_cost × events_per_step / step_time`, with the step
//! time taken as the *minimum* observed (the conservative denominator).
//! The acceptance bar is < 2%; the process exits nonzero past it so
//! the check can run as a manual gate.
//!
//! Flags: `--samples=N` (interleaved rounds, default 15), `--quick`.

use std::hint::black_box;
use std::time::Instant;

use litho_nn::{Conv2d, Layer, Phase};
use litho_tensor::rng::{Rng, SeedableRng, StdRng};
use litho_tensor::Tensor;
use litho_telemetry::Value;

/// Emissions per timed batch: large enough that one batch spans
/// milliseconds (timer granularity is irrelevant), small enough that
/// the trace file the sink accumulates stays modest.
const BATCH: u64 = 5_000;

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims).unwrap()
}

/// Seconds per emitted event for one timed batch.
fn emit_batch() -> f64 {
    let t = Instant::now();
    for i in 0..BATCH {
        litho_telemetry::event("bench.flight", &[("i", Value::U64(i))]);
    }
    t.elapsed().as_secs_f64() / BATCH as f64
}

fn main() {
    let mut rounds = 15usize;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--samples=") {
            rounds = v.parse().expect("--samples=N");
        } else if arg == "--quick" {
            rounds = (rounds / 2).max(5);
        }
    }
    rounds = rounds.max(1);

    let path = std::env::temp_dir().join(format!("flight-overhead-{}.jsonl", std::process::id()));
    match litho_telemetry::JsonlSink::create(&path) {
        Ok(sink) => litho_telemetry::set_sink(Some(Box::new(sink))),
        Err(e) => {
            eprintln!("cannot open trace sink {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    litho_telemetry::enable();

    // Component 1: per-event cost, disarmed vs armed, interleaved.
    litho_telemetry::flight_disarm();
    emit_batch(); // warm-up: registry, sink buffer, allocator
    let mut base_min = f64::INFINITY;
    let mut armed_min = f64::INFINITY;
    for _ in 0..rounds {
        litho_telemetry::flight_disarm();
        base_min = base_min.min(emit_batch());
        litho_telemetry::flight_arm(litho_telemetry::DEFAULT_FLIGHT_CAPACITY);
        armed_min = armed_min.min(emit_batch());
    }
    // The armed loop must actually have ringed its events.
    let ringed = litho_telemetry::flight_snapshot().len();
    if ringed == 0 {
        eprintln!("flight ring saw no events; the bench measured nothing");
        std::process::exit(2);
    }
    let tee_s = (armed_min - base_min).max(0.0);

    // Component 2: the real per-step event rate and step time, from the
    // paper's first generator layer at half resolution.
    let mut rng = StdRng::seed_from_u64(11);
    let mut conv = Conv2d::new(3, 64, 5, 2, 2, &mut rng);
    let x = random_tensor(&[4, 3, 128, 128], 12);
    let mut step = move || {
        let y = conv.forward(&x, Phase::Train).unwrap();
        conv.zero_grad();
        black_box(conv.backward(&y).unwrap());
    };
    step(); // warm-up
    litho_telemetry::flight_arm(litho_telemetry::DEFAULT_FLIGHT_CAPACITY);
    let t = Instant::now();
    step();
    let mut step_min = t.elapsed().as_secs_f64();
    let events_per_step = litho_telemetry::flight_snapshot().len().max(1);
    for _ in 0..4 {
        let t = Instant::now();
        step();
        step_min = step_min.min(t.elapsed().as_secs_f64());
    }
    litho_telemetry::flight_disarm();
    litho_telemetry::flush();
    std::fs::remove_file(&path).ok();

    println!(
        "event_disarmed      {:>9.1} ns/event  (min of {rounds} interleaved batches of {BATCH})",
        base_min * 1e9
    );
    println!(
        "event_armed         {:>9.1} ns/event  (min of {rounds} interleaved batches of {BATCH})",
        armed_min * 1e9
    );
    println!(
        "conv_step           {:>9.3} ms, {events_per_step} events/step",
        step_min * 1e3
    );

    let pct = tee_s * events_per_step as f64 / step_min * 100.0;
    let ok = pct < 2.0;
    println!(
        "flight recorder overhead (ring tee: {:.1} ns/event x {events_per_step} events \
         over a {:.1} ms step): {pct:+.4}% (budget 2.00%) -> {}",
        tee_s * 1e9,
        step_min * 1e3,
        if ok { "PASS" } else { "FAIL" }
    );
    if !ok {
        std::process::exit(1);
    }
}
