//! Criterion benches for per-clip prediction cost — Table 4 in
//! microbenchmark form: rigorous simulation vs the Ref \[12\] staged flow
//! vs one LithoGAN forward pass.

use criterion::{criterion_group, criterion_main, Criterion};

use litho_sim::RigorousSim;
use litho_tensor::Tensor;
use lithogan::{LithoGan, NetConfig};
use lithogan_bench::{dataset, Node, Scale};

fn bench_inference(c: &mut Criterion) {
    let scale = Scale::quick();
    let ds = dataset(Node::N10, &scale).expect("dataset");
    let sample = &ds.samples[0];
    let grid = ds.config.sim_grid;

    // Rigorous golden flow per clip.
    let sim = RigorousSim::new(&ds.config.process, grid, 2048.0 / grid as f64).expect("sim");
    let mask_grid = sample.clip.to_mask_grid(grid);
    c.bench_function("rigorous_per_clip", |b| {
        b.iter(|| sim.simulate(&mask_grid).unwrap())
    });

    // LithoGAN forward per clip (untrained weights time identically).
    let net = scale.net_config();
    let mut model = LithoGan::new(&net, 0);
    let mask = sample.mask.clone();
    c.bench_function("lithogan_per_clip", |b| {
        b.iter(|| model.predict(&mask).unwrap())
    });

    // Generator-only forward at the standard experiment scale.
    let net64 = NetConfig::scaled(64);
    let mut model64 = LithoGan::new(&net64, 0);
    let mask64 = Tensor::zeros(&[3, 64, 64]);
    c.bench_function("lithogan_per_clip_64px", |b| {
        b.iter(|| model64.predict(&mask64).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_inference
);
criterion_main!(benches);
