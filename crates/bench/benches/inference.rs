//! Per-clip prediction cost — Table 4 in microbenchmark form: rigorous
//! simulation vs one LithoGAN forward pass, plus the telemetry overhead
//! check (instrumented `predict` with telemetry disabled vs enabled must
//! differ by well under a few percent; the disabled path is one atomic
//! load per span site).
//!
//! Flags: `--samples=N`, `--min-sample-ms=N`, `--quick`, `--trace`,
//! `--metrics-out FILE`.

use litho_sim::RigorousSim;
use litho_tensor::Tensor;
use lithogan::{LithoGan, NetConfig};
use lithogan_bench::microbench::{fmt_duration, MicroBench};
use lithogan_bench::{dataset, finish_telemetry, Node, Scale};

fn main() {
    let scale = Scale::quick();
    lithogan_bench::init_telemetry_from_args(&[(
        "bench",
        litho_telemetry::Value::Str("inference".into()),
    )]);
    let mb = MicroBench::from_args();

    let ds = dataset(Node::N10, &scale).expect("dataset");
    let sample = &ds.samples[0];
    let grid = ds.config.sim_grid;

    // Rigorous golden flow per clip.
    let sim = RigorousSim::new(&ds.config.process, grid, 2048.0 / grid as f64).expect("sim");
    let mask_grid = sample.clip.to_mask_grid(grid);
    mb.run("rigorous_per_clip", || sim.simulate(&mask_grid).unwrap());

    // LithoGAN forward per clip (untrained weights time identically).
    let net = scale.net_config();
    let mut model = LithoGan::new(&net, 0);
    let mask = sample.mask.clone();
    mb.run("lithogan_per_clip", || model.predict(&mask).unwrap());

    // Generator-only forward at the standard experiment scale.
    let net64 = NetConfig::scaled(64);
    let mut model64 = LithoGan::new(&net64, 0);
    let mask64 = Tensor::zeros(&[3, 64, 64]);

    // Telemetry overhead: the same predict with spans disabled vs live.
    // `lithogan_per_clip_64px` above already timed this exact call, so
    // off-vs-that is the disabled-mode overhead (one atomic load per
    // instrumentation site — should sit inside run-to-run noise), while
    // on-vs-off is the cost of actually recording spans and histograms.
    let baseline = mb.run("lithogan_per_clip_64px", || model64.predict(&mask64).unwrap());
    let was_enabled = litho_telemetry::is_enabled();
    litho_telemetry::disable();
    let off = mb.run("predict_telemetry_off", || model64.predict(&mask64).unwrap());
    litho_telemetry::enable();
    let on = mb.run("predict_telemetry_on", || model64.predict(&mask64).unwrap());
    if !was_enabled {
        litho_telemetry::disable();
    }
    // Compare fastest samples: the min is the least noise-sensitive
    // statistic for a fixed workload on a shared machine.
    let disabled = (off.min.as_secs_f64() / baseline.min.as_secs_f64() - 1.0) * 100.0;
    let recording = (on.min.as_secs_f64() / off.min.as_secs_f64() - 1.0) * 100.0;
    println!(
        "disabled-telemetry overhead on predict: {disabled:+.2}% (baseline min {}, off min {})",
        fmt_duration(baseline.min),
        fmt_duration(off.min),
    );
    println!(
        "enabled-telemetry recording cost on predict: {recording:+.2}% (off min {}, on min {})",
        fmt_duration(off.min),
        fmt_duration(on.min),
    );

    finish_telemetry();
}
