//! Measures the train-step cost of model-health instrumentation: the
//! same tiny cGAN epoch with and without a `HealthMonitor` attached at
//! the default sampling stride (8). The acceptance bar is < 5% median
//! overhead; the process exits nonzero past it so the check can run as
//! a manual gate.
//!
//! Flags: `--samples=N`, `--min-sample-ms=N`, `--quick`.

use litho_tensor::rng::{Rng, SeedableRng, StdRng};
use litho_tensor::Tensor;
use lithogan::{Cgan, HealthConfig, HealthMonitor, NetConfig, TrainConfig, TrainPair};
use lithogan_bench::microbench::MicroBench;

fn pairs(net: &NetConfig, n: usize) -> Vec<TrainPair> {
    let mut rng = StdRng::seed_from_u64(11);
    let s = net.image_size;
    (0..n)
        .map(|_| {
            let mask = Tensor::from_vec(
                (0..3 * s * s).map(|_| rng.gen_range(0.0..1.0)).collect(),
                &[3, s, s],
            )
            .unwrap();
            let resist = Tensor::from_vec(
                (0..s * s).map(|_| rng.gen_range(0.0..1.0)).collect(),
                &[s, s],
            )
            .unwrap();
            TrainPair::from_dataset(&mask, &resist).unwrap()
        })
        .collect()
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 1,
        batch_size: 4,
        seed: 3,
        ..TrainConfig::paper()
    }
}

fn main() {
    let mb = MicroBench::from_args();
    let net = NetConfig::scaled(32);
    let data = pairs(&net, 8);
    let cfg = train_cfg();

    let mut plain = Cgan::new(&net, 5);
    let mut epoch = 0usize;
    let base = mb.run("cgan_epoch_plain", || {
        epoch += 1;
        plain.train_epoch(&data, &cfg, epoch).unwrap()
    });

    let path = std::env::temp_dir().join(format!("health-overhead-{}.jsonl", std::process::id()));
    let monitor = HealthMonitor::create(&path, HealthConfig::default()).unwrap();
    let mut monitored = Cgan::new(&net, 5);
    monitored.attach_health(&monitor);
    let mut epoch = 0usize;
    let with = mb.run("cgan_epoch_health_s8", || {
        epoch += 1;
        monitored.train_epoch(&data, &cfg, epoch).unwrap()
    });
    std::fs::remove_file(&path).ok();

    let overhead =
        (with.median.as_secs_f64() - base.median.as_secs_f64()) / base.median.as_secs_f64();
    let pct = overhead * 100.0;
    let ok = pct < 5.0;
    println!(
        "health overhead at stride 8: {pct:+.2}% (budget 5.00%) -> {}",
        if ok { "PASS" } else { "FAIL" }
    );
    if !ok {
        std::process::exit(1);
    }
}
