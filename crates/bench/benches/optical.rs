//! Criterion benches for the optical substrate: SOCS kernel construction
//! and aerial-image computation at compact vs rigorous rank — the
//! computational gap behind Table 4's rigorous-vs-ML runtime hierarchy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use litho_sim::{MaskGrid, OpticalModel, ProcessConfig, ResistModel, RigorousSim};

fn contact_mask(size: usize, pitch: f64) -> MaskGrid {
    let mut mask = MaskGrid::new(size, pitch);
    let c = size as f64 * pitch / 2.0;
    for (dx, dy) in [(0.0, 0.0), (120.0, 0.0), (0.0, 120.0), (-120.0, -120.0)] {
        mask.fill_rect_nm(c + dx - 45.0, c + dy - 45.0, c + dx + 45.0, c + dy + 45.0, 1.0);
    }
    mask
}

fn bench_aerial(c: &mut Criterion) {
    let process = ProcessConfig::n10();
    let mut group = c.benchmark_group("aerial_image");
    for &(size, kernels) in &[(128usize, 4usize), (256, 4), (256, 10)] {
        let pitch = 2048.0 / size as f64;
        let model = OpticalModel::with_settings(&process, size, pitch, 0.0, kernels).unwrap();
        let mask = contact_mask(size, pitch);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{size}px_{kernels}k")),
            &(),
            |b, _| b.iter(|| model.aerial_image(&mask).unwrap()),
        );
    }
    group.finish();
}

fn bench_rigorous_vs_compact(c: &mut Criterion) {
    let process = ProcessConfig::n10();
    let size = 256;
    let pitch = 2048.0 / size as f64;
    let mask = contact_mask(size, pitch);

    let compact = OpticalModel::new(&process, size, pitch).unwrap();
    let resist = ResistModel::new(process.resist);
    c.bench_function("compact_flow_256", |b| {
        b.iter(|| {
            let aerial = compact.aerial_image(&mask).unwrap();
            resist.develop(&aerial)
        })
    });

    let rigorous = RigorousSim::new(&process, size, pitch).unwrap();
    c.bench_function("rigorous_flow_256", |b| {
        b.iter(|| rigorous.simulate(&mask).unwrap())
    });
}

fn bench_resist(c: &mut Criterion) {
    let process = ProcessConfig::n10();
    let size = 256;
    let pitch = 2048.0 / size as f64;
    let model = OpticalModel::new(&process, size, pitch).unwrap();
    let mask = contact_mask(size, pitch);
    let aerial = model.aerial_image(&mask).unwrap();
    let resist = ResistModel::new(process.resist);
    c.bench_function("resist_develop_256", |b| b.iter(|| resist.develop(&aerial)));
    c.bench_function("contour_extract_256", |b| {
        let excess = resist.excess_field(&aerial);
        b.iter(|| litho_sim::extract_contours(&excess, size, pitch, 0.0).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_aerial, bench_rigorous_vs_compact, bench_resist
);
criterion_main!(benches);
