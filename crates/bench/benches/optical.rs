//! Microbenches for the optical substrate: SOCS kernel construction and
//! aerial-image computation at compact vs rigorous rank — the
//! computational gap behind Table 4's rigorous-vs-ML runtime hierarchy.
//!
//! Flags: `--samples=N`, `--min-sample-ms=N`, `--quick`, `--trace`,
//! `--metrics-out FILE`.

use litho_sim::{MaskGrid, OpticalModel, ProcessConfig, ResistModel, RigorousSim};
use lithogan_bench::microbench::MicroBench;

fn contact_mask(size: usize, pitch: f64) -> MaskGrid {
    let mut mask = MaskGrid::new(size, pitch);
    let c = size as f64 * pitch / 2.0;
    for (dx, dy) in [(0.0, 0.0), (120.0, 0.0), (0.0, 120.0), (-120.0, -120.0)] {
        mask.fill_rect_nm(c + dx - 45.0, c + dy - 45.0, c + dx + 45.0, c + dy + 45.0, 1.0);
    }
    mask
}

fn bench_aerial(mb: &MicroBench) {
    let process = ProcessConfig::n10();
    for &(size, kernels) in &[(128usize, 4usize), (256, 4), (256, 10)] {
        let pitch = 2048.0 / size as f64;
        let model = OpticalModel::with_settings(&process, size, pitch, 0.0, kernels).unwrap();
        let mask = contact_mask(size, pitch);
        mb.run(&format!("aerial_image_{size}px_{kernels}k"), || {
            model.aerial_image(&mask).unwrap()
        });
    }
}

fn bench_rigorous_vs_compact(mb: &MicroBench) {
    let process = ProcessConfig::n10();
    let size = 256;
    let pitch = 2048.0 / size as f64;
    let mask = contact_mask(size, pitch);

    let compact = OpticalModel::new(&process, size, pitch).unwrap();
    let resist = ResistModel::new(process.resist);
    mb.run("compact_flow_256", || {
        let aerial = compact.aerial_image(&mask).unwrap();
        resist.develop(&aerial)
    });

    let rigorous = RigorousSim::new(&process, size, pitch).unwrap();
    mb.run("rigorous_flow_256", || rigorous.simulate(&mask).unwrap());
}

fn bench_resist(mb: &MicroBench) {
    let process = ProcessConfig::n10();
    let size = 256;
    let pitch = 2048.0 / size as f64;
    let model = OpticalModel::new(&process, size, pitch).unwrap();
    let mask = contact_mask(size, pitch);
    let aerial = model.aerial_image(&mask).unwrap();
    let resist = ResistModel::new(process.resist);
    mb.run("resist_develop_256", || resist.develop(&aerial));
    let excess = resist.excess_field(&aerial);
    mb.run("contour_extract_256", || {
        litho_sim::extract_contours(&excess, size, pitch, 0.0).unwrap()
    });
}

fn main() {
    lithogan_bench::init_telemetry_from_args(&[(
        "bench",
        litho_telemetry::Value::Str("optical".into()),
    )]);
    let mb = MicroBench::from_args();
    bench_aerial(&mb);
    bench_rigorous_vs_compact(&mb);
    bench_resist(&mb);
    lithogan_bench::finish_telemetry();
}
