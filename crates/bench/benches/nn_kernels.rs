//! Microbenches for the NN substrate: GEMM, im2col convolution
//! forward/backward, and the FFT used by the optical model.
//!
//! Flags: `--samples=N`, `--min-sample-ms=N`, `--quick`, `--trace`,
//! `--metrics-out FILE`, `--json-out FILE` (merge medians into a
//! `BENCH_KERNELS.json` for the `perf_gate` bin).

use litho_tensor::rng::{Rng, SeedableRng};

use litho_nn::{Conv2d, ConvTranspose2d, Layer, Phase};
use litho_tensor::fft::{fft2_in_place, FftDirection};
use litho_tensor::profile::KernelCost;
use litho_tensor::{matmul, Complex, Tensor};
use lithogan_bench::microbench::MicroBench;

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = litho_tensor::rng::StdRng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims).unwrap()
}

fn bench_matmul(mb: &MicroBench) {
    for &n in &[64usize, 256, 512] {
        let a = random_tensor(&[n, n], 1);
        let b = random_tensor(&[n, n], 2);
        mb.run_costed(&format!("matmul_{n}"), KernelCost::gemm(n, n, n), || {
            matmul(&a, &b).unwrap()
        });
    }
}

/// Closed-form cost of one im2col convolution step on a `batch` of
/// `cin`-channel inputs producing `cout × out_hw × out_hw` outputs with
/// `ks × ks` filters: the lowering plus its GEMM, and for training steps
/// the full backward (input-gradient GEMM + col2im scatter, plus the
/// weight-gradient GEMM) on top of the forward the bench closure reruns.
fn conv_cost(batch: usize, cin: usize, cout: usize, out_hw: usize, ks: usize, train: bool) -> KernelCost {
    let k = cin * ks * ks;
    let cols = batch * out_hw * out_hw;
    let fwd = KernelCost::im2col(k, cols).plus(KernelCost::gemm(cout, cols, k));
    if !train {
        return fwd;
    }
    fwd.plus(KernelCost::gemm(k, cols, cout))
        .plus(KernelCost::col2im(k, cols))
        .plus(KernelCost::gemm(cout, k, cols))
}

fn bench_conv(mb: &MicroBench) {
    let mut rng = litho_tensor::rng::StdRng::seed_from_u64(3);
    // The paper's first generator layer at scaled resolution: 3->64, 5x5/2.
    let mut conv = Conv2d::new(3, 64, 5, 2, 2, &mut rng);
    let x = random_tensor(&[4, 3, 64, 64], 4);
    mb.run_costed("conv_fwd_4x3x64x64", conv_cost(4, 3, 64, 32, 5, false), || {
        conv.forward(&x, Phase::Eval).unwrap()
    });
    mb.run_costed(
        "conv_fwd_bwd_4x3x64x64",
        conv_cost(4, 3, 64, 32, 5, true),
        || {
            let y = conv.forward(&x, Phase::Train).unwrap();
            conv.zero_grad();
            conv.backward(&y).unwrap()
        },
    );

    let mut deconv = ConvTranspose2d::new(64, 32, 5, 2, 2, 1, &mut rng);
    let z = random_tensor(&[4, 64, 16, 16], 5);
    // Deconv forward = Wᵀ·x GEMM into a [out_c*kh*kw, n*ih*iw] column
    // matrix, then a col2im scatter — costed so the gate tracks GFLOP/s.
    let taps = 32 * 5 * 5;
    let dcols = 4 * 16 * 16;
    mb.run_costed(
        "deconv_fwd_4x64x16x16",
        KernelCost::gemm(taps, dcols, 64).plus(KernelCost::col2im(taps, dcols)),
        || deconv.forward(&z, Phase::Eval).unwrap(),
    );
}

/// The generator's post-conv batchnorm at the paper's second feature map
/// scale: one full train-mode forward (moments + normalize/affine).
fn bench_batchnorm(mb: &MicroBench) {
    let mut bn = litho_nn::BatchNorm2d::new(64);
    let x = random_tensor(&[4, 64, 64, 64], 9);
    let elements = 4 * 64 * 64 * 64;
    mb.run_costed(
        "batchnorm_4x64x64x64",
        KernelCost::batchnorm(elements),
        || bn.forward(&x, Phase::Train).unwrap(),
    );
}

/// The paper's full-resolution first generator layer: 3->64, 5x5/2 on a
/// 256x256 mask batch — the headline shape of the perf-gate baseline.
fn bench_conv_paper(mb: &MicroBench) {
    let mut rng = litho_tensor::rng::StdRng::seed_from_u64(7);
    let mut conv = Conv2d::new(3, 64, 5, 2, 2, &mut rng);
    let x = random_tensor(&[4, 3, 256, 256], 8);
    mb.run_costed(
        "conv_fwd_4x3x256x256",
        conv_cost(4, 3, 64, 128, 5, false),
        || conv.forward(&x, Phase::Eval).unwrap(),
    );
    mb.run_costed(
        "conv_fwd_bwd_4x3x256x256",
        conv_cost(4, 3, 64, 128, 5, true),
        || {
            let y = conv.forward(&x, Phase::Train).unwrap();
            conv.zero_grad();
            conv.backward(&y).unwrap()
        },
    );
}

fn bench_fft(mb: &MicroBench) {
    for &n in &[128usize, 256, 512] {
        let mut rng = litho_tensor::rng::StdRng::seed_from_u64(6);
        let data: Vec<Complex> = (0..n * n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        mb.run_costed(&format!("fft2_{n}"), KernelCost::fft2(n, n), || {
            let mut buf = data.clone();
            fft2_in_place(&mut buf, n, n, FftDirection::Forward).unwrap();
            buf
        });
    }
}

fn main() {
    lithogan_bench::init_telemetry_from_args(&[(
        "bench",
        litho_telemetry::Value::Str("nn_kernels".into()),
    )]);
    let mb = MicroBench::from_args();
    bench_matmul(&mb);
    bench_conv(&mb);
    bench_conv_paper(&mb);
    bench_batchnorm(&mb);
    bench_fft(&mb);
    mb.flush_json().expect("writing --json-out");
    lithogan_bench::finish_telemetry();
}
