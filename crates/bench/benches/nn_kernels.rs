//! Criterion benches for the NN substrate: GEMM, im2col convolution
//! forward/backward, and the FFT used by the optical model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

use litho_nn::{Conv2d, ConvTranspose2d, Layer, Phase};
use litho_tensor::fft::{fft2_in_place, FftDirection};
use litho_tensor::{matmul, Complex, Tensor};

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims).unwrap()
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 256, 512] {
        let a = random_tensor(&[n, n], 1);
        let b = random_tensor(&[n, n], 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |bench, _| {
            bench.iter(|| matmul(&a, &b).unwrap())
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    // The paper's first generator layer at scaled resolution: 3->64, 5x5/2.
    let mut conv = Conv2d::new(3, 64, 5, 2, 2, &mut rng);
    let x = random_tensor(&[4, 3, 64, 64], 4);
    c.bench_function("conv_fwd_4x3x64x64", |b| {
        b.iter(|| conv.forward(&x, Phase::Eval).unwrap())
    });
    c.bench_function("conv_fwd_bwd_4x3x64x64", |b| {
        b.iter(|| {
            let y = conv.forward(&x, Phase::Train).unwrap();
            conv.zero_grad();
            conv.backward(&y).unwrap()
        })
    });

    let mut deconv = ConvTranspose2d::new(64, 32, 5, 2, 2, 1, &mut rng);
    let z = random_tensor(&[4, 64, 16, 16], 5);
    c.bench_function("deconv_fwd_4x64x16x16", |b| {
        b.iter(|| deconv.forward(&z, Phase::Eval).unwrap())
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2");
    for &n in &[128usize, 256, 512] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let data: Vec<Complex> = (0..n * n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |bench, _| {
            bench.iter(|| {
                let mut buf = data.clone();
                fft2_in_place(&mut buf, n, n, FftDirection::Forward).unwrap();
                buf
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv, bench_fft
);
criterion_main!(benches);
