//! Measures what runs-index maintenance adds to a run's lifecycle: the
//! same create -> append 8 sample records -> finalize -> remove sequence
//! with the `index.jsonl` append enabled and disabled. The acceptance
//! bar is that the delta stays under 1% of one tiny training epoch's
//! wall clock — the smallest run that would carry an index entry — so
//! indexing every invocation is effectively free. The process exits
//! nonzero past the budget so the check can run as a manual gate.
//!
//! Flags: `--samples=N`, `--min-sample-ms=N`, `--quick`.

use litho_ledger::RunLedger;
use litho_metrics::SampleRecord;
use litho_tensor::rng::{Rng, SeedableRng, StdRng};
use litho_tensor::Tensor;
use lithogan::{Cgan, NetConfig, TrainConfig, TrainPair};
use lithogan_bench::microbench::MicroBench;
use std::path::Path;

fn record(i: u64) -> SampleRecord {
    SampleRecord {
        sample: i,
        pixel_accuracy: 0.95,
        class_accuracy: 0.9,
        mean_iou: 0.85,
        ede_mean_nm: Some(3.0),
        ede_edges_nm: Some([2.0, 4.0, 3.0, 3.0]),
        center_error_nm: Some(0.5),
        clip_fingerprint: Some(format!("{i:016x}")),
        family: Some("chain1d".to_string()),
    }
}

/// One full ledger lifecycle under `root`, with or without the index
/// append at finalize. The run directory is removed again inside the
/// measured region; that cost is identical in both arms, so the delta
/// isolates the index write.
fn lifecycle(root: &Path, index: bool) {
    let mut ledger = RunLedger::create(root, "bench", Some(1), Vec::new(), None).unwrap();
    ledger.set_index_enabled(index);
    for i in 0..8 {
        ledger.append_record(&record(i)).unwrap();
    }
    ledger.finalize(true).unwrap();
    std::fs::remove_dir_all(ledger.dir()).unwrap();
}

fn pairs(net: &NetConfig, n: usize) -> Vec<TrainPair> {
    let mut rng = StdRng::seed_from_u64(11);
    let s = net.image_size;
    (0..n)
        .map(|_| {
            let mask = Tensor::from_vec(
                (0..3 * s * s).map(|_| rng.gen_range(0.0..1.0)).collect(),
                &[3, s, s],
            )
            .unwrap();
            let resist = Tensor::from_vec(
                (0..s * s).map(|_| rng.gen_range(0.0..1.0)).collect(),
                &[s, s],
            )
            .unwrap();
            TrainPair::from_dataset(&mask, &resist).unwrap()
        })
        .collect()
}

fn main() {
    let mb = MicroBench::from_args();
    let root = std::env::temp_dir().join(format!("index-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();

    let without = mb.run("ledger_lifecycle_noindex", || lifecycle(&root, false));
    let with = mb.run("ledger_lifecycle_index", || lifecycle(&root, true));

    let net = NetConfig::scaled(32);
    let data = pairs(&net, 8);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 4,
        seed: 3,
        ..TrainConfig::paper()
    };
    let mut model = Cgan::new(&net, 5);
    let mut epoch = 0usize;
    let base = mb.run("cgan_epoch_tiny", || {
        epoch += 1;
        model.train_epoch(&data, &cfg, epoch).unwrap()
    });
    std::fs::remove_dir_all(&root).ok();

    let delta = (with.median.as_secs_f64() - without.median.as_secs_f64()).max(0.0);
    let pct = delta / base.median.as_secs_f64() * 100.0;
    let ok = pct < 1.0;
    println!(
        "index maintenance per run: {:.1} us = {pct:.3}% of a tiny train epoch (budget 1.000%) -> {}",
        delta * 1e6,
        if ok { "PASS" } else { "FAIL" }
    );
    if !ok {
        std::process::exit(1);
    }
}
