//! Criterion benches for the data-preparation pipeline: clip generation,
//! SRAF insertion, model-based OPC and rasterisation (the Mentor-Calibre
//! substitute of DESIGN.md's inventory).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use litho_layout::{
    insert_srafs, rasterize_clip, ClipFamily, ClipGenerator, OpcConfig, OpcEngine, RasterConfig,
    SrafRules,
};
use litho_sim::ProcessConfig;

fn bench_pipeline(c: &mut Criterion) {
    let process = ProcessConfig::n10();
    let generator = ClipGenerator::new(&process);
    let rules = SrafRules::for_process(&process);
    let opc = OpcEngine::new(&process, 2048.0, OpcConfig::default()).unwrap();

    c.bench_function("clip_generate", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        b.iter(|| generator.generate(ClipFamily::Array2d, &mut rng))
    });

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let clip = generator.generate(ClipFamily::Array2d, &mut rng);

    c.bench_function("sraf_insert", |b| {
        b.iter(|| {
            let mut work = clip.clone();
            insert_srafs(&mut work, &rules)
        })
    });

    let mut with_srafs = clip.clone();
    insert_srafs(&mut with_srafs, &rules);
    c.bench_function("opc_correct", |b| b.iter(|| opc.correct(&with_srafs).unwrap()));

    let corrected = opc.correct(&with_srafs).unwrap().clip;
    c.bench_function("rasterize_256px", |b| {
        b.iter(|| rasterize_clip(&corrected, &RasterConfig::paper()).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_pipeline
);
criterion_main!(benches);
