//! Microbenches for the data-preparation pipeline: clip generation, SRAF
//! insertion, model-based OPC and rasterisation (the Mentor-Calibre
//! substitute of DESIGN.md's inventory).
//!
//! Flags: `--samples=N`, `--min-sample-ms=N`, `--quick`, `--trace`,
//! `--metrics-out FILE`, `--json-out FILE` (merge medians into a
//! `BENCH_KERNELS.json` for the `perf_gate` bin).

use litho_tensor::rng::SeedableRng;

use litho_layout::{
    insert_srafs, rasterize_clip, ClipFamily, ClipGenerator, OpcConfig, OpcEngine, RasterConfig,
    SrafRules,
};
use litho_sim::ProcessConfig;
use lithogan_bench::microbench::MicroBench;

fn main() {
    lithogan_bench::init_telemetry_from_args(&[(
        "bench",
        litho_telemetry::Value::Str("pipeline".into()),
    )]);
    let mb = MicroBench::from_args();

    let process = ProcessConfig::n10();
    let generator = ClipGenerator::new(&process);
    let rules = SrafRules::for_process(&process);
    let opc = OpcEngine::new(&process, 2048.0, OpcConfig::default()).unwrap();

    let mut rng = litho_tensor::rng::StdRng::seed_from_u64(0);
    mb.run("clip_generate", || {
        generator.generate(ClipFamily::Array2d, &mut rng)
    });

    let mut rng = litho_tensor::rng::StdRng::seed_from_u64(1);
    let clip = generator.generate(ClipFamily::Array2d, &mut rng);

    mb.run("sraf_insert", || {
        let mut work = clip.clone();
        insert_srafs(&mut work, &rules)
    });

    let mut with_srafs = clip.clone();
    insert_srafs(&mut with_srafs, &rules);
    mb.run("opc_correct", || opc.correct(&with_srafs).unwrap());

    let corrected = opc.correct(&with_srafs).unwrap().clip;
    mb.run("rasterize_256px", || {
        rasterize_clip(&corrected, &RasterConfig::paper()).unwrap()
    });

    mb.flush_json().expect("writing --json-out");
    lithogan_bench::finish_telemetry();
}
