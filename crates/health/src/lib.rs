//! Model-health schema and diagnoser for the LithoGAN reproduction.
//!
//! PR 1/2 made runs observable in *time* (spans, traces, the run
//! ledger); this crate makes them observable in *health*: is the model
//! learning, or silently dying? It owns three things:
//!
//! * [`record`] — the `health.jsonl` schema written into `runs/<id>/`
//!   during training: per-layer activation/gradient summaries, optimizer
//!   update-to-weight ratios, and per-epoch GAN balance signals.
//! * [`diagnose`] — six named failure modes (vanishing-gradient,
//!   exploding-update, dead-layer, d-overpowers-g, mode-collapse,
//!   nan-poisoned) with first-seen epoch/step attribution.
//! * [`json`] — a re-export of `litho-json`, the workspace's shared
//!   zero-dependency JSON value model (parser + writer), kept under the
//!   old path for existing consumers.
//!
//! The crate is std-only and deliberately does *not* depend on
//! `litho-nn`: the training stack produces records via its own hook
//! types, and analyzers consume them here, so the ledger/CLI side stays
//! free of the NN dependency graph.

pub mod diagnose;
pub use litho_json as json;
pub mod record;

pub use diagnose::{diagnose, AbortCondition, Diagnosis, DiagnosisKind, Streak, Thresholds};
pub use record::{
    decode_record, parse_health_file, parse_health_str, CenterEpochRecord, GanEpochRecord,
    HealthParse, HealthRecord, HealthWriter, LayerRecord, Pass, UpdateRecord,
};
