//! The `health.jsonl` record schema: writer and tolerant reader.
//!
//! One JSON object per line, discriminated by a `"kind"` field:
//!
//! * `layer` — per-layer activation (`pass: "fwd"`) or gradient
//!   (`pass: "bwd"`) summary from a sampled training step.
//! * `update` — per-parameter update-to-weight ratio from a sampled
//!   optimizer step.
//! * `gan_epoch` — per-epoch GAN balance signals from the cGAN loop.
//! * `center_epoch` — per-epoch regression signals from the center CNN.
//!
//! Like the telemetry trace, the stream is append-only and may end
//! mid-line when a run dies; the reader is line-tolerant and reports a
//! truncated tail separately from corruption.

use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::json::{write_str, Json};

/// Identifies which network a record came from: `"G"` (generator),
/// `"D"` (discriminator) or `"C"` (center CNN).
pub type NetId = String;

/// Direction of the sampled pass a [`LayerRecord`] summarizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    Forward,
    Backward,
}

impl Pass {
    pub fn as_str(self) -> &'static str {
        match self {
            Pass::Forward => "fwd",
            Pass::Backward => "bwd",
        }
    }

    pub fn parse(s: &str) -> Option<Pass> {
        match s {
            "fwd" => Some(Pass::Forward),
            "bwd" => Some(Pass::Backward),
            _ => None,
        }
    }
}

/// Summary of one layer's output activation or input gradient at one
/// sampled training step.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRecord {
    pub net: NetId,
    pub pass: Pass,
    /// 0-based training epoch.
    pub epoch: u64,
    /// Global step counter within the run (monotonic across epochs).
    pub step: u64,
    /// Layer position within its `Sequential`.
    pub layer: u64,
    /// Layer display name (`Conv2d(2→64)`, `ReLU`, ...).
    pub name: String,
    /// Elements summarized.
    pub count: u64,
    pub mean: f64,
    pub std: f64,
    pub l2: f64,
    pub abs_max: f64,
    /// Fraction of exactly-zero elements (dead-ReLU fraction on a ReLU
    /// output).
    pub zero_frac: f64,
    /// NaN sentinel count.
    pub nan: u64,
    /// ±Inf sentinel count.
    pub inf: u64,
}

impl LayerRecord {
    /// Whether the summarized tensor contained NaN/Inf.
    pub fn is_poisoned(&self) -> bool {
        self.nan > 0 || self.inf > 0
    }
}

/// One parameter tensor's update-to-weight ratio at one sampled
/// optimizer step.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRecord {
    pub net: NetId,
    pub epoch: u64,
    pub step: u64,
    /// Parameter position in the network's stable visitation order.
    pub param: u64,
    pub update_l2: f64,
    pub weight_l2: f64,
    /// `update_l2 / weight_l2` (epsilon-guarded at the source).
    pub ratio: f64,
}

/// Per-epoch GAN balance signals from the cGAN training loop.
#[derive(Debug, Clone, PartialEq)]
pub struct GanEpochRecord {
    pub epoch: u64,
    /// Fraction of real samples the discriminator scored > 0.5.
    pub d_real_acc: f64,
    /// Fraction of generated samples the discriminator scored < 0.5.
    pub d_fake_acc: f64,
    pub g_loss: f64,
    pub d_loss: f64,
    /// `d_loss / g_loss` (epsilon-guarded).
    pub loss_ratio: f64,
    /// Mean per-pixel batch standard deviation of generated resist
    /// patterns — the mode-collapse proxy: collapsed generators emit
    /// near-identical outputs regardless of input.
    pub diversity: f64,
}

/// Per-epoch signals from the center-CNN regression loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CenterEpochRecord {
    pub epoch: u64,
    pub mse: f64,
    pub grad_norm: f64,
}

/// One line of `health.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthRecord {
    Layer(LayerRecord),
    Update(UpdateRecord),
    Gan(GanEpochRecord),
    Center(CenterEpochRecord),
}

/// Append a number field, mapping non-finite values to `null` (the
/// reader maps `null` back to NaN, so poison survives a round-trip).
fn push_num(out: &mut String, key: &str, v: f64) {
    out.push(',');
    write_str(out, key);
    out.push(':');
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_u64(out: &mut String, key: &str, v: u64) {
    out.push(',');
    write_str(out, key);
    out.push(':');
    out.push_str(&v.to_string());
}

fn push_str(out: &mut String, key: &str, v: &str) {
    out.push(',');
    write_str(out, key);
    out.push(':');
    write_str(out, v);
}

impl HealthRecord {
    /// The `"kind"` discriminator of this record.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthRecord::Layer(_) => "layer",
            HealthRecord::Update(_) => "update",
            HealthRecord::Gan(_) => "gan_epoch",
            HealthRecord::Center(_) => "center_epoch",
        }
    }

    /// Renders as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind());
        out.push('"');
        match self {
            HealthRecord::Layer(r) => {
                push_str(&mut out, "net", &r.net);
                push_str(&mut out, "pass", r.pass.as_str());
                push_u64(&mut out, "epoch", r.epoch);
                push_u64(&mut out, "step", r.step);
                push_u64(&mut out, "layer", r.layer);
                push_str(&mut out, "name", &r.name);
                push_u64(&mut out, "count", r.count);
                push_num(&mut out, "mean", r.mean);
                push_num(&mut out, "std", r.std);
                push_num(&mut out, "l2", r.l2);
                push_num(&mut out, "abs_max", r.abs_max);
                push_num(&mut out, "zero_frac", r.zero_frac);
                push_u64(&mut out, "nan", r.nan);
                push_u64(&mut out, "inf", r.inf);
            }
            HealthRecord::Update(r) => {
                push_str(&mut out, "net", &r.net);
                push_u64(&mut out, "epoch", r.epoch);
                push_u64(&mut out, "step", r.step);
                push_u64(&mut out, "param", r.param);
                push_num(&mut out, "update_l2", r.update_l2);
                push_num(&mut out, "weight_l2", r.weight_l2);
                push_num(&mut out, "ratio", r.ratio);
            }
            HealthRecord::Gan(r) => {
                push_u64(&mut out, "epoch", r.epoch);
                push_num(&mut out, "d_real_acc", r.d_real_acc);
                push_num(&mut out, "d_fake_acc", r.d_fake_acc);
                push_num(&mut out, "g_loss", r.g_loss);
                push_num(&mut out, "d_loss", r.d_loss);
                push_num(&mut out, "loss_ratio", r.loss_ratio);
                push_num(&mut out, "diversity", r.diversity);
            }
            HealthRecord::Center(r) => {
                push_u64(&mut out, "epoch", r.epoch);
                push_num(&mut out, "mse", r.mse);
                push_num(&mut out, "grad_norm", r.grad_norm);
            }
        }
        out.push('}');
        out
    }
}

/// `null`/missing numbers decode to NaN so poisoned values stay visible.
fn num(v: &Json, key: &str) -> f64 {
    match v.get(key) {
        Some(Json::Num(n)) => *n,
        _ => f64::NAN,
    }
}

fn uint(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn text(v: &Json, key: &str) -> Option<String> {
    Some(v.get(key)?.as_str()?.to_string())
}

/// Decodes one already-parsed JSONL object into a health record.
/// Public so incremental consumers (the ledger's live run tailer) can
/// decode line-by-line without re-implementing the schema.
pub fn decode_record(v: &Json) -> Option<HealthRecord> {
    match v.get("kind")?.as_str()? {
        "layer" => Some(HealthRecord::Layer(LayerRecord {
            net: text(v, "net")?,
            pass: Pass::parse(v.get("pass")?.as_str()?)?,
            epoch: uint(v, "epoch")?,
            step: uint(v, "step")?,
            layer: uint(v, "layer")?,
            name: text(v, "name")?,
            count: uint(v, "count")?,
            mean: num(v, "mean"),
            std: num(v, "std"),
            l2: num(v, "l2"),
            abs_max: num(v, "abs_max"),
            zero_frac: num(v, "zero_frac"),
            nan: uint(v, "nan")?,
            inf: uint(v, "inf")?,
        })),
        "update" => Some(HealthRecord::Update(UpdateRecord {
            net: text(v, "net")?,
            epoch: uint(v, "epoch")?,
            step: uint(v, "step")?,
            param: uint(v, "param")?,
            update_l2: num(v, "update_l2"),
            weight_l2: num(v, "weight_l2"),
            ratio: num(v, "ratio"),
        })),
        "gan_epoch" => Some(HealthRecord::Gan(GanEpochRecord {
            epoch: uint(v, "epoch")?,
            d_real_acc: num(v, "d_real_acc"),
            d_fake_acc: num(v, "d_fake_acc"),
            g_loss: num(v, "g_loss"),
            d_loss: num(v, "d_loss"),
            loss_ratio: num(v, "loss_ratio"),
            diversity: num(v, "diversity"),
        })),
        "center_epoch" => Some(HealthRecord::Center(CenterEpochRecord {
            epoch: uint(v, "epoch")?,
            mse: num(v, "mse"),
            grad_norm: num(v, "grad_norm"),
        })),
        _ => None,
    }
}

/// Result of decoding a `health.jsonl` stream.
#[derive(Debug, Default, Clone)]
pub struct HealthParse {
    pub records: Vec<HealthRecord>,
    /// Malformed or unknown-kind non-final lines.
    pub skipped_lines: usize,
    /// True when the final line failed to decode — a killed run.
    pub truncated_tail: bool,
}

/// Decodes a `health.jsonl` stream from a string (truncation-tolerant,
/// via the shared [`litho_json::jsonl`] machinery).
pub fn parse_health_str(text: &str) -> HealthParse {
    let parse = litho_json::jsonl::parse_jsonl_with(text, decode_record);
    HealthParse {
        records: parse.records,
        skipped_lines: parse.skipped_lines,
        truncated_tail: parse.truncated_tail,
    }
}

/// Decodes a `health.jsonl` stream from a file.
///
/// # Errors
///
/// Propagates I/O errors (malformed *content* never errors).
pub fn parse_health_file(path: &Path) -> io::Result<HealthParse> {
    Ok(parse_health_str(&std::fs::read_to_string(path)?))
}

/// Buffered line-at-a-time `health.jsonl` writer.
pub struct HealthWriter {
    writer: BufWriter<std::fs::File>,
}

impl std::fmt::Debug for HealthWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HealthWriter")
    }
}

impl HealthWriter {
    /// Creates (or truncates) `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(HealthWriter {
            writer: BufWriter::new(std::fs::File::create(path)?),
        })
    }

    /// Appends one record. Write failures are swallowed: health capture
    /// must never take down the training run it observes.
    pub fn append(&mut self, record: &HealthRecord) {
        let _ = writeln!(self.writer, "{}", record.to_jsonl());
    }

    /// Flushes buffered lines to disk (end of epoch).
    pub fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(step: u64, l2: f64, nan: u64) -> HealthRecord {
        HealthRecord::Layer(LayerRecord {
            net: "G".into(),
            pass: Pass::Backward,
            epoch: 0,
            step,
            layer: 2,
            name: "Conv2d(2→64)".into(),
            count: 64,
            mean: 0.01,
            std: 0.5,
            l2,
            abs_max: 1.5,
            zero_frac: 0.25,
            nan,
            inf: 0,
        })
    }

    #[test]
    fn round_trips_every_kind() {
        let records = vec![
            layer(4, 0.75, 0),
            HealthRecord::Update(UpdateRecord {
                net: "D".into(),
                epoch: 1,
                step: 9,
                param: 3,
                update_l2: 1e-3,
                weight_l2: 0.9,
                ratio: 1.1e-3,
            }),
            HealthRecord::Gan(GanEpochRecord {
                epoch: 2,
                d_real_acc: 0.8,
                d_fake_acc: 0.7,
                g_loss: 1.3,
                d_loss: 0.6,
                loss_ratio: 0.46,
                diversity: 0.11,
            }),
            HealthRecord::Center(CenterEpochRecord {
                epoch: 2,
                mse: 0.02,
                grad_norm: 0.4,
            }),
        ];
        let text: String = records
            .iter()
            .map(|r| r.to_jsonl() + "\n")
            .collect();
        let parsed = parse_health_str(&text);
        assert_eq!(parsed.records, records);
        assert_eq!(parsed.skipped_lines, 0);
        assert!(!parsed.truncated_tail);
    }

    #[test]
    fn non_finite_values_survive_as_nan() {
        let rec = HealthRecord::Gan(GanEpochRecord {
            epoch: 0,
            d_real_acc: 0.5,
            d_fake_acc: 0.5,
            g_loss: f64::NAN,
            d_loss: f64::INFINITY,
            loss_ratio: f64::NAN,
            diversity: 0.1,
        });
        let line = rec.to_jsonl();
        assert!(line.contains("\"g_loss\":null"));
        let parsed = parse_health_str(&line);
        match &parsed.records[0] {
            HealthRecord::Gan(g) => {
                assert!(g.g_loss.is_nan());
                assert!(g.d_loss.is_nan(), "inf flattens to null → NaN");
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn tolerates_truncated_tail_and_corruption() {
        let good = layer(1, 0.5, 0).to_jsonl();
        let text = format!("{good}\nnot json\n{good}\n{{\"kind\":\"layer\",\"net\"");
        let parsed = parse_health_str(&text);
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.skipped_lines, 1);
        assert!(parsed.truncated_tail);
    }

    #[test]
    fn poison_sentinels_are_visible() {
        match layer(1, 0.5, 3) {
            HealthRecord::Layer(r) => assert!(r.is_poisoned()),
            _ => unreachable!(),
        }
    }
}
