//! The training-run diagnoser: six named failure modes over a decoded
//! `health.jsonl` stream.
//!
//! Each rule produces at most one [`Diagnosis`] per subject (a layer, a
//! parameter, a network or the run), stamped with the first epoch/step
//! where the qualifying window *started* — the moment an operator staring
//! at the run should rewind to. Thresholds live in [`Thresholds`] and are
//! documented in DESIGN §4c; streak requirements exist to suppress
//! single-step noise (e.g. the update ratio of a freshly-initialized bias
//! is legitimately huge for a step or two).

use std::collections::BTreeMap;

use crate::record::{HealthRecord, Pass};

/// The six named failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagnosisKind {
    /// NaN/Inf sentinels in any activation, gradient or loss.
    NanPoisoned,
    /// A layer's backward gradient ℓ2 collapses to ~0 while gradients
    /// elsewhere in the same pass are healthy.
    VanishingGradient,
    /// A parameter's update-to-weight ratio stays ≥ 1 across consecutive
    /// sampled steps — the optimizer is overshooting.
    ExplodingUpdate,
    /// A layer's output is (almost) all zeros on every sampled pass —
    /// dead ReLU.
    DeadLayer,
    /// The discriminator classifies both real and fake near-perfectly
    /// for consecutive epochs; the generator receives no usable signal.
    DOverpowersG,
    /// Generator output diversity (batch std) collapses — mode collapse.
    ModeCollapse,
}

impl DiagnosisKind {
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosisKind::NanPoisoned => "nan-poisoned",
            DiagnosisKind::VanishingGradient => "vanishing-gradient",
            DiagnosisKind::ExplodingUpdate => "exploding-update",
            DiagnosisKind::DeadLayer => "dead-layer",
            DiagnosisKind::DOverpowersG => "d-overpowers-g",
            DiagnosisKind::ModeCollapse => "mode-collapse",
        }
    }

    /// Parses a diagnosis name as used by `--fail-on`/`--abort-on` lists.
    /// Accepts the short aliases `nan` and `collapse`.
    pub fn parse(s: &str) -> Option<DiagnosisKind> {
        match s.trim() {
            "nan" | "nan-poisoned" => Some(DiagnosisKind::NanPoisoned),
            "vanishing-gradient" => Some(DiagnosisKind::VanishingGradient),
            "exploding-update" => Some(DiagnosisKind::ExplodingUpdate),
            "dead-layer" => Some(DiagnosisKind::DeadLayer),
            "d-overpowers-g" => Some(DiagnosisKind::DOverpowersG),
            "collapse" | "mode-collapse" => Some(DiagnosisKind::ModeCollapse),
            _ => None,
        }
    }

    /// Parses a comma-separated list of diagnosis names.
    ///
    /// # Errors
    ///
    /// Returns the first unrecognized name.
    pub fn parse_list(s: &str) -> Result<Vec<DiagnosisKind>, String> {
        let mut kinds = Vec::new();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let kind = DiagnosisKind::parse(part)
                .ok_or_else(|| format!("unknown diagnosis {:?}", part.trim()))?;
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
        Ok(kinds)
    }
}

/// One confirmed anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    pub kind: DiagnosisKind,
    /// What is sick: `"G layer 3 (ReLU)"`, `"D param 7"`, `"cgan"`, ...
    pub subject: String,
    /// Epoch where the qualifying window started.
    pub first_epoch: u64,
    /// Step where the qualifying window started (`None` for per-epoch
    /// signals, which carry no step counter).
    pub first_step: Option<u64>,
    /// Human-readable evidence.
    pub detail: String,
}

impl Diagnosis {
    /// One-line rendering used by reports and golden files.
    pub fn to_line(&self) -> String {
        let at = match self.first_step {
            Some(step) => format!("epoch {} step {}", self.first_epoch, step),
            None => format!("epoch {}", self.first_epoch),
        };
        format!(
            "{:<20} {:<24} first seen {}  ({})",
            self.kind.as_str(),
            self.subject,
            at,
            self.detail
        )
    }
}

/// Tunable rule thresholds; `Default` matches DESIGN §4c.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// A backward ℓ2 below this is "vanished"...
    pub vanish_l2: f64,
    /// ...but only while some layer in the same pass exceeds this
    /// (otherwise the whole pass is quiet, e.g. at convergence).
    pub vanish_context_l2: f64,
    /// Consecutive sampled passes required.
    pub vanish_passes: usize,
    /// Update-to-weight ratio at or above this is an overshoot...
    pub explode_ratio: f64,
    /// ...ignoring params with ‖w‖ below this floor (fresh zero-init
    /// biases legitimately have huge ratios).
    pub explode_weight_floor: f64,
    /// Consecutive sampled optimizer steps required.
    pub explode_steps: usize,
    /// Zero fraction at or above this counts as dead.
    pub dead_zero_frac: f64,
    /// Minimum sampled observations, all dead, before flagging.
    pub dead_min_passes: usize,
    /// D accuracy (real *and* fake) above this is "near-perfect".
    pub d_overpower_acc: f64,
    /// Consecutive epochs required.
    pub d_overpower_epochs: usize,
    /// Generator batch-std below this counts as collapsed.
    pub collapse_diversity: f64,
    /// Consecutive epochs required.
    pub collapse_epochs: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            vanish_l2: 1e-8,
            vanish_context_l2: 1e-3,
            vanish_passes: 2,
            explode_ratio: 1.0,
            explode_weight_floor: 1e-6,
            explode_steps: 3,
            dead_zero_frac: 0.995,
            dead_min_passes: 2,
            d_overpower_acc: 0.95,
            d_overpower_epochs: 3,
            collapse_diversity: 1e-3,
            collapse_epochs: 2,
        }
    }
}

/// Tracks a consecutive-hit window and remembers where it started.
///
/// This is the core of every streak-based rule here, and is public so
/// other streak detectors (the ledger's cross-run drift gate) can reuse
/// it — for those, the "epoch" slot simply carries whatever ordinal the
/// series is indexed by.
#[derive(Debug, Default, Clone, Copy)]
pub struct Streak {
    /// Current consecutive-hit count (0 after a miss).
    pub len: usize,
    /// Epoch of the first hit in the current streak.
    pub start_epoch: u64,
    /// Step of the first hit in the current streak.
    pub start_step: u64,
}

impl Streak {
    /// Returns true exactly once, when the streak first reaches `need`.
    pub fn hit(&mut self, epoch: u64, step: u64, need: usize) -> bool {
        if self.len == 0 {
            self.start_epoch = epoch;
            self.start_step = step;
        }
        self.len += 1;
        self.len == need
    }

    /// Resets the streak.
    pub fn miss(&mut self) {
        self.len = 0;
    }
}

/// Runs all six rules over a decoded stream.
///
/// Records are expected in file order (training order); the rules are
/// streak-based, so shuffled input would produce nonsense.
pub fn diagnose(records: &[HealthRecord], t: &Thresholds) -> Vec<Diagnosis> {
    let mut out = Vec::new();
    nan_poisoned(records, &mut out);
    vanishing_gradient(records, t, &mut out);
    exploding_update(records, t, &mut out);
    dead_layer(records, t, &mut out);
    gan_rules(records, t, &mut out);
    out.sort_by(|a, b| (a.kind, &a.subject).cmp(&(b.kind, &b.subject)));
    out
}

fn nan_poisoned(records: &[HealthRecord], out: &mut Vec<Diagnosis>) {
    let mut seen: BTreeMap<String, ()> = BTreeMap::new();
    let mut push = |subject: String, epoch: u64, step: Option<u64>, detail: String| {
        if seen.insert(subject.clone(), ()).is_none() {
            out.push(Diagnosis {
                kind: DiagnosisKind::NanPoisoned,
                subject,
                first_epoch: epoch,
                first_step: step,
                detail,
            });
        }
    };
    for rec in records {
        match rec {
            HealthRecord::Layer(r) if r.is_poisoned() => push(
                format!("{} {}", r.net, r.pass.as_str()),
                r.epoch,
                Some(r.step),
                format!(
                    "layer {} ({}) carried {} NaN / {} Inf elements",
                    r.layer, r.name, r.nan, r.inf
                ),
            ),
            HealthRecord::Gan(g) if !g.g_loss.is_finite() || !g.d_loss.is_finite() => push(
                "cgan losses".to_string(),
                g.epoch,
                None,
                format!("g_loss={} d_loss={}", g.g_loss, g.d_loss),
            ),
            HealthRecord::Center(c) if !c.mse.is_finite() => push(
                "center loss".to_string(),
                c.epoch,
                None,
                format!("mse={}", c.mse),
            ),
            _ => {}
        }
    }
}

fn vanishing_gradient(records: &[HealthRecord], t: &Thresholds, out: &mut Vec<Diagnosis>) {
    // Group backward records into passes keyed by (net, step) so a
    // layer's ℓ2 can be judged against the healthiest layer of its own
    // pass. File order within a pass is preserved.
    let mut streaks: BTreeMap<(String, u64), (Streak, String)> = BTreeMap::new();
    let mut done: BTreeMap<(String, u64), ()> = BTreeMap::new();
    let mut pass: Vec<&crate::record::LayerRecord> = Vec::new();
    let mut pass_key: Option<(String, u64)> = None;

    let mut flush = |pass: &mut Vec<&crate::record::LayerRecord>| {
        let max_l2 = pass.iter().fold(0.0f64, |m, r| m.max(r.l2));
        for r in pass.iter() {
            let key = (r.net.clone(), r.layer);
            if done.contains_key(&key) {
                continue;
            }
            let entry = streaks
                .entry(key.clone())
                .or_insert_with(|| (Streak::default(), r.name.clone()));
            if r.l2 < t.vanish_l2 && max_l2 > t.vanish_context_l2 {
                if entry.0.hit(r.epoch, r.step, t.vanish_passes) {
                    done.insert(key, ());
                    out.push(Diagnosis {
                        kind: DiagnosisKind::VanishingGradient,
                        subject: format!("{} layer {} ({})", r.net, r.layer, entry.1),
                        first_epoch: entry.0.start_epoch,
                        first_step: Some(entry.0.start_step),
                        detail: format!(
                            "grad l2 {:.1e} while pass max {:.1e}, {} consecutive sampled passes",
                            r.l2, max_l2, t.vanish_passes
                        ),
                    });
                }
            } else {
                entry.0.miss();
            }
        }
        pass.clear();
    };

    for rec in records {
        if let HealthRecord::Layer(r) = rec {
            if r.pass != Pass::Backward {
                continue;
            }
            let key = (r.net.clone(), r.step);
            if pass_key.as_ref() != Some(&key) {
                flush(&mut pass);
                pass_key = Some(key);
            }
            pass.push(r);
        }
    }
    flush(&mut pass);
}

fn exploding_update(records: &[HealthRecord], t: &Thresholds, out: &mut Vec<Diagnosis>) {
    let mut streaks: BTreeMap<(String, u64), Streak> = BTreeMap::new();
    let mut done: BTreeMap<(String, u64), ()> = BTreeMap::new();
    for rec in records {
        let HealthRecord::Update(r) = rec else {
            continue;
        };
        let key = (r.net.clone(), r.param);
        if done.contains_key(&key) {
            continue;
        }
        let streak = streaks.entry(key.clone()).or_default();
        if r.ratio >= t.explode_ratio && r.weight_l2 > t.explode_weight_floor {
            if streak.hit(r.epoch, r.step, t.explode_steps) {
                done.insert(key, ());
                out.push(Diagnosis {
                    kind: DiagnosisKind::ExplodingUpdate,
                    subject: format!("{} param {}", r.net, r.param),
                    first_epoch: streak.start_epoch,
                    first_step: Some(streak.start_step),
                    detail: format!(
                        "update/weight ratio {:.2} over {} consecutive sampled steps",
                        r.ratio, t.explode_steps
                    ),
                });
            }
        } else {
            streak.miss();
        }
    }
}

fn dead_layer(records: &[HealthRecord], t: &Thresholds, out: &mut Vec<Diagnosis>) {
    // (first record, name, observations, all dead so far)
    struct Acc {
        first_epoch: u64,
        first_step: u64,
        name: String,
        passes: usize,
        all_dead: bool,
    }
    let mut accs: BTreeMap<(String, u64), Acc> = BTreeMap::new();
    for rec in records {
        let HealthRecord::Layer(r) = rec else {
            continue;
        };
        if r.pass != Pass::Forward {
            continue;
        }
        let acc = accs.entry((r.net.clone(), r.layer)).or_insert(Acc {
            first_epoch: r.epoch,
            first_step: r.step,
            name: r.name.clone(),
            passes: 0,
            all_dead: true,
        });
        acc.passes += 1;
        acc.all_dead &= r.zero_frac >= t.dead_zero_frac;
    }
    for ((net, layer), acc) in accs {
        if acc.all_dead && acc.passes >= t.dead_min_passes {
            out.push(Diagnosis {
                kind: DiagnosisKind::DeadLayer,
                subject: format!("{} layer {} ({})", net, layer, acc.name),
                first_epoch: acc.first_epoch,
                first_step: Some(acc.first_step),
                detail: format!(
                    "zero fraction ≥ {} on all {} sampled passes",
                    t.dead_zero_frac, acc.passes
                ),
            });
        }
    }
}

fn gan_rules(records: &[HealthRecord], t: &Thresholds, out: &mut Vec<Diagnosis>) {
    let mut overpower = Streak::default();
    let mut overpower_done = false;
    let mut collapse = Streak::default();
    let mut collapse_done = false;
    for rec in records {
        let HealthRecord::Gan(g) = rec else {
            continue;
        };
        if !overpower_done {
            if g.d_real_acc > t.d_overpower_acc && g.d_fake_acc > t.d_overpower_acc {
                if overpower.hit(g.epoch, 0, t.d_overpower_epochs) {
                    overpower_done = true;
                    out.push(Diagnosis {
                        kind: DiagnosisKind::DOverpowersG,
                        subject: "discriminator".to_string(),
                        first_epoch: overpower.start_epoch,
                        first_step: None,
                        detail: format!(
                            "real/fake accuracy {:.2}/{:.2} > {} for {} consecutive epochs",
                            g.d_real_acc, g.d_fake_acc, t.d_overpower_acc, t.d_overpower_epochs
                        ),
                    });
                }
            } else {
                overpower.miss();
            }
        }
        if !collapse_done {
            if g.diversity < t.collapse_diversity {
                if collapse.hit(g.epoch, 0, t.collapse_epochs) {
                    collapse_done = true;
                    out.push(Diagnosis {
                        kind: DiagnosisKind::ModeCollapse,
                        subject: "generator".to_string(),
                        first_epoch: collapse.start_epoch,
                        first_step: None,
                        detail: format!(
                            "output diversity {:.1e} < {:.1e} for {} consecutive epochs",
                            g.diversity, t.collapse_diversity, t.collapse_epochs
                        ),
                    });
                }
            } else {
                collapse.miss();
            }
        }
    }
}

/// Conditions the *training loop itself* can watch to abort a doomed run
/// early (`--abort-on nan,collapse`). A subset of the diagnoses: only
/// the ones detectable online with certainty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCondition {
    /// Abort on the first NaN/Inf sentinel anywhere.
    Nan,
    /// Abort when generator diversity collapses for
    /// [`Thresholds::collapse_epochs`] consecutive epochs.
    Collapse,
}

impl AbortCondition {
    pub fn as_str(self) -> &'static str {
        match self {
            AbortCondition::Nan => "nan",
            AbortCondition::Collapse => "collapse",
        }
    }

    /// Parses a comma-separated `--abort-on` list.
    ///
    /// # Errors
    ///
    /// Returns the first unrecognized name.
    pub fn parse_list(s: &str) -> Result<Vec<AbortCondition>, String> {
        let mut conds = Vec::new();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let cond = match part.trim() {
                "nan" => AbortCondition::Nan,
                "collapse" => AbortCondition::Collapse,
                other => return Err(format!("unknown abort condition {other:?}")),
            };
            if !conds.contains(&cond) {
                conds.push(cond);
            }
        }
        Ok(conds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CenterEpochRecord, GanEpochRecord, LayerRecord, UpdateRecord};

    fn bwd(net: &str, step: u64, layer: u64, l2: f64) -> HealthRecord {
        HealthRecord::Layer(LayerRecord {
            net: net.into(),
            pass: Pass::Backward,
            epoch: step / 10,
            step,
            layer,
            name: format!("L{layer}"),
            count: 32,
            mean: 0.0,
            std: 0.1,
            l2,
            abs_max: 0.2,
            zero_frac: 0.0,
            nan: 0,
            inf: 0,
        })
    }

    fn fwd(net: &str, step: u64, layer: u64, zero_frac: f64, nan: u64) -> HealthRecord {
        HealthRecord::Layer(LayerRecord {
            net: net.into(),
            pass: Pass::Forward,
            epoch: step / 10,
            step,
            layer,
            name: "ReLU".into(),
            count: 32,
            mean: 0.1,
            std: 0.1,
            l2: 1.0,
            abs_max: 0.5,
            zero_frac,
            nan,
            inf: 0,
        })
    }

    fn update(step: u64, param: u64, ratio: f64, weight_l2: f64) -> HealthRecord {
        HealthRecord::Update(UpdateRecord {
            net: "G".into(),
            epoch: step / 10,
            step,
            param,
            update_l2: ratio * weight_l2,
            weight_l2,
            ratio,
        })
    }

    fn gan(epoch: u64, acc: f64, diversity: f64) -> HealthRecord {
        HealthRecord::Gan(GanEpochRecord {
            epoch,
            d_real_acc: acc,
            d_fake_acc: acc,
            g_loss: 1.0,
            d_loss: 0.5,
            loss_ratio: 0.5,
            diversity,
        })
    }

    fn kinds(diags: &[Diagnosis]) -> Vec<DiagnosisKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn healthy_stream_is_clean() {
        let recs = vec![
            fwd("G", 1, 0, 0.3, 0),
            bwd("G", 1, 0, 0.5),
            fwd("G", 9, 0, 0.4, 0),
            bwd("G", 9, 0, 0.4),
            update(1, 0, 1e-3, 1.0),
            update(9, 0, 2e-3, 1.0),
            gan(0, 0.7, 0.2),
            gan(1, 0.8, 0.18),
            HealthRecord::Center(CenterEpochRecord {
                epoch: 0,
                mse: 0.01,
                grad_norm: 0.2,
            }),
        ];
        assert!(diagnose(&recs, &Thresholds::default()).is_empty());
    }

    #[test]
    fn nan_poisoned_reports_first_step() {
        let recs = vec![
            fwd("G", 4, 1, 0.2, 0),
            fwd("G", 12, 1, 0.2, 5),
            fwd("G", 20, 1, 0.2, 9),
        ];
        let diags = diagnose(&recs, &Thresholds::default());
        assert_eq!(kinds(&diags), vec![DiagnosisKind::NanPoisoned]);
        assert_eq!(diags[0].first_step, Some(12));
        assert!(diags[0].to_line().contains("nan-poisoned"));
    }

    #[test]
    fn vanishing_gradient_needs_consecutive_passes_with_context() {
        let t = Thresholds::default();
        // Layer 0 vanished twice in a row while layer 2 stays healthy.
        let recs = vec![
            bwd("G", 8, 2, 0.5),
            bwd("G", 8, 1, 0.01),
            bwd("G", 8, 0, 1e-9),
            bwd("G", 16, 2, 0.4),
            bwd("G", 16, 1, 0.01),
            bwd("G", 16, 0, 1e-10),
        ];
        let diags = diagnose(&recs, &t);
        assert_eq!(kinds(&diags), vec![DiagnosisKind::VanishingGradient]);
        assert_eq!(diags[0].first_epoch, 0);
        assert_eq!(diags[0].first_step, Some(8));
        assert!(diags[0].subject.contains("G layer 0"));

        // A single vanished pass, or a globally quiet pass, is not enough.
        let single = diagnose(&recs[..3], &t);
        assert!(single.is_empty());
        let quiet = vec![bwd("G", 8, 0, 1e-9), bwd("G", 16, 0, 1e-9)];
        assert!(diagnose(&quiet, &t).is_empty(), "no healthy context layer");
    }

    #[test]
    fn exploding_update_needs_three_consecutive_steps() {
        let t = Thresholds::default();
        let recs = vec![
            update(8, 3, 1.5, 0.5),
            update(16, 3, 2.0, 0.5),
            update(24, 3, 3.0, 0.5),
        ];
        let diags = diagnose(&recs, &t);
        assert_eq!(kinds(&diags), vec![DiagnosisKind::ExplodingUpdate]);
        assert_eq!(diags[0].first_step, Some(8));

        // Streak broken in the middle → no diagnosis.
        let broken = vec![
            update(8, 3, 1.5, 0.5),
            update(16, 3, 0.001, 0.5),
            update(24, 3, 2.0, 0.5),
            update(32, 3, 2.0, 0.5),
        ];
        assert!(diagnose(&broken, &t).is_empty());

        // Tiny weights (fresh biases) are exempt.
        let fresh = vec![
            update(8, 3, 5.0, 1e-9),
            update(16, 3, 5.0, 1e-9),
            update(24, 3, 5.0, 1e-9),
        ];
        assert!(diagnose(&fresh, &t).is_empty());
    }

    #[test]
    fn dead_layer_requires_every_sampled_pass_dead() {
        let t = Thresholds::default();
        let dead = vec![fwd("D", 8, 1, 1.0, 0), fwd("D", 16, 1, 0.999, 0)];
        let diags = diagnose(&dead, &t);
        assert_eq!(kinds(&diags), vec![DiagnosisKind::DeadLayer]);
        assert_eq!(diags[0].first_step, Some(8));
        assert!(diags[0].subject.contains("D layer 1 (ReLU)"));

        // One live pass clears it; one observation is not enough.
        let revived = vec![fwd("D", 8, 1, 1.0, 0), fwd("D", 16, 1, 0.5, 0)];
        assert!(diagnose(&revived, &t).is_empty());
        assert!(diagnose(&dead[..1], &t).is_empty());
        // Dropout-like 50% zeros never qualifies.
        let dropout = vec![fwd("D", 8, 2, 0.5, 0), fwd("D", 16, 2, 0.5, 0)];
        assert!(diagnose(&dropout, &t).is_empty());
    }

    #[test]
    fn d_overpowers_g_after_three_perfect_epochs() {
        let t = Thresholds::default();
        let recs = vec![
            gan(0, 0.7, 0.2),
            gan(1, 0.99, 0.2),
            gan(2, 0.98, 0.2),
            gan(3, 0.97, 0.2),
        ];
        let diags = diagnose(&recs, &t);
        assert_eq!(kinds(&diags), vec![DiagnosisKind::DOverpowersG]);
        assert_eq!(diags[0].first_epoch, 1);
        assert!(diagnose(&recs[..3], &t).is_empty());
    }

    #[test]
    fn mode_collapse_after_two_flat_epochs() {
        let t = Thresholds::default();
        let recs = vec![gan(0, 0.7, 0.2), gan(1, 0.7, 1e-5), gan(2, 0.7, 1e-6)];
        let diags = diagnose(&recs, &t);
        assert_eq!(kinds(&diags), vec![DiagnosisKind::ModeCollapse]);
        assert_eq!(diags[0].first_epoch, 1);
        assert!(diagnose(&recs[..2], &t).is_empty());
    }

    #[test]
    fn all_six_can_fire_together_and_sort_stably() {
        let t = Thresholds::default();
        let mut recs = vec![
            // dead layer + nan
            fwd("G", 8, 0, 1.0, 1),
            fwd("G", 16, 0, 1.0, 1),
            // vanishing gradient with context
            bwd("G", 8, 1, 1e-9),
            bwd("G", 8, 2, 0.5),
            bwd("G", 16, 1, 1e-9),
            bwd("G", 16, 2, 0.5),
            // exploding update
            update(8, 0, 2.0, 0.5),
            update(16, 0, 2.0, 0.5),
            update(24, 0, 2.0, 0.5),
        ];
        for e in 0..4 {
            recs.push(gan(e, 0.99, 1e-6));
        }
        let diags = diagnose(&recs, &t);
        let mut got = kinds(&diags);
        got.dedup();
        assert_eq!(
            got,
            vec![
                DiagnosisKind::NanPoisoned,
                DiagnosisKind::VanishingGradient,
                DiagnosisKind::ExplodingUpdate,
                DiagnosisKind::DeadLayer,
                DiagnosisKind::DOverpowersG,
                DiagnosisKind::ModeCollapse,
            ]
        );
    }

    #[test]
    fn parse_lists() {
        assert_eq!(
            DiagnosisKind::parse_list("nan, dead-layer").unwrap(),
            vec![DiagnosisKind::NanPoisoned, DiagnosisKind::DeadLayer]
        );
        assert!(DiagnosisKind::parse_list("bogus").is_err());
        assert_eq!(
            AbortCondition::parse_list("nan,collapse").unwrap(),
            vec![AbortCondition::Nan, AbortCondition::Collapse]
        );
        assert!(AbortCondition::parse_list("dead-layer").is_err());
        assert_eq!(AbortCondition::Nan.as_str(), "nan");
    }
}
