//! Mask layout substrate: clip geometry, contact-array generation, SRAF
//! insertion, model-based OPC and rasterisation.
//!
//! This crate substitutes for the Mentor Calibre flow the paper's dataset
//! was prepared with: it generates contact-layer mask clips, applies
//! resolution enhancement (rule-based sub-resolution assist features and
//! model-based OPC driven by the [`litho-sim`] compact model), and renders
//! the result into the paper's RGB encoding — target contact in the green
//! channel, neighbouring contacts in red, SRAFs in blue (paper §3.1,
//! Figure 3).
//!
//! # Example
//!
//! ```
//! use litho_layout::{ClipFamily, ClipGenerator};
//! use litho_sim::ProcessConfig;
//! use litho_tensor::rng::SeedableRng;
//!
//! let process = ProcessConfig::n10();
//! let mut rng = litho_tensor::rng::StdRng::seed_from_u64(7);
//! let clip = ClipGenerator::new(&process).generate(ClipFamily::Array2d, &mut rng);
//! assert!(!clip.neighbors.is_empty());
//! ```
//!
//! [`litho-sim`]: https://docs.rs/litho-sim

mod clip;
mod geometry;
pub mod image;
mod opc;
mod patterns;
mod raster;
mod sraf;
pub mod svg;

pub use clip::Clip;
pub use geometry::Rect;
pub use opc::{OpcConfig, OpcEngine, OpcResult};
pub use patterns::{ClipFamily, ClipGenerator};
pub use raster::{rasterize_clip, RasterConfig};
pub use sraf::{insert_srafs, SrafRules};

pub use litho_tensor::{Result, TensorError};
