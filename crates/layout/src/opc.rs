//! Model-based optical proximity correction.
//!
//! Iteratively biases each contact's mask edges until its printed critical
//! dimension (simulated with the *compact* optical + resist model) matches
//! the drawn target. This substitutes for the Calibre OPC the paper's
//! dataset was prepared with, and is what makes the end-to-end learning
//! problem realistic: the network sees post-OPC masks whose shapes differ
//! substantially from the drawn targets.

use litho_sim::{OpticalModel, ProcessConfig, ResistModel};
use litho_tensor::Result;

use crate::{Clip, Rect};

/// OPC loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpcConfig {
    /// Simulation grid resolution (pixels per clip side, power of two).
    pub grid_size: usize,
    /// Maximum correction iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the printed CD error, nm.
    pub tolerance_nm: f64,
    /// Damping gain on the edge moves (1 = full Newton step).
    pub step_gain: f64,
    /// Maximum per-side bias, nm.
    pub max_bias_nm: f64,
    /// Initial per-side bias seed, nm (contacts below the diffraction
    /// limit never print unbiased, so starting from zero wastes
    /// iterations).
    pub initial_bias_nm: f64,
}

impl Default for OpcConfig {
    fn default() -> Self {
        OpcConfig {
            grid_size: 256,
            max_iterations: 8,
            tolerance_nm: 2.5,
            step_gain: 0.6,
            max_bias_nm: 45.0,
            initial_bias_nm: 12.0,
        }
    }
}

/// Result of an OPC run.
#[derive(Debug, Clone)]
pub struct OpcResult {
    /// The corrected clip (biased contacts; SRAFs untouched).
    pub clip: Clip,
    /// Iterations executed.
    pub iterations: usize,
    /// Largest per-contact CD error at exit, nm.
    pub max_error_nm: f64,
    /// Whether the loop met tolerance before the iteration cap.
    pub converged: bool,
}

/// Model-based OPC engine bound to one process and grid geometry.
#[derive(Debug)]
pub struct OpcEngine {
    optical: OpticalModel,
    resist: ResistModel,
    config: OpcConfig,
    extent_nm: f64,
}

impl OpcEngine {
    /// Builds an engine for clips of `extent_nm` per side.
    ///
    /// # Errors
    ///
    /// Propagates optical-model construction errors (non-power-of-two
    /// grid).
    pub fn new(process: &ProcessConfig, extent_nm: f64, config: OpcConfig) -> Result<Self> {
        let pitch = extent_nm / config.grid_size as f64;
        Ok(OpcEngine {
            optical: OpticalModel::new(process, config.grid_size, pitch)?,
            resist: ResistModel::new(process.resist),
            config,
            extent_nm,
        })
    }

    /// The loop configuration.
    pub fn config(&self) -> &OpcConfig {
        &self.config
    }

    /// Printed extents `[up, down, left, right]` from a contact's drawn
    /// centre with sub-pixel accuracy, from the development excess field:
    /// walk outward from the centre to the zero crossing and interpolate
    /// linearly. `None` when the centre is not printing.
    ///
    /// Measuring each direction separately is what makes the OPC loop an
    /// *edge-based* correction (EPE minimisation): an asymmetric printed
    /// image yields asymmetric edge moves that re-centre the print on the
    /// drawn target.
    fn printed_extents(
        &self,
        excess: &[f64],
        grid_size: usize,
        pitch: f64,
        contact: &Rect,
    ) -> Option<[f64; 4]> {
        let (cx, cy) = contact.center();
        let px = ((cx / pitch).round() as isize).clamp(0, grid_size as isize - 1) as usize;
        let py = ((cy / pitch).round() as isize).clamp(0, grid_size as isize - 1) as usize;
        if excess[py * grid_size + px] < 0.0 {
            return None;
        }
        // Interpolated distance from the centre pixel to the first zero
        // crossing in direction (dy, dx), in pixels.
        let march = |dy: isize, dx: isize| -> f64 {
            let mut dist = 0.0;
            let (mut y, mut x) = (py as isize, px as isize);
            let mut prev = excess[py * grid_size + px];
            loop {
                let (ny, nx) = (y + dy, x + dx);
                if ny < 0 || nx < 0 || ny >= grid_size as isize || nx >= grid_size as isize {
                    return dist;
                }
                let v = excess[ny as usize * grid_size + nx as usize];
                if v < 0.0 {
                    // Linear interpolation between prev (>=0) and v (<0).
                    let t = prev / (prev - v);
                    return dist + t;
                }
                dist += 1.0;
                prev = v;
                y = ny;
                x = nx;
            }
        };
        Some([
            march(-1, 0) * pitch,
            march(1, 0) * pitch,
            march(0, -1) * pitch,
            march(0, 1) * pitch,
        ])
    }

    /// Runs the OPC loop on a clip, returning the biased clip.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (geometry mismatches cannot occur for
    /// clips of the engine's extent).
    pub fn correct(&self, clip: &Clip) -> Result<OpcResult> {
        let contacts: Vec<Rect> = clip.contacts().copied().collect();
        let n = contacts.len();
        // Per-contact edge biases [top, bottom, left, right], outward.
        let mut bias = vec![[self.config.initial_bias_nm; 4]; n];
        let mut max_error = f64::INFINITY;
        let mut iterations = 0;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            let biased = self.apply_bias(clip, &contacts, &bias);
            let mask = biased.to_mask_grid(self.config.grid_size);
            let aerial = self.optical.aerial_image(&mask)?;
            let excess = self.resist.excess_field(&aerial);
            let pitch = aerial.pitch_nm();

            max_error = 0.0f64;
            for (i, contact) in contacts.iter().enumerate() {
                // Target extents from the drawn centre: half-height for
                // the vertical edges, half-width for the horizontal ones.
                let target = [
                    contact.height() / 2.0,
                    contact.height() / 2.0,
                    contact.width() / 2.0,
                    contact.width() / 2.0,
                ];
                match self.printed_extents(&excess, self.config.grid_size, pitch, contact) {
                    Some(extents) => {
                        for e in 0..4 {
                            let err = target[e] - extents[e];
                            max_error = max_error.max(err.abs());
                            bias[i][e] += self.config.step_gain * err;
                        }
                    }
                    None => {
                        // Not printing at all: kick all edges outward.
                        max_error = max_error.max(contact.width());
                        for b in bias[i].iter_mut() {
                            *b += 6.0;
                        }
                    }
                }
                for b in bias[i].iter_mut() {
                    *b = b.clamp(-10.0, self.config.max_bias_nm);
                }
            }
            if max_error <= self.config.tolerance_nm {
                break;
            }
        }

        let corrected = self.apply_bias(clip, &contacts, &bias);
        Ok(OpcResult {
            clip: corrected,
            iterations,
            max_error_nm: max_error,
            converged: max_error <= self.config.tolerance_nm,
        })
    }

    /// Applies per-contact edge biases, shrinking any pair that would
    /// violate spacing to a neighbouring contact.
    fn apply_bias(&self, clip: &Clip, contacts: &[Rect], bias: &[[f64; 4]]) -> Clip {
        let min_space = 8.0;
        let mut inflated: Vec<Rect> = contacts
            .iter()
            .zip(bias)
            .map(|(r, b)| {
                // Outward edge moves: [top, bottom, left, right]; collapse
                // to the centre rather than inverting.
                let y0 = (r.y0 - b[0]).min(r.center().1);
                let y1 = (r.y1 + b[1]).max(r.center().1);
                let x0 = (r.x0 - b[2]).min(r.center().0);
                let x1 = (r.x1 + b[3]).max(r.center().0);
                Rect::new(x0, y0, x1, y1)
            })
            .collect();
        // Resolve spacing violations by shrinking both parties equally.
        for _ in 0..4 {
            let mut violation = false;
            for i in 0..inflated.len() {
                for j in i + 1..inflated.len() {
                    let sep = inflated[i].separation(&inflated[j]);
                    if sep < min_space {
                        violation = true;
                        let shrink = (min_space - sep) / 2.0 + 0.5;
                        inflated[i] = inflated[i].inflated(-shrink, -shrink);
                        inflated[j] = inflated[j].inflated(-shrink, -shrink);
                    }
                }
            }
            if !violation {
                break;
            }
        }
        let mut out = Clip::new(clip.extent_nm, inflated[0]);
        out.neighbors = inflated[1..].to_vec();
        out.srafs = clip.srafs.clone();
        let _ = self.extent_nm;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_sim::{ProcessConfig, RigorousSim};

    fn engine() -> OpcEngine {
        OpcEngine::new(&ProcessConfig::n10(), 2048.0, OpcConfig::default()).unwrap()
    }

    #[test]
    fn isolated_contact_converges_to_target_cd() {
        let clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        let result = engine().correct(&clip).unwrap();
        assert!(
            result.max_error_nm < 10.0,
            "OPC error {} nm after {} iterations",
            result.max_error_nm,
            result.iterations
        );
        // The mask contact must have been biased up (60nm is sub-resolution).
        assert!(result.clip.target.width() > 70.0);
    }

    #[test]
    fn opc_improves_printed_cd_vs_uncorrected() {
        let p = ProcessConfig::n10();
        let clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        let result = engine().correct(&clip).unwrap();
        let sim = RigorousSim::new(&p, 256, 8.0).unwrap();

        let golden_raw = sim
            .golden_center_pattern(&clip.to_mask_grid(256))
            .unwrap();
        let golden_opc = sim
            .golden_center_pattern(&result.clip.to_mask_grid(256))
            .unwrap()
            .expect("OPC'd contact must print");
        let cd = golden_opc.cd_horizontal_nm().unwrap();
        let err_opc = (cd - 60.0).abs();
        let err_raw = golden_raw
            .and_then(|g| g.cd_horizontal_nm())
            .map(|c| (c - 60.0).abs())
            .unwrap_or(60.0);
        assert!(
            err_opc < err_raw,
            "OPC {err_opc} nm should beat uncorrected {err_raw} nm"
        );
        assert!(err_opc < 15.0, "OPC'd golden CD error {err_opc} nm");
    }

    #[test]
    fn dense_pair_respects_spacing() {
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        clip.neighbors
            .push(Rect::centered_square(1144.0, 1024.0, 60.0));
        let result = engine().correct(&clip).unwrap();
        let sep = result.clip.target.separation(&result.clip.neighbors[0]);
        assert!(sep >= 7.5, "post-OPC spacing {sep} nm");
        assert!(!result.clip.has_overlaps());
    }

    #[test]
    fn srafs_are_untouched_by_opc() {
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        crate::insert_srafs(&mut clip, &crate::SrafRules::for_process(&ProcessConfig::n10()));
        let srafs_before = clip.srafs.clone();
        let result = engine().correct(&clip).unwrap();
        assert_eq!(result.clip.srafs, srafs_before);
    }
}
