
/// An axis-aligned rectangle in physical nanometres.
///
/// The invariant `x0 <= x1, y0 <= y1` is maintained by the constructor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge in nm.
    pub x0: f64,
    /// Top edge in nm.
    pub y0: f64,
    /// Right edge in nm.
    pub x1: f64,
    /// Bottom edge in nm.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle, normalising the corner order.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// A square of edge `size` centred at `(cx, cy)`.
    pub fn centered_square(cx: f64, cy: f64, size: f64) -> Self {
        let h = size / 2.0;
        Rect::new(cx - h, cy - h, cx + h, cy + h)
    }

    /// A rectangle of `width × height` centred at `(cx, cy)`.
    pub fn centered(cx: f64, cy: f64, width: f64, height: f64) -> Self {
        Rect::new(
            cx - width / 2.0,
            cy - height / 2.0,
            cx + width / 2.0,
            cy + height / 2.0,
        )
    }

    /// Width in nm.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height in nm.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area in nm².
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point `(cx, cy)` in nm.
    pub fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Grows (or shrinks, for negative values) each edge outward by the
    /// given per-axis amounts; collapses to the centre point rather than
    /// inverting.
    pub fn inflated(&self, dx: f64, dy: f64) -> Rect {
        let (cx, cy) = self.center();
        let hw = (self.width() / 2.0 + dx).max(0.0);
        let hh = (self.height() / 2.0 + dy).max(0.0);
        Rect::new(cx - hw, cy - hh, cx + hw, cy + hh)
    }

    /// Whether two rectangles overlap (shared boundary counts).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Minimum edge-to-edge separation to another rectangle (0 when
    /// overlapping).
    pub fn separation(&self, other: &Rect) -> f64 {
        let dx = (other.x0 - self.x1).max(self.x0 - other.x1).max(0.0);
        let dy = (other.y0 - self.y1).max(self.y0 - other.y1).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Whether a point lies inside (boundary inclusive).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// Translated copy.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_normalizes_corners() {
        let r = Rect::new(10.0, 20.0, 0.0, 5.0);
        assert_eq!(r, Rect::new(0.0, 5.0, 10.0, 20.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 15.0);
    }

    #[test]
    fn centered_square_geometry() {
        let r = Rect::centered_square(100.0, 200.0, 60.0);
        assert_eq!(r.center(), (100.0, 200.0));
        assert_eq!(r.area(), 3600.0);
    }

    #[test]
    fn inflate_and_collapse() {
        let r = Rect::centered_square(0.0, 0.0, 10.0);
        assert_eq!(r.inflated(5.0, 5.0).width(), 20.0);
        // Over-shrinking collapses to a point, never inverts.
        let collapsed = r.inflated(-100.0, -100.0);
        assert_eq!(collapsed.width(), 0.0);
        assert_eq!(collapsed.center(), (0.0, 0.0));
    }

    #[test]
    fn overlap_and_separation() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        let c = Rect::new(13.0, 14.0, 20.0, 20.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.separation(&b), 0.0);
        assert_eq!(a.separation(&c), 5.0); // 3-4-5 triangle
    }

    #[test]
    fn contains_boundary_inclusive() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(0.0, 0.0));
        assert!(r.contains(10.0, 10.0));
        assert!(!r.contains(10.1, 5.0));
    }

    #[test]
    fn translation() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0).translated(5.0, -1.0);
        assert_eq!(r.center(), (6.0, 0.0));
    }
}
