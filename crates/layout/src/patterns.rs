use litho_tensor::rng::Rng;

use litho_sim::ProcessConfig;

use crate::{Clip, Rect};

/// The three contact-array families of the benchmark datasets.
///
/// Per the paper (§4.1, citing \[12\]) the datasets contain three types of
/// contact arrays; at least one sample of each appears in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClipFamily {
    /// A single isolated contact (plus optional far-field contacts).
    Isolated,
    /// A 1-D chain of contacts at (jittered) regular pitch, horizontal or
    /// vertical.
    Chain1d,
    /// A 2-D array of contacts with random omissions.
    Array2d,
}

impl ClipFamily {
    /// All families, for round-robin dataset generation.
    pub const ALL: [ClipFamily; 3] = [
        ClipFamily::Isolated,
        ClipFamily::Chain1d,
        ClipFamily::Array2d,
    ];

    /// Stable lowercase tag used wherever a family is serialized (sample
    /// records, slice metric keys, Prometheus labels).
    pub fn name(self) -> &'static str {
        match self {
            ClipFamily::Isolated => "isolated",
            ClipFamily::Chain1d => "chain1d",
            ClipFamily::Array2d => "array2d",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn from_name(name: &str) -> Option<ClipFamily> {
        Self::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// Generates random contact-layer clips for a process node.
///
/// Clips are `2 × 2 µm` with the target contact exactly at the centre
/// (paper §3.1). All geometry is jittered by the RNG but respects the
/// process's minimum pitch, so generated clips are DRC-clean.
#[derive(Debug, Clone)]
pub struct ClipGenerator {
    extent_nm: f64,
    contact_nm: f64,
    pitch_nm: f64,
}

impl ClipGenerator {
    /// Creates a generator matching the node's contact geometry.
    pub fn new(process: &ProcessConfig) -> Self {
        ClipGenerator {
            extent_nm: 2048.0,
            contact_nm: process.contact_size_nm,
            pitch_nm: process.contact_pitch_nm,
        }
    }

    /// Clip extent per side, nm.
    pub fn extent_nm(&self) -> f64 {
        self.extent_nm
    }

    /// Generates one clip of the given family.
    pub fn generate<R: Rng + ?Sized>(&self, family: ClipFamily, rng: &mut R) -> Clip {
        let c = self.extent_nm / 2.0;
        let target = Rect::centered_square(c, c, self.contact_nm);
        let mut clip = Clip::new(self.extent_nm, target);
        match family {
            ClipFamily::Isolated => {
                // Occasionally drop 1-2 distant contacts so "isolated" still
                // has long-range context variation.
                let extras = rng.gen_range(0..=2);
                for _ in 0..extras {
                    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                    let dist = rng.gen_range(4.0..7.0) * self.pitch_nm;
                    let nx = c + dist * angle.cos();
                    let ny = c + dist * angle.sin();
                    let cand = Rect::centered_square(nx, ny, self.contact_nm);
                    self.push_if_clean(&mut clip, cand);
                }
            }
            ClipFamily::Chain1d => {
                let horizontal = rng.gen_bool(0.5);
                let count_each_side = rng.gen_range(1..=3);
                let pitch = self.pitch_nm * rng.gen_range(1.0..1.8);
                for i in 1..=count_each_side {
                    for sign in [-1.0, 1.0] {
                        let d = sign * i as f64 * pitch;
                        let (nx, ny) = if horizontal { (c + d, c) } else { (c, c + d) };
                        let cand = Rect::centered_square(nx, ny, self.contact_nm);
                        self.push_if_clean(&mut clip, cand);
                    }
                }
            }
            ClipFamily::Array2d => {
                let half: i32 = rng.gen_range(1..=2);
                let pitch_x = self.pitch_nm * rng.gen_range(1.0..1.6);
                let pitch_y = self.pitch_nm * rng.gen_range(1.0..1.6);
                let omit_prob = rng.gen_range(0.0..0.35);
                for gy in -half..=half {
                    for gx in -half..=half {
                        if gx == 0 && gy == 0 {
                            continue;
                        }
                        if rng.gen_bool(omit_prob) {
                            continue;
                        }
                        let cand = Rect::centered_square(
                            c + gx as f64 * pitch_x,
                            c + gy as f64 * pitch_y,
                            self.contact_nm,
                        );
                        self.push_if_clean(&mut clip, cand);
                    }
                }
            }
        }
        clip
    }

    /// Adds a neighbor if it stays inside the clip and respects minimum
    /// spacing to every existing contact.
    fn push_if_clean(&self, clip: &mut Clip, cand: Rect) {
        let margin = self.contact_nm;
        if cand.x0 < margin
            || cand.y0 < margin
            || cand.x1 > self.extent_nm - margin
            || cand.y1 > self.extent_nm - margin
        {
            return;
        }
        let min_space = self.pitch_nm - self.contact_nm;
        let clean = clip
            .contacts()
            .all(|r| cand.separation(r) >= min_space * 0.99);
        if clean {
            clip.neighbors.push(cand);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_sim::ProcessConfig;
    use litho_tensor::rng::SeedableRng;

    fn generator() -> ClipGenerator {
        ClipGenerator::new(&ProcessConfig::n10())
    }

    #[test]
    fn family_names_round_trip() {
        for family in ClipFamily::ALL {
            assert_eq!(ClipFamily::from_name(family.name()), Some(family));
        }
        assert_eq!(ClipFamily::from_name("no-such-family"), None);
    }

    #[test]
    fn target_is_always_centered() {
        let mut rng = litho_tensor::rng::StdRng::seed_from_u64(1);
        for family in ClipFamily::ALL {
            for _ in 0..20 {
                let clip = generator().generate(family, &mut rng);
                assert_eq!(clip.target.center(), (1024.0, 1024.0));
                assert_eq!(clip.target.width(), 60.0);
            }
        }
    }

    #[test]
    fn generated_clips_are_drc_clean() {
        let mut rng = litho_tensor::rng::StdRng::seed_from_u64(2);
        for family in ClipFamily::ALL {
            for _ in 0..50 {
                let clip = generator().generate(family, &mut rng);
                assert!(!clip.has_overlaps());
                // Minimum spacing respected between all contact pairs.
                let contacts: Vec<_> = clip.contacts().collect();
                for i in 0..contacts.len() {
                    for j in i + 1..contacts.len() {
                        let sep = contacts[i].separation(contacts[j]);
                        assert!(sep >= (120.0 - 60.0) * 0.99 - 1e-9, "sep {sep}");
                    }
                }
            }
        }
    }

    #[test]
    fn chain_is_collinear() {
        let mut rng = litho_tensor::rng::StdRng::seed_from_u64(3);
        let clip = generator().generate(ClipFamily::Chain1d, &mut rng);
        assert!(!clip.neighbors.is_empty());
        let (cx, cy) = clip.target.center();
        let all_on_row = clip.neighbors.iter().all(|r| r.center().1 == cy);
        let all_on_col = clip.neighbors.iter().all(|r| r.center().0 == cx);
        assert!(all_on_row || all_on_col);
    }

    #[test]
    fn array_family_is_denser_than_isolated() {
        let mut rng = litho_tensor::rng::StdRng::seed_from_u64(4);
        let mut iso_total = 0;
        let mut arr_total = 0;
        for _ in 0..20 {
            iso_total += generator().generate(ClipFamily::Isolated, &mut rng).neighbors.len();
            arr_total += generator().generate(ClipFamily::Array2d, &mut rng).neighbors.len();
        }
        assert!(arr_total > iso_total);
    }

    #[test]
    fn shapes_stay_inside_clip() {
        let mut rng = litho_tensor::rng::StdRng::seed_from_u64(5);
        for family in ClipFamily::ALL {
            for _ in 0..30 {
                let clip = generator().generate(family, &mut rng);
                for r in clip.contacts() {
                    assert!(r.x0 >= 0.0 && r.y0 >= 0.0);
                    assert!(r.x1 <= 2048.0 && r.y1 <= 2048.0);
                }
            }
        }
    }
}
