//! Rasterisation of clips into the paper's RGB network input encoding.
//!
//! Paper §3.1: clips are cropped to the central 1 × 1 µm and rendered as
//! 256 × 256 RGB images where the target contact occupies the green
//! channel, neighbouring contacts the red channel, and SRAFs the blue
//! channel — "this coloring scheme maps the different types of objects to
//! different colors to help the model discriminate these objects".

use litho_sim::MaskGrid;
use litho_tensor::{Result, Tensor};

use crate::{Clip, Rect};

/// Rasterisation settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasterConfig {
    /// Output image edge length in pixels (256 in the paper).
    pub image_size: usize,
    /// Physical window rendered, nm per side (1024 in the paper: the
    /// central 1 × 1 µm crop of the 2 × 2 µm clip).
    pub window_nm: u32,
}

impl RasterConfig {
    /// The paper's configuration: 1 µm window → 256 × 256 px.
    pub fn paper() -> Self {
        RasterConfig {
            image_size: 256,
            window_nm: 1024,
        }
    }

    /// A reduced-resolution configuration for CPU-budget experiments.
    pub fn scaled(image_size: usize) -> Self {
        RasterConfig {
            image_size,
            window_nm: 1024,
        }
    }
}

/// Renders one shape class into a single-channel grid with analytic area
/// coverage (values in `[0, 1]`).
fn render_channel(shapes: &[Rect], offset_nm: f64, window_nm: f64, size: usize) -> MaskGrid {
    let pitch = window_nm / size as f64;
    let mut grid = MaskGrid::new(size, pitch);
    for r in shapes {
        grid.fill_rect_nm(
            r.x0 - offset_nm,
            r.y0 - offset_nm,
            r.x1 - offset_nm,
            r.y1 - offset_nm,
            1.0,
        );
    }
    grid
}

/// Rasterises a clip into an RGB tensor of shape `[3, size, size]`
/// (channel order R = neighbors, G = target, B = SRAFs) over the central
/// window given by `config`.
///
/// # Errors
///
/// Returns a [`litho_tensor::TensorError`] only on internal shape
/// inconsistencies (which would indicate a bug).
pub fn rasterize_clip(clip: &Clip, config: &RasterConfig) -> Result<Tensor> {
    let window = config.window_nm as f64;
    let offset = (clip.extent_nm - window) / 2.0;
    let size = config.image_size;

    let red = render_channel(&clip.neighbors, offset, window, size);
    let green = render_channel(std::slice::from_ref(&clip.target), offset, window, size);
    let blue = render_channel(&clip.srafs, offset, window, size);

    let mut data = Vec::with_capacity(3 * size * size);
    for grid in [&red, &green, &blue] {
        data.extend(grid.as_slice().iter().map(|&v| v as f32));
    }
    Tensor::from_vec(data, &[3, size, size])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_clip() -> Clip {
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 64.0));
        clip.neighbors
            .push(Rect::centered_square(1152.0, 1024.0, 64.0));
        clip.srafs
            .push(Rect::centered(1024.0, 920.0, 96.0, 32.0));
        clip
    }

    #[test]
    fn channels_separate_object_classes() {
        let clip = sample_clip();
        let img = rasterize_clip(&clip, &RasterConfig::paper()).unwrap();
        assert_eq!(img.dims(), &[3, 256, 256]);
        // Center pixel: green only (target).
        assert_eq!(img.at(&[1, 128, 128]).unwrap(), 1.0);
        assert_eq!(img.at(&[0, 128, 128]).unwrap(), 0.0);
        assert_eq!(img.at(&[2, 128, 128]).unwrap(), 0.0);
        // Neighbor at +128nm in x = +32px: red only.
        assert_eq!(img.at(&[0, 128, 160]).unwrap(), 1.0);
        assert_eq!(img.at(&[1, 128, 160]).unwrap(), 0.0);
        // SRAF at -104nm in y = -26px: blue only.
        assert_eq!(img.at(&[2, 102, 128]).unwrap(), 1.0);
        assert_eq!(img.at(&[1, 102, 128]).unwrap(), 0.0);
    }

    #[test]
    fn area_is_preserved_per_channel() {
        let clip = sample_clip();
        let img = rasterize_clip(&clip, &RasterConfig::paper()).unwrap();
        let px_area = (1024.0 / 256.0) * (1024.0 / 256.0);
        let green_area: f32 = (0..256 * 256)
            .map(|i| img.as_slice()[256 * 256 + i])
            .sum();
        assert!((green_area as f64 * px_area - 64.0 * 64.0).abs() < 1.0);
    }

    #[test]
    fn scaled_config_shrinks_output() {
        let clip = sample_clip();
        let img = rasterize_clip(&clip, &RasterConfig::scaled(64)).unwrap();
        assert_eq!(img.dims(), &[3, 64, 64]);
        assert_eq!(img.at(&[1, 32, 32]).unwrap(), 1.0);
    }

    #[test]
    fn out_of_window_shapes_are_clipped_away() {
        let mut clip = sample_clip();
        clip.neighbors
            .push(Rect::centered_square(100.0, 100.0, 64.0)); // outside 1um window
        let img = rasterize_clip(&clip, &RasterConfig::paper()).unwrap();
        let red_area: f32 = img.as_slice()[..256 * 256].iter().sum();
        let px_area = 16.0f32;
        // Only the in-window neighbor contributes.
        assert!((red_area * px_area - 64.0 * 64.0).abs() < 1.0);
    }

    #[test]
    fn values_stay_in_unit_range() {
        let clip = sample_clip();
        let img = rasterize_clip(&clip, &RasterConfig::paper()).unwrap();
        assert!(img.max() <= 1.0 && img.min() >= 0.0);
    }
}
