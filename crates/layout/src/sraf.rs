//! Rule-based sub-resolution assist feature (SRAF) insertion.
//!
//! SRAFs are narrow scatter bars placed at a fixed distance from isolated
//! contact edges. They redirect diffraction energy toward the main feature
//! (improving its process window) while staying below the resolution limit
//! so they never print themselves. This implements the rule-based flavour
//! (the paper's dataset used Calibre; rule-based SRAF generation is the
//! classic approach, cf. paper reference \[20\]).

use litho_sim::ProcessConfig;

use crate::{Clip, Rect};

/// Geometric rules for scatter-bar placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrafRules {
    /// Bar width in nm (must stay sub-resolution).
    pub width_nm: f64,
    /// Bar length in nm.
    pub length_nm: f64,
    /// Distance from a contact edge to the near bar edge, nm.
    pub offset_nm: f64,
    /// A bar is only placed on a side with no printing feature within this
    /// distance, nm.
    pub clear_distance_nm: f64,
    /// Minimum spacing between an SRAF and any other shape, nm.
    pub min_space_nm: f64,
}

impl SrafRules {
    /// Default rules for a process node: bar width ≈ 40 % of the contact
    /// size (sub-resolution), offset just inside the first diffraction
    /// ring.
    pub fn for_process(process: &ProcessConfig) -> Self {
        SrafRules {
            width_nm: (process.contact_size_nm * 0.4).round(),
            length_nm: (process.contact_size_nm * 1.6).round(),
            offset_nm: (process.rayleigh_nm() * 0.85).round(),
            clear_distance_nm: process.contact_pitch_nm * 1.6,
            min_space_nm: (process.contact_pitch_nm - process.contact_size_nm) * 0.5,
        }
    }
}

/// Candidate bar positions around one contact (top, bottom, left, right).
fn candidate_bars(contact: &Rect, rules: &SrafRules) -> [Rect; 4] {
    let (cx, cy) = contact.center();
    let off = rules.offset_nm + rules.width_nm / 2.0;
    [
        Rect::centered(cx, contact.y0 - off, rules.length_nm, rules.width_nm), // top
        Rect::centered(cx, contact.y1 + off, rules.length_nm, rules.width_nm), // bottom
        Rect::centered(contact.x0 - off, cy, rules.width_nm, rules.length_nm), // left
        Rect::centered(contact.x1 + off, cy, rules.width_nm, rules.length_nm), // right
    ]
}

/// Inserts scatter bars into a clip according to the rules, mutating
/// `clip.srafs`. Returns the number of bars placed.
///
/// A bar is placed on a contact side only when that side has no printing
/// neighbour within `clear_distance_nm` (dense sides get their proximity
/// support from the neighbour itself), the bar stays inside the clip, and
/// it keeps `min_space_nm` to every existing shape.
pub fn insert_srafs(clip: &mut Clip, rules: &SrafRules) -> usize {
    let contacts: Vec<Rect> = clip.contacts().copied().collect();
    let mut placed = 0usize;
    for contact in &contacts {
        let (cx, cy) = contact.center();
        let bars = candidate_bars(contact, rules);
        // Directional clearance tests: is there a contact roughly in this
        // direction within clear_distance?
        let side_blocked = |dir: usize| -> bool {
            contacts.iter().any(|other| {
                if other == contact {
                    return false;
                }
                let (ox, oy) = other.center();
                let (dx, dy) = (ox - cx, oy - cy);
                if contact.separation(other) > rules.clear_distance_nm {
                    return false;
                }
                match dir {
                    0 => dy < 0.0 && dy.abs() >= dx.abs(), // contact above
                    1 => dy > 0.0 && dy.abs() >= dx.abs(), // below
                    2 => dx < 0.0 && dx.abs() >= dy.abs(), // left
                    _ => dx > 0.0 && dx.abs() >= dy.abs(), // right
                }
            })
        };
        for (dir, bar) in bars.into_iter().enumerate() {
            if side_blocked(dir) {
                continue;
            }
            if bar.x0 < 0.0 || bar.y0 < 0.0 || bar.x1 > clip.extent_nm || bar.y1 > clip.extent_nm {
                continue;
            }
            let clear = clip
                .contacts()
                .chain(clip.srafs.iter())
                .all(|r| bar.separation(r) >= rules.min_space_nm);
            if clear {
                clip.srafs.push(bar);
                placed += 1;
            }
        }
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_sim::ProcessConfig;

    fn rules() -> SrafRules {
        SrafRules::for_process(&ProcessConfig::n10())
    }

    #[test]
    fn rules_are_subresolution() {
        let p = ProcessConfig::n10();
        let r = SrafRules::for_process(&p);
        // Bars must be narrower than the printable limit.
        assert!(r.width_nm < p.rayleigh_nm() / 2.0);
        assert!(r.width_nm < p.contact_size_nm);
    }

    #[test]
    fn isolated_contact_gets_four_bars() {
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        let placed = insert_srafs(&mut clip, &rules());
        assert_eq!(placed, 4);
        assert_eq!(clip.srafs.len(), 4);
        assert!(!clip.has_overlaps());
    }

    #[test]
    fn dense_side_is_skipped() {
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        // Neighbor to the right at minimum pitch.
        clip.neighbors
            .push(Rect::centered_square(1024.0 + 120.0, 1024.0, 60.0));
        insert_srafs(&mut clip, &rules());
        // No SRAF in the corridor between the two contacts.
        let corridor = Rect::new(1054.0, 994.0, 1114.0, 1054.0);
        assert!(
            clip.srafs.iter().all(|s| !s.overlaps(&corridor)),
            "srafs {:?}",
            clip.srafs
        );
        assert!(!clip.has_overlaps());
    }

    #[test]
    fn bars_respect_clip_boundary() {
        // Contact near the clip edge: outward bars are dropped.
        let mut clip = Clip::new(2048.0, Rect::centered_square(40.0, 1024.0, 60.0));
        insert_srafs(&mut clip, &rules());
        for s in &clip.srafs {
            assert!(s.x0 >= 0.0 && s.y0 >= 0.0 && s.x1 <= 2048.0 && s.y1 <= 2048.0);
        }
    }

    #[test]
    fn srafs_never_touch_contacts() {
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        clip.neighbors
            .push(Rect::centered_square(1024.0, 1024.0 + 200.0, 60.0));
        let r = rules();
        insert_srafs(&mut clip, &r);
        for s in &clip.srafs {
            for c in clip.contacts() {
                assert!(s.separation(c) >= r.min_space_nm - 1e-9);
            }
        }
    }
}
