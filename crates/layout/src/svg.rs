//! SVG clip rendering — human-viewable layout exports for documentation
//! and debugging (the raster pipeline is for the networks; this is for
//! people).

use std::io::Write;
use std::path::Path;

use litho_tensor::{Result, TensorError};

use crate::{Clip, Rect};

fn io_err(err: std::io::Error) -> TensorError {
    TensorError::InvalidArgument(format!("svg i/o: {err}"))
}

fn rect_element(r: &Rect, fill: &str, opacity: f64) -> String {
    format!(
        r##"  <rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{fill}" fill-opacity="{opacity}" stroke="black" stroke-width="1"/>"##,
        r.x0,
        r.y0,
        r.width(),
        r.height()
    )
}

/// Serialises a clip to an SVG string (1 SVG unit = 1 nm), using the
/// paper's colour taxonomy: green target, red neighbors, blue SRAFs.
pub fn clip_to_svg(clip: &Clip) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {e} {e}" width="512" height="512">"##,
        e = clip.extent_nm
    ));
    out.push('\n');
    out.push_str(&format!(
        r##"  <rect x="0" y="0" width="{e}" height="{e}" fill="#f8f8f8"/>"##,
        e = clip.extent_nm
    ));
    out.push('\n');
    for r in &clip.srafs {
        out.push_str(&rect_element(r, "#3060d0", 0.8));
        out.push('\n');
    }
    for r in &clip.neighbors {
        out.push_str(&rect_element(r, "#d04030", 0.8));
        out.push('\n');
    }
    out.push_str(&rect_element(&clip.target, "#30a040", 0.9));
    out.push('\n');
    out.push_str("</svg>\n");
    out
}

/// Writes a clip as an SVG file.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] on I/O failure.
pub fn write_svg<P: AsRef<Path>>(clip: &Clip, path: P) -> Result<()> {
    let mut file = std::fs::File::create(path).map_err(io_err)?;
    file.write_all(clip_to_svg(clip).as_bytes()).map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_clip() -> Clip {
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        clip.neighbors.push(Rect::centered_square(1200.0, 1024.0, 60.0));
        clip.srafs.push(Rect::centered(1024.0, 900.0, 96.0, 24.0));
        clip
    }

    #[test]
    fn svg_contains_all_shapes_with_class_colors() {
        let svg = clip_to_svg(&sample_clip());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // One green target, one red neighbor, one blue SRAF + background.
        assert_eq!(svg.matches("#30a040").count(), 1);
        assert_eq!(svg.matches("#d04030").count(), 1);
        assert_eq!(svg.matches("#3060d0").count(), 1);
        assert_eq!(svg.matches("<rect").count(), 4);
        // Geometry in nm units.
        assert!(svg.contains(r#"x="994.0""#));
        assert!(svg.contains(r#"width="60.0""#));
    }

    #[test]
    fn write_svg_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("lithogan_svg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clip.svg");
        write_svg(&sample_clip(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, clip_to_svg(&sample_clip()));
    }
}
