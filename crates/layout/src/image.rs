//! Minimal PPM/PGM image writers for experiment visualisations (Figure 6
//! and Figure 8 reproductions), dependency-free.

use std::io::Write;
use std::path::Path;

use litho_tensor::{Result, Tensor, TensorError};

fn io_err(err: std::io::Error) -> TensorError {
    TensorError::InvalidArgument(format!("image i/o: {err}"))
}

fn to_byte(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Writes a `[3, h, w]` tensor (values in `[0, 1]`) as a binary PPM file.
///
/// # Errors
///
/// Returns an error if the tensor is not rank 3 with 3 channels, or on
/// I/O failure.
pub fn write_ppm<P: AsRef<Path>>(image: &Tensor, path: P) -> Result<()> {
    let dims = image.dims();
    if dims.len() != 3 || dims[0] != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "expected [3, h, w] image, got {dims:?}"
        )));
    }
    let (h, w) = (dims[1], dims[2]);
    let mut out = Vec::with_capacity(h * w * 3 + 32);
    out.extend_from_slice(format!("P6\n{w} {h}\n255\n").as_bytes());
    let data = image.as_slice();
    let plane = h * w;
    for i in 0..plane {
        out.push(to_byte(data[i]));
        out.push(to_byte(data[plane + i]));
        out.push(to_byte(data[2 * plane + i]));
    }
    let mut file = std::fs::File::create(path).map_err(io_err)?;
    file.write_all(&out).map_err(io_err)
}

/// Writes a `[h, w]` or `[1, h, w]` tensor (values in `[0, 1]`) as a
/// binary PGM file.
///
/// # Errors
///
/// Returns an error for other shapes, or on I/O failure.
pub fn write_pgm<P: AsRef<Path>>(image: &Tensor, path: P) -> Result<()> {
    let dims = image.dims();
    let (h, w) = match dims {
        [h, w] => (*h, *w),
        [1, h, w] => (*h, *w),
        _ => {
            return Err(TensorError::InvalidArgument(format!(
                "expected [h, w] or [1, h, w] image, got {dims:?}"
            )))
        }
    };
    let mut out = Vec::with_capacity(h * w + 32);
    out.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
    out.extend(image.as_slice().iter().map(|&v| to_byte(v)));
    let mut file = std::fs::File::create(path).map_err(io_err)?;
    file.write_all(&out).map_err(io_err)
}

/// Composites a monochrome prediction over a golden outline for Figure-6
/// style panels: prediction filled green, golden contour pixels drawn
/// black, prediction boundary drawn red (paper Figure 6 caption).
///
/// `prediction` and `golden` are `[h, w]` maps in `[0, 1]`; class
/// threshold 0.5.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ or inputs
/// are not rank 2.
pub fn overlay_panel(prediction: &Tensor, golden: &Tensor) -> Result<Tensor> {
    if prediction.dims() != golden.dims() || prediction.dims().len() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: prediction.dims().to_vec(),
            right: golden.dims().to_vec(),
        });
    }
    let (h, w) = (prediction.dims()[0], prediction.dims()[1]);
    let mut out = Tensor::ones(&[3, h, w]);
    let pred = prediction.as_slice();
    let gold = golden.as_slice();
    let is_boundary = |data: &[f32], y: usize, x: usize| -> bool {
        if data[y * w + x] < 0.5 {
            return false;
        }
        let mut edge = false;
        for (dy, dx) in [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)] {
            let (ny, nx) = (y as isize + dy, x as isize + dx);
            if ny < 0
                || nx < 0
                || ny >= h as isize
                || nx >= w as isize
                || data[ny as usize * w + nx as usize] < 0.5
            {
                edge = true;
            }
        }
        edge
    };
    let plane = h * w;
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let (mut r, mut g, mut b) = (1.0, 1.0, 1.0);
            if pred[i] >= 0.5 {
                // Filled prediction: green.
                r = 0.55;
                g = 0.9;
                b = 0.55;
            }
            if is_boundary(pred, y, x) {
                // Prediction outline: red.
                r = 0.9;
                g = 0.1;
                b = 0.1;
            }
            if is_boundary(gold, y, x) {
                // Golden outline: black (drawn on top).
                r = 0.0;
                g = 0.0;
                b = 0.0;
            }
            let d = out.as_mut_slice();
            d[i] = r;
            d[plane + i] = g;
            d[2 * plane + i] = b;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_round_trip_header() {
        let img = Tensor::full(&[3, 2, 4], 0.5);
        let dir = std::env::temp_dir().join("lithogan_test_ppm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        write_ppm(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n4 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 2 * 4 * 3);
        assert_eq!(bytes[11], 128);
    }

    #[test]
    fn pgm_accepts_both_shapes() {
        let dir = std::env::temp_dir().join("lithogan_test_pgm");
        std::fs::create_dir_all(&dir).unwrap();
        write_pgm(&Tensor::zeros(&[4, 4]), dir.join("a.pgm")).unwrap();
        write_pgm(&Tensor::zeros(&[1, 4, 4]), dir.join("b.pgm")).unwrap();
        assert!(write_pgm(&Tensor::zeros(&[2, 4, 4]), dir.join("c.pgm")).is_err());
    }

    #[test]
    fn ppm_rejects_bad_shapes() {
        let dir = std::env::temp_dir();
        assert!(write_ppm(&Tensor::zeros(&[1, 4, 4]), dir.join("x.ppm")).is_err());
        assert!(write_ppm(&Tensor::zeros(&[4, 4]), dir.join("x.ppm")).is_err());
    }

    #[test]
    fn overlay_marks_fill_and_outlines() {
        let mut pred = Tensor::zeros(&[8, 8]);
        let mut gold = Tensor::zeros(&[8, 8]);
        for y in 2..6 {
            for x in 2..6 {
                pred.set(&[y, x], 1.0).unwrap();
                gold.set(&[y, x + 1], 1.0).unwrap();
            }
        }
        let panel = overlay_panel(&pred, &gold).unwrap();
        assert_eq!(panel.dims(), &[3, 8, 8]);
        // Interior of prediction (and not on the golden outline): greenish.
        assert!(panel.at(&[1, 3, 4]).unwrap() > panel.at(&[0, 3, 4]).unwrap());
        // Golden boundary pixel: black.
        assert_eq!(panel.at(&[0, 2, 3]).unwrap(), 0.0);
        // Background: white.
        assert_eq!(panel.at(&[0, 0, 0]).unwrap(), 1.0);
    }

    #[test]
    fn overlay_validates_shapes() {
        assert!(overlay_panel(&Tensor::zeros(&[4, 4]), &Tensor::zeros(&[5, 5])).is_err());
    }
}
