
use litho_sim::MaskGrid;

use crate::Rect;

/// A contact-layer mask clip.
///
/// Matches the object taxonomy of the paper's color encoding: the *target*
/// contact at the clip centre (green), *neighbor* contacts (red), and
/// *SRAFs* (blue). Geometry is in physical nm with the origin at the clip's
/// top-left corner; the drawn clip extent is `extent_nm` per side
/// (2 µm in the paper, §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// Clip edge length in nm.
    pub extent_nm: f64,
    /// The centre contact whose resist pattern is being modelled.
    pub target: Rect,
    /// Other contacts in the clip.
    pub neighbors: Vec<Rect>,
    /// Sub-resolution assist features (never intended to print).
    pub srafs: Vec<Rect>,
}

impl Clip {
    /// Creates a clip with a target contact and no neighbors or SRAFs.
    pub fn new(extent_nm: f64, target: Rect) -> Self {
        Clip {
            extent_nm,
            target,
            neighbors: Vec::new(),
            srafs: Vec::new(),
        }
    }

    /// Clip centre coordinates in nm.
    pub fn center(&self) -> (f64, f64) {
        (self.extent_nm / 2.0, self.extent_nm / 2.0)
    }

    /// All printing features (target + neighbors); SRAFs excluded.
    pub fn contacts(&self) -> impl Iterator<Item = &Rect> {
        std::iter::once(&self.target).chain(self.neighbors.iter())
    }

    /// Total number of drawn shapes.
    pub fn shape_count(&self) -> usize {
        1 + self.neighbors.len() + self.srafs.len()
    }

    /// Rasterises the full clip (all shapes transmit) onto a mask grid of
    /// `grid_size` pixels covering the clip extent.
    pub fn to_mask_grid(&self, grid_size: usize) -> MaskGrid {
        let pitch = self.extent_nm / grid_size as f64;
        let mut grid = MaskGrid::new(grid_size, pitch);
        for r in self.contacts() {
            grid.fill_rect_nm(r.x0, r.y0, r.x1, r.y1, 1.0);
        }
        for r in &self.srafs {
            grid.fill_rect_nm(r.x0, r.y0, r.x1, r.y1, 1.0);
        }
        grid
    }

    /// Whether any two shapes in the clip overlap — generated clips must
    /// be overlap-free (DRC-clean).
    pub fn has_overlaps(&self) -> bool {
        let shapes: Vec<&Rect> = self
            .contacts()
            .chain(self.srafs.iter())
            .collect();
        for i in 0..shapes.len() {
            for j in i + 1..shapes.len() {
                if shapes[i].overlaps(shapes[j]) {
                    return true;
                }
            }
        }
        false
    }

    /// Stable FNV-1a fingerprint of the clip geometry, formatted like the
    /// run-ledger dataset fingerprint (`{hash:016x}`). Two clips share a
    /// fingerprint iff their drawn geometry is bit-identical, which is
    /// what lets eval tooling join per-clip records across runs.
    pub fn fingerprint(&self) -> String {
        fn eat(hash: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *hash ^= b as u64;
                *hash = hash.wrapping_mul(0x0100_0000_01b3);
            }
        }
        fn rect(hash: &mut u64, r: &Rect) {
            for v in [r.x0, r.y0, r.x1, r.y1] {
                eat(hash, &v.to_le_bytes());
            }
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        eat(&mut hash, &self.extent_nm.to_le_bytes());
        rect(&mut hash, &self.target);
        eat(&mut hash, &(self.neighbors.len() as u32).to_le_bytes());
        for r in &self.neighbors {
            rect(&mut hash, r);
        }
        eat(&mut hash, &(self.srafs.len() as u32).to_le_bytes());
        for r in &self.srafs {
            rect(&mut hash, r);
        }
        format!("{hash:016x}")
    }

    /// Returns a copy cropped to the central `crop_nm` window, with
    /// coordinates rebased so the crop's top-left is the new origin.
    /// Shapes entirely outside the window are dropped; straddling shapes
    /// are kept (the rasteriser clips at the window edge).
    pub fn cropped_center(&self, crop_nm: f64) -> Clip {
        let off = (self.extent_nm - crop_nm) / 2.0;
        let window = Rect::new(off, off, off + crop_nm, off + crop_nm);
        let rebase = |r: &Rect| r.translated(-off, -off);
        Clip {
            extent_nm: crop_nm,
            target: rebase(&self.target),
            neighbors: self
                .neighbors
                .iter()
                .filter(|r| r.overlaps(&window))
                .map(rebase)
                .collect(),
            srafs: self
                .srafs
                .iter()
                .filter(|r| r.overlaps(&window))
                .map(rebase)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_clip() -> Clip {
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        clip.neighbors
            .push(Rect::centered_square(1144.0, 1024.0, 60.0));
        clip.srafs
            .push(Rect::centered(1024.0, 900.0, 100.0, 30.0));
        clip
    }

    #[test]
    fn shape_accounting() {
        let clip = sample_clip();
        assert_eq!(clip.shape_count(), 3);
        assert_eq!(clip.contacts().count(), 2);
        assert_eq!(clip.center(), (1024.0, 1024.0));
    }

    #[test]
    fn mask_grid_covers_all_shapes() {
        let clip = sample_clip();
        let grid = clip.to_mask_grid(256);
        let expected = 60.0 * 60.0 * 2.0 + 100.0 * 30.0;
        assert!((grid.transmitted_area_nm2() - expected).abs() / expected < 0.02);
    }

    #[test]
    fn overlap_detection() {
        let mut clip = sample_clip();
        assert!(!clip.has_overlaps());
        clip.neighbors
            .push(Rect::centered_square(1030.0, 1024.0, 60.0));
        assert!(clip.has_overlaps());
    }

    #[test]
    fn fingerprint_is_stable_and_geometry_sensitive() {
        let clip = sample_clip();
        let fp = clip.fingerprint();
        assert_eq!(fp.len(), 16);
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(fp, sample_clip().fingerprint(), "same geometry, same id");
        let mut moved = sample_clip();
        moved.target = Rect::centered_square(1025.0, 1024.0, 60.0);
        assert_ne!(fp, moved.fingerprint());
        let mut extra = sample_clip();
        extra.srafs.push(Rect::centered(900.0, 900.0, 100.0, 30.0));
        assert_ne!(fp, extra.fingerprint());
    }

    #[test]
    fn center_crop_rebases_and_filters() {
        let mut clip = sample_clip();
        // A far-corner neighbor that the 1um crop must drop.
        clip.neighbors.push(Rect::centered_square(100.0, 100.0, 60.0));
        let cropped = clip.cropped_center(1024.0);
        assert_eq!(cropped.extent_nm, 1024.0);
        // Target recentered at 512.
        assert_eq!(cropped.target.center(), (512.0, 512.0));
        // Near neighbor kept (rebased), far one dropped.
        assert_eq!(cropped.neighbors.len(), 1);
        assert_eq!(cropped.neighbors[0].center(), (632.0, 512.0));
        assert_eq!(cropped.srafs.len(), 1);
    }
}
