//! Property-style tests for the layout substrate: geometry algebra,
//! clip generation invariants and rasterisation conservation laws.
//! Deterministic seeded loops replace proptest so the suite runs offline.

use litho_tensor::rng::{Rng, SeedableRng, StdRng};

use litho_layout::{rasterize_clip, Clip, ClipFamily, ClipGenerator, RasterConfig, Rect};
use litho_sim::ProcessConfig;

const CASES: usize = 64;

fn rect(rng: &mut StdRng) -> Rect {
    let x = rng.gen_range(0.0f64..1800.0);
    let y = rng.gen_range(0.0f64..1800.0);
    let w = rng.gen_range(10.0f64..200.0);
    let h = rng.gen_range(10.0f64..200.0);
    Rect::new(x, y, x + w, y + h)
}

#[test]
fn overlap_is_symmetric_and_implies_zero_separation() {
    let mut rng = StdRng::seed_from_u64(0x1A17_0001);
    for _ in 0..CASES {
        let a = rect(&mut rng);
        let b = rect(&mut rng);
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
        assert!((a.separation(&b) - b.separation(&a)).abs() < 1e-9);
        if a.overlaps(&b) {
            assert_eq!(a.separation(&b), 0.0);
        } else {
            assert!(a.separation(&b) > 0.0);
        }
    }
}

#[test]
fn inflate_preserves_center_and_grows_area() {
    let mut rng = StdRng::seed_from_u64(0x1A17_0002);
    for _ in 0..CASES {
        let r = rect(&mut rng);
        let d = rng.gen_range(0.0f64..50.0);
        let grown = r.inflated(d, d);
        let (cx, cy) = r.center();
        let (gx, gy) = grown.center();
        assert!((cx - gx).abs() < 1e-9 && (cy - gy).abs() < 1e-9);
        assert!(grown.area() >= r.area());
        assert!(grown.contains(r.x0, r.y0));
    }
}

#[test]
fn translation_preserves_shape() {
    let mut rng = StdRng::seed_from_u64(0x1A17_0003);
    for _ in 0..CASES {
        let r = rect(&mut rng);
        let dx = rng.gen_range(-100.0f64..100.0);
        let dy = rng.gen_range(-100.0f64..100.0);
        let t = r.translated(dx, dy);
        assert!((t.width() - r.width()).abs() < 1e-9);
        assert!((t.height() - r.height()).abs() < 1e-9);
        assert!((t.area() - r.area()).abs() < 1e-6);
    }
}

#[test]
fn generated_clips_are_always_drc_clean() {
    let generator = ClipGenerator::new(&ProcessConfig::n10());
    let mut seed_rng = StdRng::seed_from_u64(0x1A17_0004);
    for _ in 0..CASES {
        let seed = seed_rng.gen_range(0u64..500);
        let family_idx = seed_rng.gen_range(0usize..3);
        let mut rng = StdRng::seed_from_u64(seed);
        let clip = generator.generate(ClipFamily::ALL[family_idx], &mut rng);
        assert!(!clip.has_overlaps());
        assert_eq!(clip.target.center(), (1024.0, 1024.0));
        for r in clip.contacts() {
            assert!(r.x0 >= 0.0 && r.y0 >= 0.0 && r.x1 <= 2048.0 && r.y1 <= 2048.0);
        }
    }
}

#[test]
fn rasterization_conserves_in_window_area() {
    let mut rng = StdRng::seed_from_u64(0x1A17_0005);
    for _ in 0..CASES {
        // A neighbor fully inside the 1 µm window: red-channel area equals
        // the drawn area within sub-pixel tolerance.
        let cx = rng.gen_range(300.0f64..700.0);
        let cy = rng.gen_range(300.0f64..700.0);
        let size = rng.gen_range(20.0f64..120.0);
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        clip.neighbors
            .push(Rect::centered_square(512.0 + cx, 512.0 + cy, size));
        let img = rasterize_clip(
            &clip,
            &RasterConfig {
                image_size: 128,
                window_nm: 1024,
            },
        )
        .unwrap();
        let px_area = (1024.0f64 / 128.0) * (1024.0 / 128.0);
        let red: f32 = img.as_slice()[..128 * 128].iter().sum();
        let drawn = size * size;
        assert!(
            ((red as f64) * px_area - drawn).abs() < drawn * 0.02 + px_area,
            "raster area {} vs drawn {drawn}",
            red as f64 * px_area
        );
    }
}

#[test]
fn center_crop_never_moves_the_target() {
    let mut rng = StdRng::seed_from_u64(0x1A17_0006);
    for _ in 0..CASES {
        let crop = rng.gen_range(512.0f64..2048.0);
        let clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        let cropped = clip.cropped_center(crop);
        let (cx, cy) = cropped.target.center();
        assert!((cx - crop / 2.0).abs() < 1e-9);
        assert!((cy - crop / 2.0).abs() < 1e-9);
    }
}
