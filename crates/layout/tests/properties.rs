//! Property-based tests for the layout substrate: geometry algebra,
//! clip generation invariants and rasterisation conservation laws.

use proptest::prelude::*;
use rand::SeedableRng;

use litho_layout::{rasterize_clip, Clip, ClipFamily, ClipGenerator, RasterConfig, Rect};
use litho_sim::ProcessConfig;

fn rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1800.0, 0.0f64..1800.0, 10.0f64..200.0, 10.0f64..200.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn overlap_is_symmetric_and_implies_zero_separation(a in rect(), b in rect()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert!((a.separation(&b) - b.separation(&a)).abs() < 1e-9);
        if a.overlaps(&b) {
            prop_assert_eq!(a.separation(&b), 0.0);
        } else {
            prop_assert!(a.separation(&b) > 0.0);
        }
    }

    #[test]
    fn inflate_preserves_center_and_grows_area(r in rect(), d in 0.0f64..50.0) {
        let grown = r.inflated(d, d);
        let (cx, cy) = r.center();
        let (gx, gy) = grown.center();
        prop_assert!((cx - gx).abs() < 1e-9 && (cy - gy).abs() < 1e-9);
        prop_assert!(grown.area() >= r.area());
        prop_assert!(grown.contains(r.x0, r.y0));
    }

    #[test]
    fn translation_preserves_shape(r in rect(), dx in -100.0f64..100.0, dy in -100.0f64..100.0) {
        let t = r.translated(dx, dy);
        prop_assert!((t.width() - r.width()).abs() < 1e-9);
        prop_assert!((t.height() - r.height()).abs() < 1e-9);
        prop_assert!((t.area() - r.area()).abs() < 1e-6);
    }

    #[test]
    fn generated_clips_are_always_drc_clean(seed in 0u64..500, family_idx in 0usize..3) {
        let generator = ClipGenerator::new(&ProcessConfig::n10());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let clip = generator.generate(ClipFamily::ALL[family_idx], &mut rng);
        prop_assert!(!clip.has_overlaps());
        prop_assert_eq!(clip.target.center(), (1024.0, 1024.0));
        for r in clip.contacts() {
            prop_assert!(r.x0 >= 0.0 && r.y0 >= 0.0 && r.x1 <= 2048.0 && r.y1 <= 2048.0);
        }
    }

    #[test]
    fn rasterization_conserves_in_window_area(cx in 300.0f64..700.0, cy in 300.0f64..700.0, size in 20.0f64..120.0) {
        // A neighbor fully inside the 1 µm window: red-channel area equals
        // the drawn area within sub-pixel tolerance.
        let mut clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        clip.neighbors
            .push(Rect::centered_square(512.0 + cx, 512.0 + cy, size));
        let img = rasterize_clip(&clip, &RasterConfig { image_size: 128, window_nm: 1024 }).unwrap();
        let px_area = (1024.0f64 / 128.0) * (1024.0 / 128.0);
        let red: f32 = img.as_slice()[..128 * 128].iter().sum();
        let drawn = size * size;
        prop_assert!(
            ((red as f64) * px_area - drawn).abs() < drawn * 0.02 + px_area,
            "raster area {} vs drawn {drawn}",
            red as f64 * px_area
        );
    }

    #[test]
    fn center_crop_never_moves_the_target(crop in 512.0f64..2048.0) {
        let clip = Clip::new(2048.0, Rect::centered_square(1024.0, 1024.0, 60.0));
        let cropped = clip.cropped_center(crop);
        let (cx, cy) = cropped.target.center();
        prop_assert!((cx - crop / 2.0).abs() < 1e-9);
        prop_assert!((cy - crop / 2.0).abs() < 1e-9);
    }
}
