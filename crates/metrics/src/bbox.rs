use litho_tensor::Tensor;

/// The axis-aligned bounding box of the foreground (≥ 0.5) pixels of a
/// monochrome image, in pixel coordinates (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundingBox {
    /// First foreground row.
    pub y0: usize,
    /// First foreground column.
    pub x0: usize,
    /// Last foreground row (inclusive).
    pub y1: usize,
    /// Last foreground column (inclusive).
    pub x1: usize,
}

impl BoundingBox {
    /// Extracts the bounding box from a rank-2 tensor; `None` when no
    /// pixel reaches the 0.5 class threshold (or the tensor is not rank 2).
    pub fn of(image: &Tensor) -> Option<BoundingBox> {
        let dims = image.dims();
        if dims.len() != 2 {
            return None;
        }
        let (h, w) = (dims[0], dims[1]);
        let data = image.as_slice();
        let mut bb: Option<BoundingBox> = None;
        for y in 0..h {
            for x in 0..w {
                if data[y * w + x] >= 0.5 {
                    bb = Some(match bb {
                        None => BoundingBox { y0: y, x0: x, y1: y, x1: x },
                        Some(b) => BoundingBox {
                            y0: b.y0.min(y),
                            x0: b.x0.min(x),
                            y1: b.y1.max(y),
                            x1: b.x1.max(x),
                        },
                    });
                }
            }
        }
        bb
    }

    /// Box width in pixels.
    pub fn width(&self) -> usize {
        self.x1 - self.x0 + 1
    }

    /// Box height in pixels.
    pub fn height(&self) -> usize {
        self.y1 - self.y0 + 1
    }

    /// Box centre `(cy, cx)` in fractional pixels.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.y0 + self.y1) as f64 / 2.0,
            (self.x0 + self.x1) as f64 / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_tight_box() {
        let mut img = Tensor::zeros(&[8, 8]);
        img.set(&[2, 3], 1.0).unwrap();
        img.set(&[5, 6], 0.7).unwrap();
        img.set(&[4, 4], 0.4).unwrap(); // below threshold
        let bb = BoundingBox::of(&img).unwrap();
        assert_eq!(bb, BoundingBox { y0: 2, x0: 3, y1: 5, x1: 6 });
        assert_eq!(bb.width(), 4);
        assert_eq!(bb.height(), 4);
        assert_eq!(bb.center(), (3.5, 4.5));
    }

    #[test]
    fn empty_image_has_no_box() {
        assert_eq!(BoundingBox::of(&Tensor::zeros(&[4, 4])), None);
        assert_eq!(BoundingBox::of(&Tensor::full(&[4, 4], 0.49)), None);
    }

    #[test]
    fn wrong_rank_is_none() {
        assert_eq!(BoundingBox::of(&Tensor::ones(&[1, 4, 4])), None);
    }
}
