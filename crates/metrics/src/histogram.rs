use litho_tensor::{Result, TensorError};

/// A fixed-bin histogram over `[min, max)` — used to reproduce the EDE
/// distribution plot (paper Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[min, max)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero bins or an empty
    /// range.
    pub fn new(min: f64, max: f64, bins: usize) -> Result<Self> {
        if bins == 0 || min.partial_cmp(&max) != Some(std::cmp::Ordering::Less) {
            return Err(TensorError::InvalidArgument(
                "histogram needs bins > 0 and max > min".into(),
            ));
        }
        Ok(Histogram {
            min,
            max,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
        })
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        if value < self.min {
            self.underflow += 1;
        } else if value >= self.max {
            self.overflow += 1;
        } else {
            let n = self.counts.len();
            let bin = ((value - self.min) / (self.max - self.min) * n as f64) as usize;
            self.counts[bin.min(n - 1)] += 1;
        }
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Total observations including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow + self.underflow
    }

    /// The `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.max - self.min) / self.counts.len() as f64;
        (self.min + i as f64 * width, self.min + (i + 1) as f64 * width)
    }

    /// Renders an ASCII bar chart (one row per bin) for terminal reports.
    pub fn to_ascii(&self, width: usize) -> String {
        let max_count = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max_count as usize).min(width));
            out.push_str(&format!("[{lo:5.1},{hi:5.1}) {c:5} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_values_correctly() {
        let mut h = Histogram::new(0.0, 8.0, 8).unwrap();
        h.extend([0.0, 0.5, 1.0, 7.99, 8.0, -0.1]);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[7], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn rejects_degenerate_config() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn bin_edges_cover_range() {
        let h = Histogram::new(0.0, 4.0, 4).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 1.0));
        assert_eq!(h.bin_edges(3), (3.0, 4.0));
    }

    #[test]
    fn ascii_render_contains_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend([0.5, 0.6, 1.5]);
        let s = h.to_ascii(10);
        assert!(s.contains("2"));
        assert!(s.lines().count() == 2);
    }
}
