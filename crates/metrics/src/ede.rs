use litho_tensor::{Result, Tensor, TensorError};

use crate::{check_pair, BoundingBox};

/// Edge displacement error of one sample (paper Definition 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdeValue {
    /// Displacement of the four bounding-box edges
    /// `[top, bottom, left, right]` in nm.
    pub edges_nm: [f64; 4],
}

impl EdeValue {
    /// Mean displacement over the four edges, nm — the per-sample EDE the
    /// paper reports (Table 3 averages this over the test set).
    pub fn mean_nm(&self) -> f64 {
        self.edges_nm.iter().sum::<f64>() / 4.0
    }

    /// Largest single-edge displacement, nm.
    pub fn max_nm(&self) -> f64 {
        self.edges_nm.iter().copied().fold(0.0, f64::max)
    }
}

/// Computes the edge displacement error between a predicted and a golden
/// resist image (rank-2, `[0, 1]`, class threshold 0.5).
///
/// Per Definition 1, the error of each edge is the distance between the
/// golden bounding-box edge and the predicted one; `nm_per_px` converts
/// pixel distances to nanometres (0.5 in the paper's 128 nm → 256 px
/// encoding).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when either image has no
/// foreground (no bounding box exists), or a shape error for mismatched
/// inputs.
pub fn ede(prediction: &Tensor, golden: &Tensor, nm_per_px: f64) -> Result<EdeValue> {
    check_pair(prediction, golden)?;
    let pb = BoundingBox::of(prediction).ok_or_else(|| {
        TensorError::InvalidArgument("prediction has no foreground pixels".into())
    })?;
    let gb = BoundingBox::of(golden)
        .ok_or_else(|| TensorError::InvalidArgument("golden image has no foreground pixels".into()))?;
    let d = |a: usize, b: usize| (a as f64 - b as f64).abs() * nm_per_px;
    Ok(EdeValue {
        edges_nm: [
            d(pb.y0, gb.y0),
            d(pb.y1, gb.y1),
            d(pb.x0, gb.x0),
            d(pb.x1, gb.x1),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect_image(y0: usize, x0: usize, y1: usize, x1: usize) -> Tensor {
        let mut img = Tensor::zeros(&[32, 32]);
        for y in y0..=y1 {
            for x in x0..=x1 {
                img.set(&[y, x], 1.0).unwrap();
            }
        }
        img
    }

    #[test]
    fn identical_images_have_zero_ede() {
        let img = rect_image(10, 10, 20, 20);
        let v = ede(&img, &img, 0.5).unwrap();
        assert_eq!(v.edges_nm, [0.0; 4]);
        assert_eq!(v.mean_nm(), 0.0);
    }

    #[test]
    fn pure_shift_moves_all_edges() {
        let golden = rect_image(10, 10, 20, 20);
        let pred = rect_image(12, 11, 22, 21);
        let v = ede(&pred, &golden, 0.5).unwrap();
        // Shift (2, 1) px at 0.5 nm/px: top/bottom 1nm, left/right 0.5nm.
        assert_eq!(v.edges_nm, [1.0, 1.0, 0.5, 0.5]);
        assert_eq!(v.mean_nm(), 0.75);
        assert_eq!(v.max_nm(), 1.0);
    }

    #[test]
    fn pure_dilation_moves_all_edges_outward() {
        let golden = rect_image(10, 10, 20, 20);
        let pred = rect_image(8, 8, 22, 22);
        let v = ede(&pred, &golden, 1.0).unwrap();
        assert_eq!(v.edges_nm, [2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn empty_images_are_errors() {
        let img = rect_image(10, 10, 20, 20);
        let empty = Tensor::zeros(&[32, 32]);
        assert!(ede(&empty, &img, 0.5).is_err());
        assert!(ede(&img, &empty, 0.5).is_err());
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = rect_image(1, 1, 2, 2);
        let b = Tensor::ones(&[16, 16]);
        assert!(ede(&a, &b, 0.5).is_err());
    }
}
