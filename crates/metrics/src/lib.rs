//! Evaluation metrics for end-to-end lithography modeling.
//!
//! Implements the four metrics of the paper's Section 2 exactly as
//! defined:
//!
//! * [`ede`] — **edge displacement error** (Definition 1): per-edge
//!   distances between the bounding boxes of the golden and predicted
//!   contours.
//! * [`pixel_accuracy`] (Definition 2), [`class_accuracy`] (Definition 3)
//!   and [`mean_iou`] (Definition 4) — the semantic-segmentation metrics
//!   over the monochrome resist images, with "class i" = "color i of a
//!   pixel".
//! * [`center_error_nm`] — the Euclidean distance between golden and
//!   predicted resist centres, used to evaluate the center-prediction CNN
//!   (paper §4.1: 0.43 nm on N10, 0.37 nm on N7).
//!
//! Predictions and golden images are rank-2 tensors with values in
//! `[0, 1]`; class membership is thresholded at 0.5.
//!
//! # Example
//!
//! ```
//! use litho_metrics::{mean_iou, pixel_accuracy};
//! use litho_tensor::Tensor;
//!
//! let golden = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0], &[2, 2])?;
//! let pred = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[2, 2])?;
//! assert_eq!(pixel_accuracy(&pred, &golden)?, 0.75);
//! assert_eq!(mean_iou(&pred, &golden)?, (0.5 + 2.0 / 3.0) / 2.0);
//! # Ok::<(), litho_tensor::TensorError>(())
//! ```

mod bbox;
mod center;
mod ede;
mod epe;
mod histogram;
mod record;
mod segmentation;
mod summary;

pub use bbox::BoundingBox;
pub use center::{center_error_nm, center_of_mass_px};
pub use ede::{ede, EdeValue};
pub use epe::{epe, epe_centered_square, EpeValue};
pub use histogram::Histogram;
pub use record::SampleRecord;
pub use segmentation::{class_accuracy, confusion, mean_iou, pixel_accuracy, Confusion};
pub use summary::{MetricAccumulator, MetricSummary, SliceSummary};

pub use litho_tensor::{Result, Tensor, TensorError};

pub(crate) fn check_pair(prediction: &Tensor, golden: &Tensor) -> Result<(usize, usize)> {
    let pd = prediction.dims();
    let gd = golden.dims();
    if pd != gd {
        return Err(TensorError::ShapeMismatch {
            left: pd.to_vec(),
            right: gd.to_vec(),
        });
    }
    if pd.len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: pd.len(),
        });
    }
    Ok((pd[0], pd[1]))
}
