//! Per-sample evaluation record — one JSONL line of a run ledger's
//! `samples.jsonl` (see DESIGN.md, "Run ledger").
//!
//! The record carries everything the paper reports per contact (EDE with
//! its per-edge breakdown, the Defs. 2–4 segmentation metrics, the §4.1
//! centre error) so downstream tooling (`lithogan_cli report` /
//! `compare`) can rebuild aggregate tables and histograms without
//! re-running inference. Serialization is hand-rolled JSON to keep the
//! workspace dependency-free; parsing lives in `litho-ledger`, which owns
//! the general JSON reader.

use litho_tensor::{Result, Tensor};

use crate::{center_error_nm, confusion, ede};

/// Metrics of one (prediction, golden) pair. Box-based fields are `None`
/// when either image has no foreground (no bounding box exists).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Sample index within the evaluated split.
    pub sample: u64,
    /// Pixel accuracy (Definition 2).
    pub pixel_accuracy: f64,
    /// Class accuracy (Definition 3).
    pub class_accuracy: f64,
    /// Mean IoU (Definition 4).
    pub mean_iou: f64,
    /// Mean 4-edge displacement, nm (Definition 1).
    pub ede_mean_nm: Option<f64>,
    /// Per-edge displacement `[top, bottom, left, right]`, nm.
    pub ede_edges_nm: Option<[f64; 4]>,
    /// Euclidean centre error, nm.
    pub center_error_nm: Option<f64>,
    /// FNV-1a fingerprint of the source clip's geometry (same scheme and
    /// format as the manifest dataset fingerprint). `None` on records
    /// written before clip identity existed, or when the evaluated pair
    /// has no clip provenance.
    pub clip_fingerprint: Option<String>,
    /// Pattern-family tag of the source clip (`"isolated"`, `"chain1d"`,
    /// `"array2d"`). `None` on legacy or provenance-less records.
    pub family: Option<String>,
}

impl SampleRecord {
    /// Computes the record for one pair (rank-2 images in `[0, 1]`,
    /// threshold 0.5; `nm_per_px` converts pixel distances to nm).
    ///
    /// # Errors
    ///
    /// Returns a shape error if the two images disagree. Empty-foreground
    /// pairs are not errors — the box-based fields come back `None`.
    pub fn compute(
        sample: u64,
        prediction: &Tensor,
        golden: &Tensor,
        nm_per_px: f64,
    ) -> Result<SampleRecord> {
        let c = confusion(prediction, golden)?;
        let (ede_mean_nm, ede_edges_nm, center) = match (
            ede(prediction, golden, nm_per_px),
            center_error_nm(prediction, golden, nm_per_px),
        ) {
            (Ok(e), Ok(ce)) => (Some(e.mean_nm()), Some(e.edges_nm), Some(ce)),
            _ => (None, None, None),
        };
        Ok(SampleRecord {
            sample,
            pixel_accuracy: c.pixel_accuracy(),
            class_accuracy: c.class_accuracy(),
            mean_iou: c.mean_iou(),
            ede_mean_nm,
            ede_edges_nm,
            center_error_nm: center,
            clip_fingerprint: None,
            family: None,
        })
    }

    /// Attaches clip provenance (fingerprint + family tag) to the record.
    #[must_use]
    pub fn with_identity(mut self, clip_fingerprint: &str, family: &str) -> SampleRecord {
        self.clip_fingerprint = Some(clip_fingerprint.to_string());
        self.family = Some(family.to_string());
        self
    }

    /// Renders the record as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        fn num(out: &mut String, v: f64) {
            if v.is_finite() {
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
        }
        fn opt(out: &mut String, v: Option<f64>) {
            match v {
                Some(v) => num(out, v),
                None => out.push_str("null"),
            }
        }
        let mut out = String::with_capacity(160);
        out.push_str("{\"sample\":");
        out.push_str(&self.sample.to_string());
        out.push_str(",\"pixel_accuracy\":");
        num(&mut out, self.pixel_accuracy);
        out.push_str(",\"class_accuracy\":");
        num(&mut out, self.class_accuracy);
        out.push_str(",\"mean_iou\":");
        num(&mut out, self.mean_iou);
        out.push_str(",\"ede_mean_nm\":");
        opt(&mut out, self.ede_mean_nm);
        out.push_str(",\"ede_edges_nm\":");
        match self.ede_edges_nm {
            Some(edges) => {
                out.push('[');
                for (i, e) in edges.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    num(&mut out, *e);
                }
                out.push(']');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"center_error_nm\":");
        opt(&mut out, self.center_error_nm);
        // Identity fields are emitted only when present, so records
        // without clip provenance keep the legacy line shape (and legacy
        // readers keep working — absent means null).
        if let Some(fp) = &self.clip_fingerprint {
            out.push_str(",\"clip_fingerprint\":\"");
            out.push_str(fp);
            out.push('"');
        }
        if let Some(family) = &self.family {
            out.push_str(",\"family\":\"");
            out.push_str(family);
            out.push('"');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(y0: usize, x0: usize, size: usize) -> Tensor {
        let mut img = Tensor::zeros(&[16, 16]);
        for y in y0..y0 + size {
            for x in x0..x0 + size {
                img.set(&[y, x], 1.0).unwrap();
            }
        }
        img
    }

    #[test]
    fn perfect_pair_record() {
        let g = square(4, 4, 6);
        let r = SampleRecord::compute(3, &g, &g, 0.5).unwrap();
        assert_eq!(r.sample, 3);
        assert_eq!(r.pixel_accuracy, 1.0);
        assert_eq!(r.ede_mean_nm, Some(0.0));
        assert_eq!(r.ede_edges_nm, Some([0.0; 4]));
        assert_eq!(r.center_error_nm, Some(0.0));
    }

    #[test]
    fn shifted_pair_has_directional_edges() {
        let golden = square(4, 4, 6);
        let pred = square(6, 4, 6); // shifted +2 rows
        let r = SampleRecord::compute(0, &pred, &golden, 1.0).unwrap();
        // [top, bottom, left, right]: both horizontal edges move 2 px.
        assert_eq!(r.ede_edges_nm, Some([2.0, 2.0, 0.0, 0.0]));
        assert_eq!(r.ede_mean_nm, Some(1.0));
    }

    #[test]
    fn empty_prediction_yields_null_boxes() {
        let golden = square(4, 4, 6);
        let r = SampleRecord::compute(0, &Tensor::zeros(&[16, 16]), &golden, 1.0).unwrap();
        assert_eq!(r.ede_mean_nm, None);
        assert_eq!(r.ede_edges_nm, None);
        assert!(r.to_jsonl().contains("\"ede_mean_nm\":null"));
        assert!(r.to_jsonl().contains("\"ede_edges_nm\":null"));
    }

    #[test]
    fn jsonl_shape() {
        let r = SampleRecord {
            sample: 7,
            pixel_accuracy: 0.5,
            class_accuracy: 0.25,
            mean_iou: 0.125,
            ede_mean_nm: Some(1.5),
            ede_edges_nm: Some([1.0, 2.0, 1.5, 1.5]),
            center_error_nm: Some(0.75),
            clip_fingerprint: None,
            family: None,
        };
        // Identity-less records keep the legacy line shape.
        assert_eq!(
            r.to_jsonl(),
            "{\"sample\":7,\"pixel_accuracy\":0.5,\"class_accuracy\":0.25,\
             \"mean_iou\":0.125,\"ede_mean_nm\":1.5,\
             \"ede_edges_nm\":[1,2,1.5,1.5],\"center_error_nm\":0.75}"
        );
        let tagged = r.with_identity("00000000deadbeef", "chain1d");
        assert_eq!(
            tagged.to_jsonl(),
            "{\"sample\":7,\"pixel_accuracy\":0.5,\"class_accuracy\":0.25,\
             \"mean_iou\":0.125,\"ede_mean_nm\":1.5,\
             \"ede_edges_nm\":[1,2,1.5,1.5],\"center_error_nm\":0.75,\
             \"clip_fingerprint\":\"00000000deadbeef\",\"family\":\"chain1d\"}"
        );
    }
}
