use litho_tensor::{Result, Tensor};

use crate::check_pair;

/// The 2 × 2 confusion matrix of a binary segmentation:
/// `p[i][j]` = number of pixels of class `i` predicted as class `j`
/// (paper notation `p_{i,j}`, with class = pixel color).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Confusion {
    /// `p[golden_class][predicted_class]`.
    pub p: [[u64; 2]; 2],
}

impl Confusion {
    /// Total pixels of golden class `i` (`t_i = Σ_j p_{i,j}`).
    pub fn t(&self, i: usize) -> u64 {
        self.p[i][0] + self.p[i][1]
    }

    /// Total pixel count.
    pub fn total(&self) -> u64 {
        self.t(0) + self.t(1)
    }

    /// Pixel accuracy (paper Definition 2): `Σ_i p_{i,i} / Σ_i t_i`.
    pub fn pixel_accuracy(&self) -> f64 {
        let correct = self.p[0][0] + self.p[1][1];
        correct as f64 / self.total().max(1) as f64
    }

    /// Class accuracy (paper Definition 3):
    /// `(1/2) Σ_i p_{i,i} / t_i`. A class absent from the golden image
    /// contributes accuracy 1 when it is also absent from the prediction.
    pub fn class_accuracy(&self) -> f64 {
        let per_class = |i: usize| {
            let ti = self.t(i);
            if ti == 0 {
                // Vacuously correct if the prediction also has none.
                let predicted: u64 = self.p[0][i] + self.p[1][i];
                if predicted == 0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                self.p[i][i] as f64 / ti as f64
            }
        };
        (per_class(0) + per_class(1)) / 2.0
    }

    /// Mean IoU (paper Definition 4):
    /// `(1/2) Σ_i p_{i,i} / (t_i - p_{i,i} + Σ_j p_{j,i})`.
    pub fn mean_iou(&self) -> f64 {
        let per_class = |i: usize| {
            let inter = self.p[i][i];
            let union = self.t(i) - inter + self.p[0][i] + self.p[1][i];
            if union == 0 {
                1.0
            } else {
                inter as f64 / union as f64
            }
        };
        (per_class(0) + per_class(1)) / 2.0
    }
}

/// Builds the confusion matrix of a prediction against a golden image
/// (rank-2, `[0, 1]`, class threshold 0.5).
///
/// # Errors
///
/// Returns a shape error if the images disagree or are not rank 2.
pub fn confusion(prediction: &Tensor, golden: &Tensor) -> Result<Confusion> {
    check_pair(prediction, golden)?;
    let mut p = [[0u64; 2]; 2];
    for (&pv, &gv) in prediction.as_slice().iter().zip(golden.as_slice()) {
        let pi = usize::from(pv >= 0.5);
        let gi = usize::from(gv >= 0.5);
        p[gi][pi] += 1;
    }
    Ok(Confusion { p })
}

/// Pixel accuracy (Definition 2). See [`Confusion::pixel_accuracy`].
///
/// # Errors
///
/// Same conditions as [`confusion`].
pub fn pixel_accuracy(prediction: &Tensor, golden: &Tensor) -> Result<f64> {
    Ok(confusion(prediction, golden)?.pixel_accuracy())
}

/// Class accuracy (Definition 3). See [`Confusion::class_accuracy`].
///
/// # Errors
///
/// Same conditions as [`confusion`].
pub fn class_accuracy(prediction: &Tensor, golden: &Tensor) -> Result<f64> {
    Ok(confusion(prediction, golden)?.class_accuracy())
}

/// Mean intersection-over-union (Definition 4). See
/// [`Confusion::mean_iou`].
///
/// # Errors
///
/// Same conditions as [`confusion`].
pub fn mean_iou(prediction: &Tensor, golden: &Tensor) -> Result<f64> {
    Ok(confusion(prediction, golden)?.mean_iou())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(vals: &[f32], side: usize) -> Tensor {
        Tensor::from_vec(vals.to_vec(), &[side, side]).unwrap()
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let g = img(&[1.0, 0.0, 0.0, 1.0], 2);
        assert_eq!(pixel_accuracy(&g, &g).unwrap(), 1.0);
        assert_eq!(class_accuracy(&g, &g).unwrap(), 1.0);
        assert_eq!(mean_iou(&g, &g).unwrap(), 1.0);
    }

    #[test]
    fn hand_computed_confusion() {
        // golden: [1,1,0,0]; pred: [1,0,0,1]
        let g = img(&[1.0, 1.0, 0.0, 0.0], 2);
        let p = img(&[1.0, 0.0, 0.0, 1.0], 2);
        let c = confusion(&p, &g).unwrap();
        assert_eq!(c.p, [[1, 1], [1, 1]]);
        assert_eq!(c.pixel_accuracy(), 0.5);
        assert_eq!(c.class_accuracy(), 0.5);
        // IoU class 0: 1/(2-1+2)=1/3; class 1: 1/3 → mean 1/3.
        assert!((c.mean_iou() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_background_prediction_on_mixed_golden() {
        let g = img(&[1.0, 1.0, 0.0, 0.0], 2);
        let p = img(&[0.0, 0.0, 0.0, 0.0], 2);
        let c = confusion(&p, &g).unwrap();
        assert_eq!(c.pixel_accuracy(), 0.5);
        // Class 0 fully correct, class 1 fully missed.
        assert_eq!(c.class_accuracy(), 0.5);
        // IoU class 0: 2/4; class 1: 0/2.
        assert_eq!(c.mean_iou(), 0.25);
    }

    #[test]
    fn absent_class_is_vacuously_correct() {
        let g = img(&[0.0, 0.0, 0.0, 0.0], 2);
        let p = img(&[0.0, 0.0, 0.0, 0.0], 2);
        let c = confusion(&p, &g).unwrap();
        assert_eq!(c.class_accuracy(), 1.0);
        assert_eq!(c.mean_iou(), 1.0);
    }

    #[test]
    fn threshold_at_half() {
        let g = img(&[0.5, 0.49, 0.51, 0.0], 2);
        let c = confusion(&g, &g).unwrap();
        assert_eq!(c.t(1), 2); // 0.5 and 0.51 are foreground
        assert_eq!(c.pixel_accuracy(), 1.0);
    }

    #[test]
    fn shape_checks() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(confusion(&a, &b).is_err());
    }
}
