//! Edge placement error (EPE) — the industry-standard pattern-fidelity
//! metric the paper contrasts its EDE with (§2: "EPE measures the
//! Manhattan distances between the printed resist contours and the
//! intended mask patterns at given measurement points").
//!
//! Unlike EDE (contour vs contour), EPE scores a contour against the
//! *design target*. The reproduction exposes it so downstream users can
//! evaluate predictions the way a fab would, even though the paper's
//! tables only report EDE.

use litho_tensor::{Result, Tensor, TensorError};

use crate::BoundingBox;

/// EPE of a printed image against a rectangular design target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpeValue {
    /// Signed placement error of the four edges
    /// `[top, bottom, left, right]` in nm; positive = printed edge
    /// outside the target.
    pub edges_nm: [f64; 4],
}

impl EpeValue {
    /// Mean absolute edge placement error, nm.
    pub fn mean_abs_nm(&self) -> f64 {
        self.edges_nm.iter().map(|e| e.abs()).sum::<f64>() / 4.0
    }

    /// Worst-case absolute edge placement error, nm.
    pub fn max_abs_nm(&self) -> f64 {
        self.edges_nm.iter().map(|e| e.abs()).fold(0.0, f64::max)
    }

    /// Whether all edges sit within `tolerance_nm` of the target — the
    /// acceptance check of §4.2 uses 10 % of the contact half pitch.
    pub fn within(&self, tolerance_nm: f64) -> bool {
        self.max_abs_nm() <= tolerance_nm
    }
}

/// Computes the EPE of a printed image (rank-2, `[0, 1]`, class threshold
/// 0.5) against a rectangular design target given in *pixel* coordinates
/// `(y0, x0, y1, x1)` (inclusive), with `nm_per_px` conversion.
///
/// Measurement points are the four edge midpoints of the target, per the
/// conventional definition; with axis-aligned boxes the Manhattan distance
/// at a midpoint reduces to the per-axis edge offset.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when the image has no
/// foreground or the target box is degenerate.
pub fn epe(
    printed: &Tensor,
    target_px: (usize, usize, usize, usize),
    nm_per_px: f64,
) -> Result<EpeValue> {
    let (ty0, tx0, ty1, tx1) = target_px;
    if ty1 < ty0 || tx1 < tx0 {
        return Err(TensorError::InvalidArgument(
            "degenerate design target box".into(),
        ));
    }
    let bb = BoundingBox::of(printed).ok_or_else(|| {
        TensorError::InvalidArgument("printed image has no foreground pixels".into())
    })?;
    // Signed: positive when the printed edge lies outside the target.
    let d = |printed: usize, target: usize, outward_is_positive: bool| -> f64 {
        let diff = printed as f64 - target as f64;
        if outward_is_positive {
            diff * nm_per_px
        } else {
            -diff * nm_per_px
        }
    };
    Ok(EpeValue {
        edges_nm: [
            d(bb.y0, ty0, false), // top edge: printed above target = outside
            d(bb.y1, ty1, true),
            d(bb.x0, tx0, false),
            d(bb.x1, tx1, true),
        ],
    })
}

/// Convenience: EPE against a centred square target of `target_px` pixels
/// per side — the drawn contact at the centre of a golden window.
///
/// # Errors
///
/// Same conditions as [`epe`].
pub fn epe_centered_square(
    printed: &Tensor,
    target_size_px: usize,
    nm_per_px: f64,
) -> Result<EpeValue> {
    let dims = printed.dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: dims.len(),
        });
    }
    let (h, w) = (dims[0], dims[1]);
    if target_size_px == 0 || target_size_px > h || target_size_px > w {
        return Err(TensorError::InvalidArgument(
            "target larger than the image".into(),
        ));
    }
    let y0 = (h - target_size_px) / 2;
    let x0 = (w - target_size_px) / 2;
    epe(
        printed,
        (y0, x0, y0 + target_size_px - 1, x0 + target_size_px - 1),
        nm_per_px,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(y0: usize, x0: usize, size: usize) -> Tensor {
        let mut img = Tensor::zeros(&[32, 32]);
        for y in y0..y0 + size {
            for x in x0..x0 + size {
                img.set(&[y, x], 1.0).unwrap();
            }
        }
        img
    }

    #[test]
    fn exact_print_has_zero_epe() {
        let img = square(10, 10, 8);
        let v = epe(&img, (10, 10, 17, 17), 1.0).unwrap();
        assert_eq!(v.edges_nm, [0.0; 4]);
        assert!(v.within(0.0));
    }

    #[test]
    fn oversized_print_is_positive_on_all_edges() {
        let img = square(8, 8, 12); // extends 2px beyond a (10,10,17,17) target
        let v = epe(&img, (10, 10, 17, 17), 0.5).unwrap();
        assert_eq!(v.edges_nm, [1.0, 1.0, 1.0, 1.0]);
        assert_eq!(v.mean_abs_nm(), 1.0);
        assert!(!v.within(0.5));
        assert!(v.within(1.0));
    }

    #[test]
    fn undersized_print_is_negative() {
        let img = square(12, 12, 4);
        let v = epe(&img, (10, 10, 17, 17), 1.0).unwrap();
        assert_eq!(v.edges_nm, [-2.0, -2.0, -2.0, -2.0]);
        assert_eq!(v.max_abs_nm(), 2.0);
    }

    #[test]
    fn shifted_print_has_mixed_signs() {
        let img = square(12, 10, 8); // shifted 2px down
        let v = epe(&img, (10, 10, 17, 17), 1.0).unwrap();
        assert_eq!(v.edges_nm, [-2.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn centered_square_helper() {
        // 8px target centered in 32px image: rows/cols 12..=19.
        let img = square(12, 12, 8);
        let v = epe_centered_square(&img, 8, 1.0).unwrap();
        assert_eq!(v.edges_nm, [0.0; 4]);
        assert!(epe_centered_square(&img, 64, 1.0).is_err());
    }

    #[test]
    fn empty_image_is_error() {
        let img = Tensor::zeros(&[32, 32]);
        assert!(epe(&img, (10, 10, 17, 17), 1.0).is_err());
        let sq = square(1, 1, 2);
        assert!(epe(&sq, (5, 5, 4, 4), 1.0).is_err());
    }
}
