use litho_tensor::{Result, Tensor};

use crate::SampleRecord;

/// Aggregated evaluation results over a test set — one row of the paper's
/// Table 3 (EDE mean/std, pixel accuracy, class accuracy, mean IoU) plus
/// the CNN centre-error statistic of §4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Number of samples accumulated.
    pub samples: usize,
    /// Mean per-sample EDE, nm.
    pub ede_mean_nm: f64,
    /// Standard deviation of per-sample EDE, nm.
    pub ede_std_nm: f64,
    /// Mean per-edge displacement `[top, bottom, left, right]`, nm.
    /// A skew between entries is a directional bias the 4-edge mean
    /// hides (e.g. the generator consistently printing too low).
    pub ede_edge_mean_nm: [f64; 4],
    /// Mean pixel accuracy (Definition 2).
    pub pixel_accuracy: f64,
    /// Mean class accuracy (Definition 3).
    pub class_accuracy: f64,
    /// Mean IoU (Definition 4).
    pub mean_iou: f64,
    /// Mean Euclidean centre error, nm.
    pub center_error_nm: f64,
}

/// Streaming accumulator for [`MetricSummary`] over (prediction, golden)
/// pairs.
///
/// # Example
///
/// ```
/// use litho_metrics::MetricAccumulator;
/// use litho_tensor::Tensor;
///
/// let mut acc = MetricAccumulator::new(0.5);
/// let golden = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2])?;
/// acc.add(&golden, &golden)?;
/// let summary = acc.summary();
/// assert_eq!(summary.samples, 1);
/// assert_eq!(summary.ede_mean_nm, 0.0);
/// # Ok::<(), litho_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MetricAccumulator {
    nm_per_px: f64,
    ede_values: Vec<f64>,
    edge_sums: [f64; 4],
    center_values: Vec<f64>,
    pixel_acc_sum: f64,
    class_acc_sum: f64,
    iou_sum: f64,
    samples: usize,
    skipped: usize,
}

impl MetricAccumulator {
    /// Creates an accumulator; `nm_per_px` converts pixel distances to nm.
    pub fn new(nm_per_px: f64) -> Self {
        MetricAccumulator {
            nm_per_px,
            ede_values: Vec::new(),
            edge_sums: [0.0; 4],
            center_values: Vec::new(),
            pixel_acc_sum: 0.0,
            class_acc_sum: 0.0,
            iou_sum: 0.0,
            samples: 0,
            skipped: 0,
        }
    }

    /// Accumulates one (prediction, golden) image pair.
    ///
    /// Pairs where either image is empty (no foreground) contribute to the
    /// segmentation metrics but are counted as *skipped* for EDE and
    /// centre error, since no bounding box exists; [`Self::skipped`]
    /// exposes the count.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the two images disagree.
    pub fn add(&mut self, prediction: &Tensor, golden: &Tensor) -> Result<()> {
        self.add_pair(prediction, golden).map(|_| ())
    }

    /// Like [`Self::add`], but also returns the per-sample record (indexed
    /// by accumulation order) for appending to a run ledger.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the two images disagree.
    pub fn add_pair(&mut self, prediction: &Tensor, golden: &Tensor) -> Result<SampleRecord> {
        let record = SampleRecord::compute(self.samples as u64, prediction, golden, self.nm_per_px)?;
        self.add_record(&record);
        Ok(record)
    }

    /// Accumulates an already-computed per-sample record (e.g. replayed
    /// from a run ledger's `samples.jsonl`).
    pub fn add_record(&mut self, record: &SampleRecord) {
        self.pixel_acc_sum += record.pixel_accuracy;
        self.class_acc_sum += record.class_accuracy;
        self.iou_sum += record.mean_iou;
        match (record.ede_mean_nm, record.ede_edges_nm, record.center_error_nm) {
            (Some(mean), Some(edges), Some(ce)) => {
                self.ede_values.push(mean);
                for (sum, e) in self.edge_sums.iter_mut().zip(edges) {
                    *sum += e;
                }
                self.center_values.push(ce);
            }
            _ => self.skipped += 1,
        }
        self.samples += 1;
    }

    /// Per-sample EDE values accumulated so far (for Figure-7 histograms).
    pub fn ede_values(&self) -> &[f64] {
        &self.ede_values
    }

    /// Pairs skipped for box-based metrics because a side was empty.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Produces the aggregate summary. All-zero for an empty accumulator.
    pub fn summary(&self) -> MetricSummary {
        let n = self.samples.max(1) as f64;
        let ne = self.ede_values.len().max(1) as f64;
        let ede_mean = self.ede_values.iter().sum::<f64>() / ne;
        let ede_var = self
            .ede_values
            .iter()
            .map(|v| (v - ede_mean) * (v - ede_mean))
            .sum::<f64>()
            / ne;
        MetricSummary {
            samples: self.samples,
            ede_mean_nm: if self.ede_values.is_empty() { 0.0 } else { ede_mean },
            ede_std_nm: if self.ede_values.is_empty() { 0.0 } else { ede_var.sqrt() },
            ede_edge_mean_nm: self.edge_sums.map(|s| s / ne),
            pixel_accuracy: self.pixel_acc_sum / n * if self.samples == 0 { 0.0 } else { 1.0 },
            class_accuracy: self.class_acc_sum / n * if self.samples == 0 { 0.0 } else { 1.0 },
            mean_iou: self.iou_sum / n * if self.samples == 0 { 0.0 } else { 1.0 },
            center_error_nm: if self.center_values.is_empty() {
                0.0
            } else {
                self.center_values.iter().sum::<f64>() / self.center_values.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(y0: usize, x0: usize, size: usize) -> Tensor {
        let mut img = Tensor::zeros(&[16, 16]);
        for y in y0..y0 + size {
            for x in x0..x0 + size {
                img.set(&[y, x], 1.0).unwrap();
            }
        }
        img
    }

    #[test]
    fn perfect_predictions() {
        let mut acc = MetricAccumulator::new(0.5);
        let g = square(4, 4, 6);
        acc.add(&g, &g).unwrap();
        acc.add(&g, &g).unwrap();
        let s = acc.summary();
        assert_eq!(s.samples, 2);
        assert_eq!(s.ede_mean_nm, 0.0);
        assert_eq!(s.ede_std_nm, 0.0);
        assert_eq!(s.pixel_accuracy, 1.0);
        assert_eq!(s.mean_iou, 1.0);
        assert_eq!(s.center_error_nm, 0.0);
    }

    #[test]
    fn mixed_quality_statistics() {
        let mut acc = MetricAccumulator::new(1.0);
        let golden = square(4, 4, 6);
        acc.add(&golden, &golden).unwrap(); // EDE 0
        acc.add(&square(6, 4, 6), &golden).unwrap(); // shift 2px: EDE 1nm mean
        let s = acc.summary();
        assert!((s.ede_mean_nm - 0.5).abs() < 1e-9);
        assert!((s.ede_std_nm - 0.5).abs() < 1e-9);
        assert!(s.pixel_accuracy < 1.0);
        assert_eq!(acc.ede_values(), &[0.0, 1.0]);
    }

    #[test]
    fn empty_prediction_is_skipped_for_boxes() {
        let mut acc = MetricAccumulator::new(1.0);
        let golden = square(4, 4, 6);
        acc.add(&Tensor::zeros(&[16, 16]), &golden).unwrap();
        assert_eq!(acc.skipped(), 1);
        let s = acc.summary();
        assert_eq!(s.samples, 1);
        assert_eq!(s.ede_mean_nm, 0.0); // no EDE recorded
        assert!(s.pixel_accuracy < 1.0); // segmentation still counted
    }

    #[test]
    fn directional_bias_shows_in_edge_means() {
        let mut acc = MetricAccumulator::new(1.0);
        let golden = square(4, 4, 6);
        // Two predictions both shifted down by 2 px: top/bottom edges off
        // by 2 nm, left/right exact — a pure vertical bias.
        acc.add(&square(6, 4, 6), &golden).unwrap();
        let rec = acc.add_pair(&square(6, 4, 6), &golden).unwrap();
        assert_eq!(rec.sample, 1);
        let s = acc.summary();
        assert_eq!(s.ede_edge_mean_nm, [2.0, 2.0, 0.0, 0.0]);
        assert!((s.ede_mean_nm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_is_all_zero() {
        let s = MetricAccumulator::new(1.0).summary();
        assert_eq!(s.samples, 0);
        assert_eq!(s.pixel_accuracy, 0.0);
    }
}
