use litho_tensor::{Result, Tensor};

use crate::SampleRecord;

/// Aggregate over one pattern-family slice of the evaluated set.
///
/// Box-based aggregates are `None` when every record in the slice was
/// skipped (no bounding box) — absent, never NaN, matching the
/// sample-record convention.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceSummary {
    /// Family tag (`"isolated"`, `"chain1d"`, `"array2d"`).
    pub family: String,
    /// Records carrying this family tag.
    pub samples: usize,
    /// Of those, pairs skipped for box metrics (a side was empty).
    pub skipped: usize,
    /// Mean per-sample EDE over the slice, nm.
    pub ede_mean_nm: Option<f64>,
    /// Mean Euclidean centre error over the slice, nm.
    pub center_error_nm: Option<f64>,
    pub pixel_accuracy: f64,
    pub class_accuracy: f64,
    pub mean_iou: f64,
}

/// Aggregated evaluation results over a test set — one row of the paper's
/// Table 3 (EDE mean/std, pixel accuracy, class accuracy, mean IoU) plus
/// the CNN centre-error statistic of §4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Number of samples accumulated.
    pub samples: usize,
    /// Mean per-sample EDE, nm.
    pub ede_mean_nm: f64,
    /// Standard deviation of per-sample EDE, nm.
    pub ede_std_nm: f64,
    /// Mean per-edge displacement `[top, bottom, left, right]`, nm.
    /// A skew between entries is a directional bias the 4-edge mean
    /// hides (e.g. the generator consistently printing too low).
    pub ede_edge_mean_nm: [f64; 4],
    /// Mean pixel accuracy (Definition 2).
    pub pixel_accuracy: f64,
    /// Mean class accuracy (Definition 3).
    pub class_accuracy: f64,
    /// Mean IoU (Definition 4).
    pub mean_iou: f64,
    /// Mean Euclidean centre error, nm.
    pub center_error_nm: f64,
    /// Pairs excluded from the box-based aggregates because a side had no
    /// foreground. Nonzero here with a low EDE is the signature of a
    /// model collapsing to empty output.
    pub skipped: usize,
    /// Per-family slice aggregates, sorted by family name. Empty when no
    /// record carried a family tag (legacy ledgers).
    pub slices: Vec<SliceSummary>,
}

impl MetricSummary {
    /// Looks up one family slice by tag.
    pub fn slice(&self, family: &str) -> Option<&SliceSummary> {
        self.slices.iter().find(|s| s.family == family)
    }
}

/// Streaming accumulator for [`MetricSummary`] over (prediction, golden)
/// pairs.
///
/// # Example
///
/// ```
/// use litho_metrics::MetricAccumulator;
/// use litho_tensor::Tensor;
///
/// let mut acc = MetricAccumulator::new(0.5);
/// let golden = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2])?;
/// acc.add(&golden, &golden)?;
/// let summary = acc.summary();
/// assert_eq!(summary.samples, 1);
/// assert_eq!(summary.ede_mean_nm, 0.0);
/// # Ok::<(), litho_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MetricAccumulator {
    nm_per_px: f64,
    ede_values: Vec<f64>,
    edge_sums: [f64; 4],
    center_values: Vec<f64>,
    pixel_acc_sum: f64,
    class_acc_sum: f64,
    iou_sum: f64,
    samples: usize,
    skipped: usize,
    slices: Vec<SliceAcc>,
}

/// Streaming per-family accumulation behind [`SliceSummary`].
#[derive(Debug, Clone)]
struct SliceAcc {
    family: String,
    ede_sum: f64,
    ede_count: usize,
    center_sum: f64,
    pixel_sum: f64,
    class_sum: f64,
    iou_sum: f64,
    samples: usize,
    skipped: usize,
}

impl SliceAcc {
    fn new(family: &str) -> Self {
        SliceAcc {
            family: family.to_string(),
            ede_sum: 0.0,
            ede_count: 0,
            center_sum: 0.0,
            pixel_sum: 0.0,
            class_sum: 0.0,
            iou_sum: 0.0,
            samples: 0,
            skipped: 0,
        }
    }

    fn summary(&self) -> SliceSummary {
        let n = self.samples.max(1) as f64;
        let boxed = |sum: f64| {
            (self.ede_count > 0).then(|| sum / self.ede_count as f64)
        };
        SliceSummary {
            family: self.family.clone(),
            samples: self.samples,
            skipped: self.skipped,
            ede_mean_nm: boxed(self.ede_sum),
            center_error_nm: boxed(self.center_sum),
            pixel_accuracy: self.pixel_sum / n,
            class_accuracy: self.class_sum / n,
            mean_iou: self.iou_sum / n,
        }
    }
}

impl MetricAccumulator {
    /// Creates an accumulator; `nm_per_px` converts pixel distances to nm.
    pub fn new(nm_per_px: f64) -> Self {
        MetricAccumulator {
            nm_per_px,
            ede_values: Vec::new(),
            edge_sums: [0.0; 4],
            center_values: Vec::new(),
            pixel_acc_sum: 0.0,
            class_acc_sum: 0.0,
            iou_sum: 0.0,
            samples: 0,
            skipped: 0,
            slices: Vec::new(),
        }
    }

    /// Accumulates one (prediction, golden) image pair.
    ///
    /// Pairs where either image is empty (no foreground) contribute to the
    /// segmentation metrics but are counted as *skipped* for EDE and
    /// centre error, since no bounding box exists; [`Self::skipped`]
    /// exposes the count.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the two images disagree.
    pub fn add(&mut self, prediction: &Tensor, golden: &Tensor) -> Result<()> {
        self.add_pair(prediction, golden).map(|_| ())
    }

    /// Like [`Self::add`], but also returns the per-sample record (indexed
    /// by accumulation order) for appending to a run ledger.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the two images disagree.
    pub fn add_pair(&mut self, prediction: &Tensor, golden: &Tensor) -> Result<SampleRecord> {
        let record = SampleRecord::compute(self.samples as u64, prediction, golden, self.nm_per_px)?;
        self.add_record(&record);
        Ok(record)
    }

    /// Like [`Self::add_pair`], but stamps clip provenance (fingerprint +
    /// family tag) onto the record *before* accumulating, so the
    /// per-family slices see it and the ledger line carries identity.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the two images disagree.
    pub fn add_pair_identified(
        &mut self,
        prediction: &Tensor,
        golden: &Tensor,
        clip_fingerprint: &str,
        family: &str,
    ) -> Result<SampleRecord> {
        let record =
            SampleRecord::compute(self.samples as u64, prediction, golden, self.nm_per_px)?
                .with_identity(clip_fingerprint, family);
        self.add_record(&record);
        Ok(record)
    }

    /// Accumulates an already-computed per-sample record (e.g. replayed
    /// from a run ledger's `samples.jsonl`).
    pub fn add_record(&mut self, record: &SampleRecord) {
        self.pixel_acc_sum += record.pixel_accuracy;
        self.class_acc_sum += record.class_accuracy;
        self.iou_sum += record.mean_iou;
        let boxed = match (record.ede_mean_nm, record.ede_edges_nm, record.center_error_nm) {
            (Some(mean), Some(edges), Some(ce)) => {
                self.ede_values.push(mean);
                for (sum, e) in self.edge_sums.iter_mut().zip(edges) {
                    *sum += e;
                }
                self.center_values.push(ce);
                true
            }
            _ => {
                self.skipped += 1;
                false
            }
        };
        if let Some(family) = &record.family {
            let slice = match self.slices.iter_mut().find(|s| s.family == *family) {
                Some(slice) => slice,
                None => {
                    self.slices.push(SliceAcc::new(family));
                    self.slices.last_mut().expect("just pushed")
                }
            };
            slice.pixel_sum += record.pixel_accuracy;
            slice.class_sum += record.class_accuracy;
            slice.iou_sum += record.mean_iou;
            if boxed {
                slice.ede_sum += record.ede_mean_nm.expect("boxed record");
                slice.center_sum += record.center_error_nm.expect("boxed record");
                slice.ede_count += 1;
            } else {
                slice.skipped += 1;
            }
            slice.samples += 1;
        }
        self.samples += 1;
    }

    /// Per-sample EDE values accumulated so far (for Figure-7 histograms).
    pub fn ede_values(&self) -> &[f64] {
        &self.ede_values
    }

    /// Pairs skipped for box-based metrics because a side was empty.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Produces the aggregate summary. All-zero for an empty accumulator.
    pub fn summary(&self) -> MetricSummary {
        let n = self.samples.max(1) as f64;
        let ne = self.ede_values.len().max(1) as f64;
        let ede_mean = self.ede_values.iter().sum::<f64>() / ne;
        let ede_var = self
            .ede_values
            .iter()
            .map(|v| (v - ede_mean) * (v - ede_mean))
            .sum::<f64>()
            / ne;
        MetricSummary {
            samples: self.samples,
            ede_mean_nm: if self.ede_values.is_empty() { 0.0 } else { ede_mean },
            ede_std_nm: if self.ede_values.is_empty() { 0.0 } else { ede_var.sqrt() },
            ede_edge_mean_nm: self.edge_sums.map(|s| s / ne),
            pixel_accuracy: self.pixel_acc_sum / n * if self.samples == 0 { 0.0 } else { 1.0 },
            class_accuracy: self.class_acc_sum / n * if self.samples == 0 { 0.0 } else { 1.0 },
            mean_iou: self.iou_sum / n * if self.samples == 0 { 0.0 } else { 1.0 },
            center_error_nm: if self.center_values.is_empty() {
                0.0
            } else {
                self.center_values.iter().sum::<f64>() / self.center_values.len() as f64
            },
            skipped: self.skipped,
            slices: {
                let mut slices: Vec<SliceSummary> =
                    self.slices.iter().map(SliceAcc::summary).collect();
                slices.sort_by(|a, b| a.family.cmp(&b.family));
                slices
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(y0: usize, x0: usize, size: usize) -> Tensor {
        let mut img = Tensor::zeros(&[16, 16]);
        for y in y0..y0 + size {
            for x in x0..x0 + size {
                img.set(&[y, x], 1.0).unwrap();
            }
        }
        img
    }

    #[test]
    fn perfect_predictions() {
        let mut acc = MetricAccumulator::new(0.5);
        let g = square(4, 4, 6);
        acc.add(&g, &g).unwrap();
        acc.add(&g, &g).unwrap();
        let s = acc.summary();
        assert_eq!(s.samples, 2);
        assert_eq!(s.ede_mean_nm, 0.0);
        assert_eq!(s.ede_std_nm, 0.0);
        assert_eq!(s.pixel_accuracy, 1.0);
        assert_eq!(s.mean_iou, 1.0);
        assert_eq!(s.center_error_nm, 0.0);
    }

    #[test]
    fn mixed_quality_statistics() {
        let mut acc = MetricAccumulator::new(1.0);
        let golden = square(4, 4, 6);
        acc.add(&golden, &golden).unwrap(); // EDE 0
        acc.add(&square(6, 4, 6), &golden).unwrap(); // shift 2px: EDE 1nm mean
        let s = acc.summary();
        assert!((s.ede_mean_nm - 0.5).abs() < 1e-9);
        assert!((s.ede_std_nm - 0.5).abs() < 1e-9);
        assert!(s.pixel_accuracy < 1.0);
        assert_eq!(acc.ede_values(), &[0.0, 1.0]);
    }

    #[test]
    fn empty_prediction_is_skipped_for_boxes() {
        let mut acc = MetricAccumulator::new(1.0);
        let golden = square(4, 4, 6);
        acc.add(&Tensor::zeros(&[16, 16]), &golden).unwrap();
        assert_eq!(acc.skipped(), 1);
        let s = acc.summary();
        assert_eq!(s.samples, 1);
        assert_eq!(s.ede_mean_nm, 0.0); // no EDE recorded
        assert!(s.pixel_accuracy < 1.0); // segmentation still counted
    }

    #[test]
    fn directional_bias_shows_in_edge_means() {
        let mut acc = MetricAccumulator::new(1.0);
        let golden = square(4, 4, 6);
        // Two predictions both shifted down by 2 px: top/bottom edges off
        // by 2 nm, left/right exact — a pure vertical bias.
        acc.add(&square(6, 4, 6), &golden).unwrap();
        let rec = acc.add_pair(&square(6, 4, 6), &golden).unwrap();
        assert_eq!(rec.sample, 1);
        let s = acc.summary();
        assert_eq!(s.ede_edge_mean_nm, [2.0, 2.0, 0.0, 0.0]);
        assert!((s.ede_mean_nm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_is_all_zero() {
        let s = MetricAccumulator::new(1.0).summary();
        assert_eq!(s.samples, 0);
        assert_eq!(s.pixel_accuracy, 0.0);
        assert_eq!(s.skipped, 0);
        assert!(s.slices.is_empty());
    }

    #[test]
    fn family_tags_build_sorted_slices() {
        let mut acc = MetricAccumulator::new(1.0);
        let golden = square(4, 4, 6);
        let tag = |mut r: SampleRecord, f: &str| {
            r.family = Some(f.to_string());
            r
        };
        // Two isolated records (EDE 0 and 1 nm), one chain1d (EDE 1 nm).
        let exact = SampleRecord::compute(0, &golden, &golden, 1.0).unwrap();
        let shifted = SampleRecord::compute(1, &square(6, 4, 6), &golden, 1.0).unwrap();
        acc.add_record(&tag(exact, "isolated"));
        acc.add_record(&tag(shifted.clone(), "isolated"));
        acc.add_record(&tag(shifted, "chain1d"));
        let s = acc.summary();
        assert_eq!(s.slices.len(), 2);
        assert_eq!(s.slices[0].family, "chain1d", "sorted by family name");
        assert_eq!(s.slices[1].family, "isolated");
        assert_eq!(s.slice("isolated").unwrap().samples, 2);
        assert_eq!(s.slice("isolated").unwrap().ede_mean_nm, Some(0.5));
        assert_eq!(s.slice("chain1d").unwrap().ede_mean_nm, Some(1.0));
        assert_eq!(s.slice("array2d"), None, "absent slice is absent");
    }

    #[test]
    fn add_pair_identified_feeds_record_and_slice() {
        let mut acc = MetricAccumulator::new(1.0);
        let golden = square(4, 4, 6);
        let rec = acc
            .add_pair_identified(&golden, &golden, "00000000deadbeef", "chain1d")
            .unwrap();
        assert_eq!(rec.clip_fingerprint.as_deref(), Some("00000000deadbeef"));
        assert_eq!(rec.family.as_deref(), Some("chain1d"));
        let s = acc.summary();
        assert_eq!(s.slice("chain1d").unwrap().samples, 1);
        assert_eq!(s.slice("chain1d").unwrap().ede_mean_nm, Some(0.0));
    }

    #[test]
    fn all_skipped_slice_has_absent_box_metrics() {
        let mut acc = MetricAccumulator::new(1.0);
        let golden = square(4, 4, 6);
        let mut rec = SampleRecord::compute(0, &Tensor::zeros(&[16, 16]), &golden, 1.0).unwrap();
        rec.family = Some("array2d".to_string());
        acc.add_record(&rec);
        let s = acc.summary();
        assert_eq!(s.skipped, 1);
        let slice = s.slice("array2d").unwrap();
        assert_eq!(slice.samples, 1);
        assert_eq!(slice.skipped, 1);
        assert_eq!(slice.ede_mean_nm, None, "never NaN");
        assert_eq!(slice.center_error_nm, None);
        assert!(slice.pixel_accuracy < 1.0);
    }
}
