use litho_tensor::{Result, Tensor, TensorError};

use crate::{check_pair, BoundingBox};

/// Foreground centre of mass `(cy, cx)` in fractional pixels, or `None`
/// when no pixel reaches the 0.5 threshold.
pub fn center_of_mass_px(image: &Tensor) -> Option<(f64, f64)> {
    let dims = image.dims();
    if dims.len() != 2 {
        return None;
    }
    let (h, w) = (dims[0], dims[1]);
    let data = image.as_slice();
    let (mut sy, mut sx, mut n) = (0.0f64, 0.0f64, 0u64);
    for y in 0..h {
        for x in 0..w {
            if data[y * w + x] >= 0.5 {
                sy += y as f64;
                sx += x as f64;
                n += 1;
            }
        }
    }
    if n == 0 {
        None
    } else {
        Some((sy / n as f64, sx / n as f64))
    }
}

/// Euclidean distance in nm between the golden and predicted pattern
/// centres (bounding-box centres, matching the paper's definition of the
/// resist centre as "the center of the bounding box enclosing the resist
/// pattern").
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when either image is empty,
/// or shape errors for mismatched inputs.
pub fn center_error_nm(prediction: &Tensor, golden: &Tensor, nm_per_px: f64) -> Result<f64> {
    check_pair(prediction, golden)?;
    let pb = BoundingBox::of(prediction).ok_or_else(|| {
        TensorError::InvalidArgument("prediction has no foreground pixels".into())
    })?;
    let gb = BoundingBox::of(golden)
        .ok_or_else(|| TensorError::InvalidArgument("golden image has no foreground pixels".into()))?;
    let (py, px) = pb.center();
    let (gy, gx) = gb.center();
    Ok(((py - gy).powi(2) + (px - gx).powi(2)).sqrt() * nm_per_px)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(y0: usize, x0: usize, size: usize) -> Tensor {
        let mut img = Tensor::zeros(&[32, 32]);
        for y in y0..y0 + size {
            for x in x0..x0 + size {
                img.set(&[y, x], 1.0).unwrap();
            }
        }
        img
    }

    #[test]
    fn zero_error_for_identical() {
        let img = square(10, 10, 5);
        assert_eq!(center_error_nm(&img, &img, 0.5).unwrap(), 0.0);
    }

    #[test]
    fn shift_gives_euclidean_distance() {
        let golden = square(10, 10, 5);
        let pred = square(13, 14, 5);
        // Shift (3, 4) px → 5 px → 2.5 nm at 0.5 nm/px.
        assert!((center_error_nm(&pred, &golden, 0.5).unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn center_of_mass_matches_square_center() {
        let img = square(10, 12, 5);
        let (cy, cx) = center_of_mass_px(&img).unwrap();
        assert_eq!((cy, cx), (12.0, 14.0));
        assert_eq!(center_of_mass_px(&Tensor::zeros(&[8, 8])), None);
    }

    #[test]
    fn empty_inputs_are_errors() {
        let img = square(10, 10, 5);
        let empty = Tensor::zeros(&[32, 32]);
        assert!(center_error_nm(&empty, &img, 0.5).is_err());
        assert!(center_error_nm(&img, &empty, 0.5).is_err());
    }
}
