//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;

use litho_metrics::{
    center_error_nm, class_accuracy, ede, mean_iou, pixel_accuracy, BoundingBox, Histogram,
    Tensor,
};

fn binary_image(side: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(prop::bool::ANY, side * side).prop_map(move |bits| {
        Tensor::from_vec(
            bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
            &[side, side],
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segmentation_metrics_are_probabilities(a in binary_image(8), b in binary_image(8)) {
        for metric in [
            pixel_accuracy(&a, &b).unwrap(),
            class_accuracy(&a, &b).unwrap(),
            mean_iou(&a, &b).unwrap(),
        ] {
            prop_assert!((0.0..=1.0).contains(&metric), "{metric}");
        }
    }

    #[test]
    fn perfect_prediction_scores_one(a in binary_image(8)) {
        prop_assert_eq!(pixel_accuracy(&a, &a).unwrap(), 1.0);
        prop_assert_eq!(class_accuracy(&a, &a).unwrap(), 1.0);
        prop_assert_eq!(mean_iou(&a, &a).unwrap(), 1.0);
    }

    #[test]
    fn iou_lower_bounds_pixel_accuracy(a in binary_image(8), b in binary_image(8)) {
        // Mean IoU is always <= pixel accuracy for binary maps... not a
        // theorem in general, but IoU <= accuracy per class holds; check
        // the weaker true invariant: mean IoU <= class accuracy.
        let iou = mean_iou(&a, &b).unwrap();
        let ca = class_accuracy(&a, &b).unwrap();
        prop_assert!(iou <= ca + 1e-12, "iou {iou} vs class acc {ca}");
    }

    #[test]
    fn ede_is_symmetric_and_nonnegative(a in binary_image(8), b in binary_image(8)) {
        prop_assume!(a.sum() > 0.0 && b.sum() > 0.0);
        let ab = ede(&a, &b, 0.5).unwrap();
        let ba = ede(&b, &a, 0.5).unwrap();
        prop_assert!((ab.mean_nm() - ba.mean_nm()).abs() < 1e-12);
        prop_assert!(ab.mean_nm() >= 0.0);
        prop_assert!(ab.max_nm() >= ab.mean_nm());
    }

    #[test]
    fn ede_zero_iff_same_bounding_box(a in binary_image(8)) {
        prop_assume!(a.sum() > 0.0);
        prop_assert_eq!(ede(&a, &a, 1.0).unwrap().mean_nm(), 0.0);
        prop_assert_eq!(center_error_nm(&a, &a, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn ede_scales_linearly_with_nm_per_px(a in binary_image(8), b in binary_image(8)) {
        prop_assume!(a.sum() > 0.0 && b.sum() > 0.0);
        let one = ede(&a, &b, 1.0).unwrap().mean_nm();
        let two = ede(&a, &b, 2.0).unwrap().mean_nm();
        prop_assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn bounding_box_contains_all_foreground(a in binary_image(8)) {
        if let Some(bb) = BoundingBox::of(&a) {
            for y in 0..8 {
                for x in 0..8 {
                    if a.at(&[y, x]).unwrap() >= 0.5 {
                        prop_assert!(y >= bb.y0 && y <= bb.y1);
                        prop_assert!(x >= bb.x0 && x <= bb.x1);
                    }
                }
            }
            // Box edges touch foreground.
            prop_assert!((bb.x0..=bb.x1).any(|x| a.at(&[bb.y0, x]).unwrap() >= 0.5));
            prop_assert!((bb.y0..=bb.y1).any(|y| a.at(&[y, bb.x1]).unwrap() >= 0.5));
        } else {
            prop_assert_eq!(a.sum(), 0.0);
        }
    }

    #[test]
    fn histogram_conserves_observations(values in proptest::collection::vec(-5.0f64..15.0, 0..200)) {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend(values.iter().copied());
        prop_assert_eq!(h.total(), values.len() as u64);
        let in_range = values.iter().filter(|&&v| (0.0..10.0).contains(&v)).count() as u64;
        prop_assert_eq!(h.counts().iter().sum::<u64>(), in_range);
    }
}
