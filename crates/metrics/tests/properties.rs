//! Property-style tests for the evaluation metrics, run as deterministic
//! seeded loops over the vendored PRNG.

use litho_metrics::{
    center_error_nm, class_accuracy, ede, mean_iou, pixel_accuracy, BoundingBox, Histogram,
    Tensor,
};
use litho_tensor::rng::{Rng, SeedableRng, StdRng};

const CASES: usize = 64;

fn binary_image(rng: &mut StdRng, side: usize) -> Tensor {
    let data: Vec<f32> = (0..side * side)
        .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
        .collect();
    Tensor::from_vec(data, &[side, side]).unwrap()
}

/// A binary image guaranteed to have at least one foreground pixel.
fn nonempty_image(rng: &mut StdRng, side: usize) -> Tensor {
    loop {
        let img = binary_image(rng, side);
        if img.sum() > 0.0 {
            return img;
        }
    }
}

#[test]
fn segmentation_metrics_are_probabilities() {
    let mut rng = StdRng::seed_from_u64(0x3E71_0001);
    for _ in 0..CASES {
        let a = binary_image(&mut rng, 8);
        let b = binary_image(&mut rng, 8);
        for metric in [
            pixel_accuracy(&a, &b).unwrap(),
            class_accuracy(&a, &b).unwrap(),
            mean_iou(&a, &b).unwrap(),
        ] {
            assert!((0.0..=1.0).contains(&metric), "{metric}");
        }
    }
}

#[test]
fn perfect_prediction_scores_one() {
    let mut rng = StdRng::seed_from_u64(0x3E71_0002);
    for _ in 0..CASES {
        let a = binary_image(&mut rng, 8);
        assert_eq!(pixel_accuracy(&a, &a).unwrap(), 1.0);
        assert_eq!(class_accuracy(&a, &a).unwrap(), 1.0);
        assert_eq!(mean_iou(&a, &a).unwrap(), 1.0);
    }
}

#[test]
fn iou_lower_bounds_class_accuracy() {
    let mut rng = StdRng::seed_from_u64(0x3E71_0003);
    for _ in 0..CASES {
        let a = binary_image(&mut rng, 8);
        let b = binary_image(&mut rng, 8);
        // IoU <= accuracy per class, so mean IoU <= class accuracy.
        let iou = mean_iou(&a, &b).unwrap();
        let ca = class_accuracy(&a, &b).unwrap();
        assert!(iou <= ca + 1e-12, "iou {iou} vs class acc {ca}");
    }
}

#[test]
fn ede_is_symmetric_and_nonnegative() {
    let mut rng = StdRng::seed_from_u64(0x3E71_0004);
    for _ in 0..CASES {
        let a = nonempty_image(&mut rng, 8);
        let b = nonempty_image(&mut rng, 8);
        let ab = ede(&a, &b, 0.5).unwrap();
        let ba = ede(&b, &a, 0.5).unwrap();
        assert!((ab.mean_nm() - ba.mean_nm()).abs() < 1e-12);
        assert!(ab.mean_nm() >= 0.0);
        assert!(ab.max_nm() >= ab.mean_nm());
    }
}

#[test]
fn ede_zero_iff_same_bounding_box() {
    let mut rng = StdRng::seed_from_u64(0x3E71_0005);
    for _ in 0..CASES {
        let a = nonempty_image(&mut rng, 8);
        assert_eq!(ede(&a, &a, 1.0).unwrap().mean_nm(), 0.0);
        assert_eq!(center_error_nm(&a, &a, 1.0).unwrap(), 0.0);
    }
}

#[test]
fn ede_scales_linearly_with_nm_per_px() {
    let mut rng = StdRng::seed_from_u64(0x3E71_0006);
    for _ in 0..CASES {
        let a = nonempty_image(&mut rng, 8);
        let b = nonempty_image(&mut rng, 8);
        let one = ede(&a, &b, 1.0).unwrap().mean_nm();
        let two = ede(&a, &b, 2.0).unwrap().mean_nm();
        assert!((two - 2.0 * one).abs() < 1e-9);
    }
}

#[test]
fn bounding_box_contains_all_foreground() {
    let mut rng = StdRng::seed_from_u64(0x3E71_0007);
    for _ in 0..CASES {
        let a = binary_image(&mut rng, 8);
        if let Some(bb) = BoundingBox::of(&a) {
            for y in 0..8 {
                for x in 0..8 {
                    if a.at(&[y, x]).unwrap() >= 0.5 {
                        assert!(y >= bb.y0 && y <= bb.y1);
                        assert!(x >= bb.x0 && x <= bb.x1);
                    }
                }
            }
            // Box edges touch foreground.
            assert!((bb.x0..=bb.x1).any(|x| a.at(&[bb.y0, x]).unwrap() >= 0.5));
            assert!((bb.y0..=bb.y1).any(|y| a.at(&[y, bb.x1]).unwrap() >= 0.5));
        } else {
            assert_eq!(a.sum(), 0.0);
        }
    }
}

#[test]
fn histogram_conserves_observations() {
    let mut rng = StdRng::seed_from_u64(0x3E71_0008);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..200);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0f64..15.0)).collect();
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend(values.iter().copied());
        assert_eq!(h.total(), values.len() as u64);
        let in_range = values.iter().filter(|&&v| (0.0..10.0).contains(&v)).count() as u64;
        assert_eq!(h.counts().iter().sum::<u64>(), in_range);
    }
}
