
/// Resist model calibration constants for the variable-threshold model.
///
/// The development threshold at a point is
/// `T = base + env_coeff · I_env + slope_coeff · |∇I|`,
/// where `I_env` is the local intensity envelope (max over a window) and
/// `|∇I|` the image slope — the classic VTR form (paper reference \[9\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResistParams {
    /// Base development threshold (fraction of clear-field intensity).
    pub base_threshold: f64,
    /// Sensitivity of the threshold to the local intensity envelope.
    pub env_coeff: f64,
    /// Sensitivity of the threshold to the local image slope (per nm).
    pub slope_coeff: f64,
    /// Acid diffusion length in nm (Gaussian blur sigma applied to the
    /// aerial image before thresholding).
    pub diffusion_nm: f64,
    /// Half-width in nm of the window used for the intensity envelope.
    pub env_window_nm: f64,
}

/// A lithography process configuration.
///
/// Combines the exposure-tool optics (ArF immersion: λ = 193 nm,
/// NA = 1.35) with a resist calibration and the nominal contact geometry
/// for a technology node. The [`ProcessConfig::n10`] and
/// [`ProcessConfig::n7`] presets parallel the two benchmarks of the paper
/// (982 and 979 clips at N10 and N7).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessConfig {
    /// Human-readable node name ("N10", "N7").
    pub name: String,
    /// Exposure wavelength in nm.
    pub wavelength_nm: f64,
    /// Numerical aperture of the projection lens.
    pub numerical_aperture: f64,
    /// Partial coherence factor σ of the illuminator (0 = coherent).
    pub sigma: f64,
    /// Number of SOCS kernels for compact (fast) imaging.
    pub compact_kernel_count: usize,
    /// Number of SOCS kernels for rigorous (golden) imaging.
    pub rigorous_kernel_count: usize,
    /// Defocus values (nm) of the rigorous focus stack; the compact model
    /// images at best focus only.
    pub focus_stack_nm: Vec<f64>,
    /// Drawn contact edge length in nm (60 at N10 per the paper).
    pub contact_size_nm: f64,
    /// Minimum contact pitch in nm.
    pub contact_pitch_nm: f64,
    /// Resist calibration.
    pub resist: ResistParams,
}

impl ProcessConfig {
    /// The 10 nm-node benchmark process.
    pub fn n10() -> Self {
        ProcessConfig {
            name: "N10".into(),
            wavelength_nm: 193.0,
            numerical_aperture: 1.35,
            sigma: 0.8,
            compact_kernel_count: 4,
            rigorous_kernel_count: 10,
            focus_stack_nm: vec![-40.0, -20.0, 0.0, 20.0, 40.0],
            contact_size_nm: 60.0,
            contact_pitch_nm: 120.0,
            resist: ResistParams {
                base_threshold: 0.06,
                env_coeff: 0.55,
                slope_coeff: 0.5,
                diffusion_nm: 10.0,
                env_window_nm: 48.0,
            },
        }
    }

    /// The 7 nm-node benchmark process: smaller contacts, tighter pitch,
    /// slightly different resist calibration.
    pub fn n7() -> Self {
        ProcessConfig {
            name: "N7".into(),
            wavelength_nm: 193.0,
            numerical_aperture: 1.35,
            sigma: 0.85,
            compact_kernel_count: 4,
            rigorous_kernel_count: 10,
            focus_stack_nm: vec![-30.0, -15.0, 0.0, 15.0, 30.0],
            contact_size_nm: 48.0,
            contact_pitch_nm: 96.0,
            resist: ResistParams {
                base_threshold: 0.055,
                env_coeff: 0.53,
                slope_coeff: 0.45,
                diffusion_nm: 8.0,
                env_window_nm: 40.0,
            },
        }
    }

    /// Rayleigh resolution `0.61 λ / NA` in nm — the physical width scale
    /// of the imaging kernels.
    pub fn rayleigh_nm(&self) -> f64 {
        0.61 * self.wavelength_nm / self.numerical_aperture
    }

    /// Half pitch in nm; the paper's CD-error acceptance criterion is 10 %
    /// of this value.
    pub fn half_pitch_nm(&self) -> f64 {
        self.contact_pitch_nm / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_nodes() {
        let n10 = ProcessConfig::n10();
        let n7 = ProcessConfig::n7();
        assert!(n7.contact_size_nm < n10.contact_size_nm);
        assert!(n7.contact_pitch_nm < n10.contact_pitch_nm);
        assert_eq!(n10.wavelength_nm, 193.0);
    }

    #[test]
    fn rayleigh_resolution_is_physical() {
        let n10 = ProcessConfig::n10();
        // 0.61 * 193 / 1.35 ≈ 87 nm.
        assert!((n10.rayleigh_nm() - 87.2).abs() < 0.5);
    }

    #[test]
    fn acceptance_criterion_scale() {
        // 10% of half pitch: 6 nm at N10, 4.8 nm at N7 — the paper's
        // LithoGAN CD errors (1.99 / 1.65 nm) sit comfortably inside.
        assert!((ProcessConfig::n10().half_pitch_nm() * 0.1 - 6.0).abs() < 1e-9);
        assert!((ProcessConfig::n7().half_pitch_nm() * 0.1 - 4.8).abs() < 1e-9);
    }

    #[test]
    fn rigorous_costs_more_than_compact() {
        let p = ProcessConfig::n10();
        assert!(p.rigorous_kernel_count > p.compact_kernel_count);
        assert!(p.focus_stack_nm.len() > 1);
    }
}
