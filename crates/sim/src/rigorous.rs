use std::time::{Duration, Instant};

use litho_tensor::Result;

use crate::{AerialImage, Contour, MaskGrid, OpticalModel, ProcessConfig, ResistModel, ResistPattern};

/// Timing and intermediate results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Wall-clock time of the optical stage.
    pub optical_time: Duration,
    /// Wall-clock time of the resist + contour stage.
    pub resist_time: Duration,
    /// The (focus-averaged) aerial image.
    pub aerial: AerialImage,
    /// Extracted resist contours of the full grid.
    pub contours: Vec<Contour>,
}

impl SimReport {
    /// Total simulation wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.optical_time + self.resist_time
    }
}

/// The "golden" lithography simulator.
///
/// Substitutes for the rigorous simulation of the paper (Synopsys
/// Sentaurus): images the mask through a focus stack at the process's
/// *rigorous* SOCS rank, averages the stack (process-window imaging),
/// develops with the VTR resist model, and extracts contours. This is
/// deliberately the most expensive path in the repository — Table 4's
/// runtime hierarchy (rigorous ≫ threshold-CNN flow ≫ LithoGAN) emerges
/// from genuinely different compute, not artificial sleeps.
#[derive(Debug)]
pub struct RigorousSim {
    process: ProcessConfig,
    resist: ResistModel,
    models: Vec<OpticalModel>,
}

impl RigorousSim {
    /// Builds the simulator for a process on a `size × size` grid with
    /// physical `pitch_nm` per pixel.
    ///
    /// # Errors
    ///
    /// Propagates optical-model construction errors (non-power-of-two
    /// grid, bad pitch).
    pub fn new(process: &ProcessConfig, size: usize, pitch_nm: f64) -> Result<Self> {
        let models = process
            .focus_stack_nm
            .iter()
            .map(|&defocus| {
                OpticalModel::with_settings(
                    process,
                    size,
                    pitch_nm,
                    defocus,
                    process.rigorous_kernel_count,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(RigorousSim {
            process: process.clone(),
            resist: ResistModel::new(process.resist),
            models,
        })
    }

    /// The process configuration.
    pub fn process(&self) -> &ProcessConfig {
        &self.process
    }

    /// Runs the full rigorous flow on a mask and returns the golden resist
    /// pattern plus a timing report.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask geometry does not match the simulator
    /// grid.
    pub fn simulate(&self, mask: &MaskGrid) -> Result<(ResistPattern, SimReport)> {
        let sim_span = litho_telemetry::span("sim");

        let t0 = Instant::now();
        let span = litho_telemetry::span("optical");
        let stack: Vec<AerialImage> = self
            .models
            .iter()
            .map(|m| m.aerial_image(mask))
            .collect::<Result<Vec<_>>>()?;
        drop(span);
        let span = litho_telemetry::span("aerial");
        let aerial = AerialImage::average(&stack)?;
        drop(span);
        let optical_time = t0.elapsed();

        let t1 = Instant::now();
        let span = litho_telemetry::span("resist");
        let pattern = self.resist.develop(&aerial);
        drop(span);
        // Contour processing: the zero level set of the development excess
        // field, mirroring the paper's "threshold + extrapolation" stage.
        let span = litho_telemetry::span("contour");
        let excess = self.resist.excess_field(&aerial);
        let contours =
            crate::contour::extract_contours(&excess, aerial.size(), aerial.pitch_nm(), 0.0)?;
        drop(span);
        let resist_time = t1.elapsed();

        drop(sim_span);
        litho_telemetry::counter_add("sim.runs", 1);

        Ok((
            pattern,
            SimReport {
                optical_time,
                resist_time,
                aerial,
                contours,
            },
        ))
    }

    /// The golden resist pattern of the *center contact* only: simulate,
    /// then isolate the printed component nearest the clip centre
    /// (the paper adopts only the center contact of each clip per
    /// simulation).
    ///
    /// # Errors
    ///
    /// Returns an error if the mask geometry does not match the simulator.
    pub fn golden_center_pattern(&self, mask: &MaskGrid) -> Result<Option<ResistPattern>> {
        let (pattern, _) = self.simulate(mask)?;
        Ok(pattern.center_component())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn center_contact_mask(size: usize, pitch: f64, contact_nm: f64) -> MaskGrid {
        let mut g = MaskGrid::new(size, pitch);
        let c = size as f64 * pitch / 2.0;
        let h = contact_nm / 2.0;
        g.fill_rect_nm(c - h, c - h, c + h, c + h, 1.0);
        g
    }

    #[test]
    fn simulate_produces_centered_golden_pattern() {
        let p = ProcessConfig::n10();
        let sim = RigorousSim::new(&p, 128, 8.0).unwrap();
        let mask = center_contact_mask(128, 8.0, 96.0);
        let golden = sim.golden_center_pattern(&mask).unwrap().unwrap();
        let (cy, cx) = golden.center_nm().unwrap();
        let mid = 128.0 * 8.0 / 2.0;
        assert!((cy - mid).abs() < 20.0 && (cx - mid).abs() < 20.0);
    }

    #[test]
    fn report_contains_contours_and_timing() {
        let p = ProcessConfig::n10();
        let sim = RigorousSim::new(&p, 128, 8.0).unwrap();
        let mask = center_contact_mask(128, 8.0, 96.0);
        let (_, report) = sim.simulate(&mask).unwrap();
        assert!(!report.contours.is_empty());
        assert!(report.total_time() >= report.optical_time);
    }

    #[test]
    fn rigorous_is_slower_than_compact() {
        let p = ProcessConfig::n10();
        let sim = RigorousSim::new(&p, 128, 8.0).unwrap();
        let compact = OpticalModel::new(&p, 128, 8.0).unwrap();
        let mask = center_contact_mask(128, 8.0, 96.0);
        // Warm up, then time.
        let (_, report) = sim.simulate(&mask).unwrap();
        let t = Instant::now();
        compact.aerial_image(&mask).unwrap();
        let compact_time = t.elapsed();
        assert!(
            report.optical_time > compact_time,
            "rigorous {:?} vs compact {:?}",
            report.optical_time,
            compact_time
        );
    }

    #[test]
    fn empty_mask_yields_no_center_pattern() {
        let p = ProcessConfig::n10();
        let sim = RigorousSim::new(&p, 64, 8.0).unwrap();
        let mask = MaskGrid::new(64, 8.0);
        assert!(sim.golden_center_pattern(&mask).unwrap().is_none());
    }
}
