//! SOCS (sum of coherent systems) kernel construction.
//!
//! A partially coherent imaging system is described by its transmission
//! cross coefficient (TCC); the Hopkins formulation diagonalises the TCC
//! into a rank-ordered set of coherent kernels so that the aerial image is
//! `I = Σ_j w_j |m ⊛ k_j|²`. For a circular pupil with Gaussian apodisation
//! the eigenfunctions are Hermite–Gaussian modes, which we use directly:
//! kernel `(m, n)` is `H_m(x/s) H_n(y/s) exp(-(x²+y²)/(2s²))` with weight
//! decaying geometrically in the mode order, and `s` tied to the process's
//! Rayleigh resolution. Defocus enters as a quadratic phase that broadens
//! the effective kernel.

use litho_tensor::Complex;

use crate::ProcessConfig;

/// One coherent kernel of the SOCS expansion: spatial-domain complex
/// amplitude samples on the simulation grid (wrap-around origin), plus its
/// eigenvalue weight.
#[derive(Debug, Clone)]
pub struct OpticalKernel {
    /// Eigenvalue weight `w_j` of this coherent system.
    pub weight: f64,
    /// Kernel samples in wrap-around (FFT) order, `size × size`.
    pub samples: Vec<Complex>,
    /// Grid size per side.
    pub size: usize,
}

/// Physicists' Hermite polynomial `H_n(x)` by the three-term recurrence.
///
/// # Example
///
/// ```
/// assert_eq!(litho_sim::hermite(0, 2.0), 1.0);
/// assert_eq!(litho_sim::hermite(1, 2.0), 4.0);
/// assert_eq!(litho_sim::hermite(2, 2.0), 14.0); // 4x² - 2
/// ```
pub fn hermite(n: usize, x: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => 2.0 * x,
        _ => {
            let mut h0 = 1.0;
            let mut h1 = 2.0 * x;
            for k in 1..n {
                let h2 = 2.0 * x * h1 - 2.0 * k as f64 * h0;
                h0 = h1;
                h1 = h2;
            }
            h1
        }
    }
}

/// Mode orders `(m, n)` of the first `count` Hermite–Gaussian kernels in
/// increasing total order (the TCC eigenvalue ordering).
fn mode_orders(count: usize) -> Vec<(usize, usize)> {
    let mut modes = Vec::with_capacity(count);
    let mut total = 0usize;
    'outer: loop {
        for m in 0..=total {
            let n = total - m;
            modes.push((m, n));
            if modes.len() == count {
                break 'outer;
            }
        }
        total += 1;
    }
    modes
}

/// Builds the SOCS kernel set for a process on a `size × size` grid with
/// physical `pitch_nm`, at defocus `defocus_nm` (0 = best focus).
///
/// Kernels are returned in wrap-around order ready for FFT convolution,
/// and are jointly normalised so that a clear-field mask images to
/// intensity 1 at best focus.
pub fn build_kernels(
    process: &ProcessConfig,
    size: usize,
    pitch_nm: f64,
    defocus_nm: f64,
    count: usize,
) -> Vec<OpticalKernel> {
    // Width of the fundamental mode: the Rayleigh resolution sets the
    // amplitude spread; partial coherence (σ) tightens the effective
    // intensity kernel, which we absorb into the width.
    let base_sigma_nm = process.rayleigh_nm() / (1.0 + process.sigma) * 0.75;
    // Defocus broadens the point spread roughly quadratically.
    let defocus_broaden = 1.0 + (defocus_nm / process.wavelength_nm).powi(2) * 3.0;
    let sigma_nm = base_sigma_nm * defocus_broaden;
    let sigma_px = sigma_nm / pitch_nm;

    let modes = mode_orders(count);
    let mut kernels: Vec<OpticalKernel> = modes
        .iter()
        .enumerate()
        .map(|(j, &(m, n))| {
            let _ = j;
            let weight = 0.35f64.powi((m + n) as i32);
            let mut samples = vec![Complex::ZERO; size * size];
            let half = size as isize / 2;
            // Defocus phase: quadratic in radius, scaled to stay subtle.
            let phase_coeff = defocus_nm / process.wavelength_nm * 0.5;
            for y in 0..size {
                for x in 0..size {
                    // Centered coordinates, then wrap to FFT order.
                    let cy = y as isize - half;
                    let cx = x as isize - half;
                    let fy = (cy.rem_euclid(size as isize)) as usize;
                    let fx = (cx.rem_euclid(size as isize)) as usize;
                    let u = cx as f64 / sigma_px;
                    let v = cy as f64 / sigma_px;
                    let r2 = u * u + v * v;
                    if r2 > 40.0 {
                        continue;
                    }
                    let env = (-(r2) / 2.0).exp();
                    let amp = hermite(m, u) * hermite(n, v) * env;
                    let phase = phase_coeff * r2;
                    samples[fy * size + fx] =
                        Complex::new(amp * phase.cos(), amp * phase.sin());
                }
            }
            // Normalise each mode to unit L2 energy so the geometric
            // eigenvalue decay in `weight` is meaningful (Hermite
            // polynomial magnitudes grow factorially with order).
            let energy: f64 = samples.iter().map(|c| c.norm_sqr()).sum();
            if energy > 0.0 {
                let inv = 1.0 / energy.sqrt();
                for s in &mut samples {
                    *s = *s * inv;
                }
            }
            OpticalKernel {
                weight,
                samples,
                size,
            }
        })
        .collect();

    // Normalise: a clear field (transmission 1 everywhere) must image to
    // intensity 1. For kernel j the clear-field amplitude is Σ samples,
    // so I_clear = Σ_j w_j |Σ k_j|². Odd modes integrate to ~0 and do not
    // contribute to the clear field, which is physical.
    let clear: f64 = kernels
        .iter()
        .map(|k| {
            let s = k
                .samples
                .iter()
                .fold(Complex::ZERO, |acc, &c| acc + c);
            k.weight * s.norm_sqr()
        })
        .sum();
    if clear > 0.0 {
        let scale = 1.0 / clear;
        for k in &mut kernels {
            k.weight *= scale;
        }
    }
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hermite_low_orders() {
        assert_eq!(hermite(0, 3.0), 1.0);
        assert_eq!(hermite(1, 3.0), 6.0);
        assert_eq!(hermite(2, 3.0), 34.0); // 4*9 - 2
        assert_eq!(hermite(3, 1.0), -4.0); // 8 - 12
    }

    #[test]
    fn mode_ordering_is_total_order_major() {
        assert_eq!(mode_orders(4), vec![(0, 0), (0, 1), (1, 0), (0, 2)]);
    }

    #[test]
    fn fundamental_kernel_dominates() {
        let p = ProcessConfig::n10();
        let kernels = build_kernels(&p, 64, 8.0, 0.0, 4);
        assert_eq!(kernels.len(), 4);
        assert!(kernels[0].weight > kernels[3].weight);
    }

    #[test]
    fn kernel_centered_at_origin_in_wraparound_order() {
        let p = ProcessConfig::n10();
        let kernels = build_kernels(&p, 64, 8.0, 0.0, 1);
        let k = &kernels[0];
        // The peak of the fundamental Gaussian sits at index (0,0).
        let peak = k.samples[0].abs();
        for &s in &k.samples {
            assert!(s.abs() <= peak + 1e-12);
        }
    }

    #[test]
    fn defocus_broadens_kernel() {
        let p = ProcessConfig::n10();
        let focused = build_kernels(&p, 64, 8.0, 0.0, 1);
        let defocused = build_kernels(&p, 64, 8.0, 60.0, 1);
        let width = |k: &OpticalKernel| -> f64 {
            // Second moment of |amplitude| about the origin.
            let size = k.size as isize;
            let mut num = 0.0;
            let mut den = 0.0;
            for y in 0..k.size {
                for x in 0..k.size {
                    let cy = if (y as isize) < size / 2 { y as isize } else { y as isize - size };
                    let cx = if (x as isize) < size / 2 { x as isize } else { x as isize - size };
                    let a = k.samples[y * k.size + x].abs();
                    num += a * ((cy * cy + cx * cx) as f64);
                    den += a;
                }
            }
            num / den
        };
        assert!(width(&defocused[0]) > width(&focused[0]));
    }
}
