//! Marching-squares contour extraction.
//!
//! The last stage of the conventional flow in the paper's Figure 1
//! ("contour processing"): turns a scalar field and an iso level into
//! polyline contours in physical nm coordinates.

use litho_tensor::{Result, TensorError};

/// A contour polyline in physical nm coordinates `(x, y)`.
///
/// Closed contours repeat their first point at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Contour {
    /// Polyline vertices, in nm.
    pub points: Vec<(f64, f64)>,
}

impl Contour {
    /// Whether the polyline is closed.
    pub fn is_closed(&self) -> bool {
        self.points.len() > 2 && self.points.first() == self.points.last()
    }

    /// Polyline length in nm.
    pub fn length_nm(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt()
            })
            .sum()
    }

    /// Axis-aligned bounding box `(x_min, y_min, x_max, y_max)` in nm.
    ///
    /// Returns `None` for an empty contour.
    pub fn bounding_box_nm(&self) -> Option<(f64, f64, f64, f64)> {
        let mut it = self.points.iter();
        let &(x0, y0) = it.next()?;
        let mut bb = (x0, y0, x0, y0);
        for &(x, y) in it {
            bb.0 = bb.0.min(x);
            bb.1 = bb.1.min(y);
            bb.2 = bb.2.max(x);
            bb.3 = bb.3.max(y);
        }
        Some(bb)
    }
}

/// Half-edge key for joining segments: quantised endpoint coordinates.
fn key(p: (f64, f64)) -> (i64, i64) {
    ((p.0 * 1024.0).round() as i64, (p.1 * 1024.0).round() as i64)
}

/// One marching-squares line segment, endpoint to endpoint in nm.
type Segment = ((f64, f64), (f64, f64));

/// Extracts iso-contours of `field` (row-major, `size × size`, physical
/// `pitch_nm`) at the given `level` using marching squares with linear
/// interpolation. Segments are chained into polylines; contours fully
/// inside the grid come back closed.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `field.len() != size²` and
/// [`TensorError::InvalidArgument`] if `size < 2`.
pub fn extract_contours(
    field: &[f64],
    size: usize,
    pitch_nm: f64,
    level: f64,
) -> Result<Vec<Contour>> {
    if field.len() != size * size {
        return Err(TensorError::LengthMismatch {
            expected: size * size,
            actual: field.len(),
        });
    }
    if size < 2 {
        return Err(TensorError::InvalidArgument(
            "contour grid must be at least 2x2".into(),
        ));
    }

    // Interpolated crossing on an edge between two sample points.
    let lerp = |pa: (f64, f64), va: f64, pb: (f64, f64), vb: f64| -> (f64, f64) {
        let t = if (vb - va).abs() < 1e-300 {
            0.5
        } else {
            ((level - va) / (vb - va)).clamp(0.0, 1.0)
        };
        (pa.0 + t * (pb.0 - pa.0), pa.1 + t * (pb.1 - pa.1))
    };

    let mut segments: Vec<Segment> = Vec::new();
    for cy in 0..size - 1 {
        for cx in 0..size - 1 {
            let v = [
                field[cy * size + cx],           // top-left
                field[cy * size + cx + 1],       // top-right
                field[(cy + 1) * size + cx + 1], // bottom-right
                field[(cy + 1) * size + cx],     // bottom-left
            ];
            let p = [
                (cx as f64 * pitch_nm, cy as f64 * pitch_nm),
                ((cx + 1) as f64 * pitch_nm, cy as f64 * pitch_nm),
                ((cx + 1) as f64 * pitch_nm, (cy + 1) as f64 * pitch_nm),
                (cx as f64 * pitch_nm, (cy + 1) as f64 * pitch_nm),
            ];
            let mut case = 0usize;
            for (i, &vi) in v.iter().enumerate() {
                if vi >= level {
                    case |= 1 << i;
                }
            }
            // Edge midpoints: 0=top, 1=right, 2=bottom, 3=left.
            let edge = |e: usize| -> (f64, f64) {
                match e {
                    0 => lerp(p[0], v[0], p[1], v[1]),
                    1 => lerp(p[1], v[1], p[2], v[2]),
                    2 => lerp(p[3], v[3], p[2], v[2]),
                    _ => lerp(p[0], v[0], p[3], v[3]),
                }
            };
            // Standard marching-squares case table (ambiguous saddles
            // resolved by the cell-average rule).
            let emit = |a: usize, b: usize, segments: &mut Vec<Segment>| {
                segments.push((edge(a), edge(b)));
            };
            match case {
                0 | 15 => {}
                1 => emit(3, 0, &mut segments),
                2 => emit(0, 1, &mut segments),
                3 => emit(3, 1, &mut segments),
                4 => emit(1, 2, &mut segments),
                5 => {
                    let avg = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if avg >= level {
                        emit(3, 2, &mut segments);
                        emit(0, 1, &mut segments);
                    } else {
                        emit(3, 0, &mut segments);
                        emit(1, 2, &mut segments);
                    }
                }
                6 => emit(0, 2, &mut segments),
                7 => emit(3, 2, &mut segments),
                8 => emit(2, 3, &mut segments),
                9 => emit(2, 0, &mut segments),
                10 => {
                    let avg = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if avg >= level {
                        emit(0, 3, &mut segments);
                        emit(2, 1, &mut segments);
                    } else {
                        emit(0, 1, &mut segments);
                        emit(2, 3, &mut segments);
                    }
                }
                11 => emit(2, 1, &mut segments),
                12 => emit(1, 3, &mut segments),
                13 => emit(1, 0, &mut segments),
                14 => emit(0, 3, &mut segments),
                _ => unreachable!(),
            }
        }
    }

    // Chain segments into polylines by matching endpoints.
    use std::collections::HashMap;
    let mut adjacency: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, seg) in segments.iter().enumerate() {
        adjacency.entry(key(seg.0)).or_default().push(i);
        adjacency.entry(key(seg.1)).or_default().push(i);
    }
    let mut used = vec![false; segments.len()];
    let mut contours = Vec::new();
    for start in 0..segments.len() {
        if used[start] {
            continue;
        }
        used[start] = true;
        let mut points = vec![segments[start].0, segments[start].1];
        // Extend forward from the tail.
        loop {
            let tail = *points.last().expect("non-empty polyline");
            let candidates = adjacency.get(&key(tail));
            let mut advanced = false;
            if let Some(cands) = candidates {
                for &si in cands {
                    if used[si] {
                        continue;
                    }
                    let (a, b) = segments[si];
                    let next = if key(a) == key(tail) { b } else { a };
                    used[si] = true;
                    points.push(next);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
            if key(*points.last().expect("non-empty")) == key(points[0]) {
                break;
            }
        }
        // Extend backward from the head for open chains.
        loop {
            let head = points[0];
            if key(head) == key(*points.last().expect("non-empty")) {
                break;
            }
            let candidates = adjacency.get(&key(head));
            let mut advanced = false;
            if let Some(cands) = candidates {
                for &si in cands {
                    if used[si] {
                        continue;
                    }
                    let (a, b) = segments[si];
                    let prev = if key(a) == key(head) { b } else { a };
                    used[si] = true;
                    points.insert(0, prev);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        contours.push(Contour { points });
    }
    Ok(contours)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radial_field(size: usize, radius: f64) -> Vec<f64> {
        let c = (size - 1) as f64 / 2.0;
        (0..size * size)
            .map(|i| {
                let y = (i / size) as f64;
                let x = (i % size) as f64;
                radius - ((x - c).powi(2) + (y - c).powi(2)).sqrt()
            })
            .collect()
    }

    #[test]
    fn validates_input() {
        assert!(extract_contours(&[0.0; 5], 2, 1.0, 0.0).is_err());
        assert!(extract_contours(&[0.0; 1], 1, 1.0, 0.0).is_err());
    }

    #[test]
    fn empty_field_has_no_contours() {
        let contours = extract_contours(&vec![0.0; 64], 8, 1.0, 0.5).unwrap();
        assert!(contours.is_empty());
    }

    #[test]
    fn circle_contour_is_closed_with_correct_radius() {
        let size = 64;
        let radius = 20.0;
        let field = radial_field(size, radius);
        let contours = extract_contours(&field, size, 1.0, 0.0).unwrap();
        assert_eq!(contours.len(), 1);
        let c = &contours[0];
        assert!(c.is_closed(), "contour should close");
        // Perimeter ≈ 2πr.
        let perimeter = c.length_nm();
        assert!(
            (perimeter - 2.0 * std::f64::consts::PI * radius).abs() < 2.0,
            "perimeter {perimeter}"
        );
        // Every vertex lies near the circle.
        let center = (size - 1) as f64 / 2.0;
        for &(x, y) in &c.points {
            let r = ((x - center).powi(2) + (y - center).powi(2)).sqrt();
            assert!((r - radius).abs() < 0.75, "vertex radius {r}");
        }
    }

    #[test]
    fn bounding_box_of_circle() {
        let size = 64;
        let field = radial_field(size, 10.0);
        let contours = extract_contours(&field, size, 2.0, 0.0).unwrap();
        let (x0, y0, x1, y1) = contours[0].bounding_box_nm().unwrap();
        // Radius 10 samples at pitch 2nm => 20nm radius, center 63nm.
        assert!((x1 - x0 - 40.0).abs() < 2.0);
        assert!((y1 - y0 - 40.0).abs() < 2.0);
        assert!((x0 + (x1 - x0) / 2.0 - 63.0).abs() < 1.0);
    }

    #[test]
    fn two_islands_give_two_contours() {
        let size = 32;
        let mut field = vec![-1.0; size * size];
        for (cy, cx) in [(8usize, 8usize), (24, 24)] {
            for y in 0..size {
                for x in 0..size {
                    let d = ((x as f64 - cx as f64).powi(2) + (y as f64 - cy as f64).powi(2))
                        .sqrt();
                    if d < 4.0 {
                        field[y * size + x] = 1.0;
                    }
                }
            }
        }
        let contours = extract_contours(&field, size, 1.0, 0.0).unwrap();
        assert_eq!(contours.len(), 2);
    }
}
