//! Lithography simulation substrate: partially coherent optical imaging and
//! a variable-threshold resist (VTR) model.
//!
//! This crate stands in for the commercial tools the LithoGAN paper relied
//! on (Synopsys Sentaurus Lithography for golden resist contours, and the
//! optical-simulation stage of Mentor Calibre). The flow mirrors Figure 1
//! of the paper:
//!
//! ```text
//! mask grid --OpticalModel--> aerial image --ResistModel--> thresholds
//!           --develop/contour--> resist pattern
//! ```
//!
//! * [`MaskGrid`] — a rasterised mask transmission function on a physical
//!   (nm-pitch) pixel grid.
//! * [`OpticalModel`] — a sum-of-coherent-systems (SOCS) imaging model:
//!   the partially coherent transmission-cross-coefficient operator is
//!   approximated by a rank-K set of Hermite–Gaussian kernels whose width
//!   is set by the Rayleigh resolution `k₁ λ / NA`. Images are computed by
//!   FFT convolution.
//! * [`ResistModel`] — a VTR model (paper reference \[9\]): the local
//!   development threshold varies with the local intensity envelope and
//!   image slope; acid diffusion is a Gaussian blur of the aerial image.
//! * [`contour`] — marching-squares contour extraction.
//! * [`RigorousSim`] — the "golden" simulator facade: focus-stack imaging
//!   at higher kernel rank on the full clip, substituting for rigorous
//!   physical simulation.
//!
//! # Example
//!
//! ```
//! use litho_sim::{MaskGrid, OpticalModel, ProcessConfig};
//!
//! let process = ProcessConfig::n10();
//! let mut mask = MaskGrid::new(128, 16.0);
//! mask.fill_rect_nm(960.0, 960.0, 1088.0, 1088.0, 1.0);
//! let optical = OpticalModel::new(&process, 128, 16.0)?;
//! let aerial = optical.aerial_image(&mask)?;
//! assert!(aerial.max_intensity() > 0.0);
//! # Ok::<(), litho_tensor::TensorError>(())
//! ```

mod aerial;
pub mod contour;
mod grid;
mod kernels;
mod optical;
mod process;
mod process_window;
mod resist;
mod rigorous;

pub use aerial::AerialImage;
pub use contour::{extract_contours, Contour};
pub use grid::MaskGrid;
pub use kernels::{hermite, OpticalKernel};
pub use optical::OpticalModel;
pub use process::{ProcessConfig, ResistParams};
pub use process_window::{analyze_process_window, ProcessWindow, ProcessWindowConfig};
pub use resist::{ResistModel, ResistPattern};
pub use rigorous::{RigorousSim, SimReport};

pub use litho_tensor::{Result, TensorError};
