use litho_tensor::{Result, TensorError};

/// An aerial image: normalised intensity on the simulation grid
/// (1 ≈ clear field).
#[derive(Debug, Clone, PartialEq)]
pub struct AerialImage {
    size: usize,
    pitch_nm: f64,
    intensity: Vec<f64>,
}

impl AerialImage {
    /// Wraps raw intensity samples.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `intensity.len()` is not
    /// `size * size`.
    pub fn from_raw(intensity: Vec<f64>, size: usize, pitch_nm: f64) -> Result<Self> {
        if intensity.len() != size * size {
            return Err(TensorError::LengthMismatch {
                expected: size * size,
                actual: intensity.len(),
            });
        }
        Ok(AerialImage {
            size,
            pitch_nm,
            intensity,
        })
    }

    /// Grid extent in pixels per side.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Physical pitch in nm per pixel.
    pub fn pitch_nm(&self) -> f64 {
        self.pitch_nm
    }

    /// Intensity samples, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.intensity
    }

    /// Intensity at pixel `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn at(&self, y: usize, x: usize) -> f64 {
        self.intensity[y * self.size + x]
    }

    /// Peak intensity.
    pub fn max_intensity(&self) -> f64 {
        self.intensity.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Minimum intensity.
    pub fn min_intensity(&self) -> f64 {
        self.intensity.iter().copied().fold(f64::MAX, f64::min)
    }

    /// Gradient magnitude (nm⁻¹ units) at pixel `(y, x)` by central
    /// differences, clamped at the border.
    pub fn slope_at(&self, y: usize, x: usize) -> f64 {
        let s = self.size;
        let xm = x.saturating_sub(1);
        let xp = (x + 1).min(s - 1);
        let ym = y.saturating_sub(1);
        let yp = (y + 1).min(s - 1);
        let dx = (self.at(y, xp) - self.at(y, xm)) / ((xp - xm).max(1) as f64 * self.pitch_nm);
        let dy = (self.at(yp, x) - self.at(ym, x)) / ((yp - ym).max(1) as f64 * self.pitch_nm);
        (dx * dx + dy * dy).sqrt()
    }

    /// Local intensity envelope: the maximum over a square window of
    /// half-width `window_px` pixels centred on each pixel (separable
    /// max-filter, O(n · window)).
    pub fn envelope(&self, window_px: usize) -> Vec<f64> {
        let s = self.size;
        // Horizontal pass.
        let mut horiz = vec![0.0f64; s * s];
        for y in 0..s {
            for x in 0..s {
                let x0 = x.saturating_sub(window_px);
                let x1 = (x + window_px + 1).min(s);
                let mut best = f64::MIN;
                for xi in x0..x1 {
                    best = best.max(self.intensity[y * s + xi]);
                }
                horiz[y * s + x] = best;
            }
        }
        // Vertical pass.
        let mut out = vec![0.0f64; s * s];
        for y in 0..s {
            let y0 = y.saturating_sub(window_px);
            let y1 = (y + window_px + 1).min(s);
            for x in 0..s {
                let mut best = f64::MIN;
                for yi in y0..y1 {
                    best = best.max(horiz[yi * s + x]);
                }
                out[y * s + x] = best;
            }
        }
        out
    }

    /// Returns a Gaussian-blurred copy (separable convolution), modelling
    /// acid diffusion with length `sigma_nm`.
    pub fn blurred(&self, sigma_nm: f64) -> AerialImage {
        let sigma_px = sigma_nm / self.pitch_nm;
        if sigma_px < 1e-6 {
            return self.clone();
        }
        let radius = (sigma_px * 3.0).ceil() as usize;
        let mut kernel = Vec::with_capacity(2 * radius + 1);
        let mut norm = 0.0;
        for i in 0..=2 * radius {
            let d = i as f64 - radius as f64;
            let v = (-(d * d) / (2.0 * sigma_px * sigma_px)).exp();
            kernel.push(v);
            norm += v;
        }
        for v in &mut kernel {
            *v /= norm;
        }

        let s = self.size;
        let mut horiz = vec![0.0f64; s * s];
        for y in 0..s {
            for x in 0..s {
                let mut acc = 0.0;
                for (i, &k) in kernel.iter().enumerate() {
                    let xi = (x as isize + i as isize - radius as isize)
                        .clamp(0, s as isize - 1) as usize;
                    acc += k * self.intensity[y * s + xi];
                }
                horiz[y * s + x] = acc;
            }
        }
        let mut out = vec![0.0f64; s * s];
        for y in 0..s {
            for x in 0..s {
                let mut acc = 0.0;
                for (i, &k) in kernel.iter().enumerate() {
                    let yi = (y as isize + i as isize - radius as isize)
                        .clamp(0, s as isize - 1) as usize;
                    acc += k * horiz[yi * s + x];
                }
                out[y * s + x] = acc;
            }
        }
        AerialImage {
            size: s,
            pitch_nm: self.pitch_nm,
            intensity: out,
        }
    }

    /// Averages a stack of same-geometry aerial images (focus averaging in
    /// the rigorous simulator).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the stack is empty or
    /// geometries disagree.
    pub fn average(stack: &[AerialImage]) -> Result<AerialImage> {
        let first = stack.first().ok_or_else(|| {
            TensorError::InvalidArgument("cannot average an empty focus stack".into())
        })?;
        let mut out = vec![0.0f64; first.intensity.len()];
        for img in stack {
            if img.size != first.size || (img.pitch_nm - first.pitch_nm).abs() > 1e-12 {
                return Err(TensorError::InvalidArgument(
                    "aerial image geometries disagree".into(),
                ));
            }
            for (o, &v) in out.iter_mut().zip(&img.intensity) {
                *o += v;
            }
        }
        let n = stack.len() as f64;
        for o in &mut out {
            *o /= n;
        }
        AerialImage::from_raw(out, first.size, first.pitch_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_image(size: usize) -> AerialImage {
        let mut data = vec![0.0; size * size];
        data[size / 2 * size + size / 2] = 1.0;
        AerialImage::from_raw(data, size, 4.0).unwrap()
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(AerialImage::from_raw(vec![0.0; 5], 2, 1.0).is_err());
        assert!(AerialImage::from_raw(vec![0.0; 4], 2, 1.0).is_ok());
    }

    #[test]
    fn blur_preserves_total_intensity() {
        let img = delta_image(32);
        let blurred = img.blurred(8.0);
        let total: f64 = blurred.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        // Peak spreads out.
        assert!(blurred.max_intensity() < 1.0);
        assert!(blurred.at(16, 17) > 0.0);
    }

    #[test]
    fn blur_zero_sigma_is_identity() {
        let img = delta_image(16);
        assert_eq!(img.blurred(0.0), img);
    }

    #[test]
    fn envelope_is_local_max() {
        let img = delta_image(16);
        let env = img.envelope(2);
        // Within 2 pixels of the delta, envelope = 1.
        assert_eq!(env[8 * 16 + 8], 1.0);
        assert_eq!(env[6 * 16 + 8], 1.0);
        assert_eq!(env[3 * 16 + 8], 0.0);
    }

    #[test]
    fn slope_of_linear_ramp() {
        let size = 16;
        let pitch = 2.0;
        let data: Vec<f64> = (0..size * size)
            .map(|i| (i % size) as f64 * 0.1)
            .collect();
        let img = AerialImage::from_raw(data, size, pitch).unwrap();
        // dI/dx = 0.1 per pixel = 0.05 per nm.
        assert!((img.slope_at(8, 8) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn average_requires_matching_geometry() {
        let a = delta_image(8);
        let b = delta_image(16);
        assert!(AerialImage::average(&[a.clone(), b]).is_err());
        assert!(AerialImage::average(&[]).is_err());
        let avg = AerialImage::average(&[a.clone(), a.clone()]).unwrap();
        assert_eq!(avg, a);
    }
}
