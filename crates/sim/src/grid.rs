use litho_tensor::{Result, TensorError};

/// A rasterised mask transmission function on a square pixel grid.
///
/// The grid covers `size × size` pixels with a physical `pitch_nm`
/// nanometres per pixel; transmission values are in `[0, 1]` (1 = clear,
/// 0 = chrome for a bright-field contact mask the convention is inverted:
/// contact openings are drawn with transmission 1 on a dark field).
///
/// Rectangles are filled with analytic area coverage on boundary pixels,
/// so sub-pixel edge placement — which OPC relies on — is represented.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskGrid {
    size: usize,
    pitch_nm: f64,
    data: Vec<f64>,
}

impl MaskGrid {
    /// Creates an all-dark grid of `size × size` pixels with the given
    /// physical pitch (nm per pixel).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `pitch_nm` is not positive.
    pub fn new(size: usize, pitch_nm: f64) -> Self {
        assert!(size > 0, "grid size must be positive");
        assert!(pitch_nm > 0.0, "pitch must be positive");
        MaskGrid {
            size,
            pitch_nm,
            data: vec![0.0; size * size],
        }
    }

    /// Grid extent in pixels per side.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Physical pitch in nm per pixel.
    pub fn pitch_nm(&self) -> f64 {
        self.pitch_nm
    }

    /// Physical extent of the grid in nm per side.
    pub fn extent_nm(&self) -> f64 {
        self.size as f64 * self.pitch_nm
    }

    /// Transmission values, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable transmission values, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transmission at pixel `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn at(&self, y: usize, x: usize) -> f64 {
        self.data[y * self.size + x]
    }

    /// Adds a rectangle in physical nm coordinates `(x0, y0)–(x1, y1)` with
    /// the given transmission, using exact area coverage on boundary
    /// pixels. Values saturate at 1.
    ///
    /// Coordinates outside the grid are clipped.
    pub fn fill_rect_nm(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, transmission: f64) {
        let (x0, x1) = (x0.min(x1), x0.max(x1));
        let (y0, y1) = (y0.min(y1), y0.max(y1));
        let extent = self.extent_nm();
        let x0 = x0.clamp(0.0, extent);
        let x1 = x1.clamp(0.0, extent);
        let y0 = y0.clamp(0.0, extent);
        let y1 = y1.clamp(0.0, extent);
        if x1 <= x0 || y1 <= y0 {
            return;
        }
        let p = self.pitch_nm;
        let py0 = (y0 / p).floor() as usize;
        let py1 = ((y1 / p).ceil() as usize).min(self.size);
        let px0 = (x0 / p).floor() as usize;
        let px1 = ((x1 / p).ceil() as usize).min(self.size);
        for py in py0..py1 {
            // Vertical coverage fraction of this pixel row.
            let cell_y0 = py as f64 * p;
            let cell_y1 = cell_y0 + p;
            let cy = ((y1.min(cell_y1) - y0.max(cell_y0)) / p).clamp(0.0, 1.0);
            for px in px0..px1 {
                let cell_x0 = px as f64 * p;
                let cell_x1 = cell_x0 + p;
                let cx = ((x1.min(cell_x1) - x0.max(cell_x0)) / p).clamp(0.0, 1.0);
                let v = &mut self.data[py * self.size + px];
                *v = (*v + transmission * cx * cy).min(1.0);
            }
        }
    }

    /// Total transmitted area in nm² (sum of transmission × pixel area).
    pub fn transmitted_area_nm2(&self) -> f64 {
        self.data.iter().sum::<f64>() * self.pitch_nm * self.pitch_nm
    }

    /// Extracts a square sub-grid of `out_size` pixels centred at physical
    /// position `(cx_nm, cy_nm)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the window exceeds the
    /// grid bounds.
    pub fn crop_centered_nm(&self, cx_nm: f64, cy_nm: f64, out_size: usize) -> Result<MaskGrid> {
        let half = out_size as f64 / 2.0 * self.pitch_nm;
        let x0 = ((cx_nm - half) / self.pitch_nm).round() as isize;
        let y0 = ((cy_nm - half) / self.pitch_nm).round() as isize;
        if x0 < 0
            || y0 < 0
            || x0 as usize + out_size > self.size
            || y0 as usize + out_size > self.size
        {
            return Err(TensorError::InvalidArgument(format!(
                "crop window {out_size}px at ({cx_nm},{cy_nm})nm exceeds grid"
            )));
        }
        let mut out = MaskGrid::new(out_size, self.pitch_nm);
        for y in 0..out_size {
            for x in 0..out_size {
                out.data[y * out_size + x] =
                    self.data[(y0 as usize + y) * self.size + (x0 as usize + x)];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_aligned_rect_is_exact() {
        let mut g = MaskGrid::new(16, 10.0);
        g.fill_rect_nm(20.0, 30.0, 60.0, 70.0, 1.0);
        // 40nm x 40nm at 10nm pitch = 16 fully covered pixels.
        assert!((g.transmitted_area_nm2() - 1600.0).abs() < 1e-9);
        assert_eq!(g.at(3, 2), 1.0);
        assert_eq!(g.at(0, 0), 0.0);
    }

    #[test]
    fn subpixel_rect_has_fractional_coverage() {
        let mut g = MaskGrid::new(8, 10.0);
        g.fill_rect_nm(12.0, 12.0, 18.0, 18.0, 1.0);
        // 6x6 nm fully inside pixel (1,1): coverage 0.36.
        assert!((g.at(1, 1) - 0.36).abs() < 1e-9);
        assert!((g.transmitted_area_nm2() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn rect_straddling_pixels_preserves_area() {
        let mut g = MaskGrid::new(8, 10.0);
        g.fill_rect_nm(15.0, 15.0, 35.0, 25.0, 1.0);
        assert!((g.transmitted_area_nm2() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_bounds_rect_is_clipped() {
        let mut g = MaskGrid::new(4, 10.0);
        g.fill_rect_nm(-100.0, -100.0, 5.0, 5.0, 1.0);
        assert!((g.transmitted_area_nm2() - 25.0).abs() < 1e-9);
        // Fully outside: no-op.
        let before = g.clone();
        g.fill_rect_nm(100.0, 100.0, 200.0, 200.0, 1.0);
        assert_eq!(g, before);
    }

    #[test]
    fn transmission_saturates() {
        let mut g = MaskGrid::new(4, 10.0);
        g.fill_rect_nm(0.0, 0.0, 40.0, 40.0, 1.0);
        g.fill_rect_nm(0.0, 0.0, 40.0, 40.0, 1.0);
        assert!(g.as_slice().iter().all(|&v| v <= 1.0));
    }

    #[test]
    fn crop_centered_round_trip() {
        let mut g = MaskGrid::new(32, 4.0);
        g.fill_rect_nm(60.0, 60.0, 68.0, 68.0, 1.0);
        let crop = g.crop_centered_nm(64.0, 64.0, 8).unwrap();
        assert_eq!(crop.size(), 8);
        assert!((crop.transmitted_area_nm2() - 64.0).abs() < 1e-9);
        assert!(g.crop_centered_nm(2.0, 2.0, 8).is_err());
    }
}
