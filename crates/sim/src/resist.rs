use litho_tensor::{Result, TensorError};

use crate::{AerialImage, ResistParams};

/// A developed resist pattern: a binary print map on the simulation grid.
///
/// `true` pixels are printed (the contact hole opens in positive resist).
#[derive(Debug, Clone, PartialEq)]
pub struct ResistPattern {
    size: usize,
    pitch_nm: f64,
    printed: Vec<bool>,
}

impl ResistPattern {
    /// Wraps a raw print map.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `printed.len()` is not
    /// `size * size`.
    pub fn from_raw(printed: Vec<bool>, size: usize, pitch_nm: f64) -> Result<Self> {
        if printed.len() != size * size {
            return Err(TensorError::LengthMismatch {
                expected: size * size,
                actual: printed.len(),
            });
        }
        Ok(ResistPattern {
            size,
            pitch_nm,
            printed,
        })
    }

    /// Grid extent in pixels per side.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Physical pitch in nm per pixel.
    pub fn pitch_nm(&self) -> f64 {
        self.pitch_nm
    }

    /// The raw print map, row-major.
    pub fn as_slice(&self) -> &[bool] {
        &self.printed
    }

    /// Whether pixel `(y, x)` printed.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn at(&self, y: usize, x: usize) -> bool {
        self.printed[y * self.size + x]
    }

    /// Printed area in nm².
    pub fn printed_area_nm2(&self) -> f64 {
        self.printed.iter().filter(|&&b| b).count() as f64 * self.pitch_nm * self.pitch_nm
    }

    /// The 4-connected printed component containing pixel `(y, x)`, as a
    /// new pattern with all other components erased. Returns an all-false
    /// pattern if `(y, x)` did not print.
    pub fn component_at(&self, y: usize, x: usize) -> ResistPattern {
        let mut out = vec![false; self.size * self.size];
        if y >= self.size || x >= self.size || !self.at(y, x) {
            return ResistPattern {
                size: self.size,
                pitch_nm: self.pitch_nm,
                printed: out,
            };
        }
        let mut stack = vec![(y, x)];
        out[y * self.size + x] = true;
        while let Some((cy, cx)) = stack.pop() {
            let push = |ny: usize, nx: usize, out: &mut Vec<bool>, stack: &mut Vec<(usize, usize)>| {
                let idx = ny * self.size + nx;
                if self.printed[idx] && !out[idx] {
                    out[idx] = true;
                    stack.push((ny, nx));
                }
            };
            if cy > 0 {
                push(cy - 1, cx, &mut out, &mut stack);
            }
            if cy + 1 < self.size {
                push(cy + 1, cx, &mut out, &mut stack);
            }
            if cx > 0 {
                push(cy, cx - 1, &mut out, &mut stack);
            }
            if cx + 1 < self.size {
                push(cy, cx + 1, &mut out, &mut stack);
            }
        }
        ResistPattern {
            size: self.size,
            pitch_nm: self.pitch_nm,
            printed: out,
        }
    }

    /// The printed component nearest to the grid centre: the component
    /// containing the centre pixel if it printed, otherwise the component
    /// of the printed pixel closest to the centre. `None` if nothing
    /// printed.
    pub fn center_component(&self) -> Option<ResistPattern> {
        let c = self.size / 2;
        if self.at(c, c) {
            return Some(self.component_at(c, c));
        }
        let mut best: Option<(usize, usize)> = None;
        let mut best_d = usize::MAX;
        for y in 0..self.size {
            for x in 0..self.size {
                if self.printed[y * self.size + x] {
                    let d = y.abs_diff(c).pow(2) + x.abs_diff(c).pow(2);
                    if d < best_d {
                        best_d = d;
                        best = Some((y, x));
                    }
                }
            }
        }
        best.map(|(y, x)| self.component_at(y, x))
    }

    /// Bounding box `(y_min, x_min, y_max, x_max)` in pixels (inclusive) of
    /// all printed pixels, or `None` if nothing printed.
    pub fn bounding_box(&self) -> Option<(usize, usize, usize, usize)> {
        let mut bb: Option<(usize, usize, usize, usize)> = None;
        for y in 0..self.size {
            for x in 0..self.size {
                if self.printed[y * self.size + x] {
                    bb = Some(match bb {
                        None => (y, x, y, x),
                        Some((y0, x0, y1, x1)) => (y0.min(y), x0.min(x), y1.max(y), x1.max(x)),
                    });
                }
            }
        }
        bb
    }

    /// Centre of the bounding box in physical nm, or `None` if nothing
    /// printed.
    pub fn center_nm(&self) -> Option<(f64, f64)> {
        self.bounding_box().map(|(y0, x0, y1, x1)| {
            (
                (y0 + y1 + 1) as f64 / 2.0 * self.pitch_nm,
                (x0 + x1 + 1) as f64 / 2.0 * self.pitch_nm,
            )
        })
    }

    /// Critical dimension in nm: the printed width along the horizontal
    /// line through the bounding-box centre.
    pub fn cd_horizontal_nm(&self) -> Option<f64> {
        let (y0, _, y1, _) = self.bounding_box()?;
        let row = (y0 + y1) / 2;
        let count = (0..self.size).filter(|&x| self.at(row, x)).count();
        Some(count as f64 * self.pitch_nm)
    }

    /// Crops a `window_px` square centred at physical `(cy_nm, cx_nm)`,
    /// clamping the window inside the grid.
    pub fn crop_window(&self, cy_nm: f64, cx_nm: f64, window_px: usize) -> ResistPattern {
        let window_px = window_px.min(self.size);
        let cy = (cy_nm / self.pitch_nm).round() as isize;
        let cx = (cx_nm / self.pitch_nm).round() as isize;
        let max0 = (self.size - window_px) as isize;
        let y0 = (cy - window_px as isize / 2).clamp(0, max0) as usize;
        let x0 = (cx - window_px as isize / 2).clamp(0, max0) as usize;
        let mut printed = vec![false; window_px * window_px];
        for y in 0..window_px {
            for x in 0..window_px {
                printed[y * window_px + x] = self.printed[(y0 + y) * self.size + (x0 + x)];
            }
        }
        ResistPattern {
            size: window_px,
            pitch_nm: self.pitch_nm,
            printed,
        }
    }
}

/// The variable-threshold resist model.
///
/// Development proceeds where the diffused aerial intensity exceeds a
/// locally varying threshold
/// `T = base + env_coeff · I_env + slope_coeff · |∇I|`
/// (paper reference \[9\]: Randall et al., "Variable-threshold resist
/// models for lithography simulation").
#[derive(Debug, Clone, PartialEq)]
pub struct ResistModel {
    params: ResistParams,
}

impl ResistModel {
    /// Creates a resist model from calibration constants.
    pub fn new(params: ResistParams) -> Self {
        ResistModel { params }
    }

    /// The calibration constants.
    pub fn params(&self) -> &ResistParams {
        &self.params
    }

    /// Computes the locally varying development threshold field.
    pub fn threshold_field(&self, aerial: &AerialImage) -> Vec<f64> {
        let s = aerial.size();
        let window_px =
            ((self.params.env_window_nm / aerial.pitch_nm()).round() as usize).max(1);
        let env = aerial.envelope(window_px);
        let mut t = vec![0.0f64; s * s];
        for y in 0..s {
            for x in 0..s {
                t[y * s + x] = self.params.base_threshold
                    + self.params.env_coeff * env[y * s + x]
                    + self.params.slope_coeff * aerial.slope_at(y, x);
            }
        }
        t
    }

    /// The development *excess* field `I_diffused - T`: positive where the
    /// resist prints. The zero level set of this field is the resist
    /// contour, and the dataset pipeline upsamples it for sub-pixel-
    /// accurate golden windows.
    pub fn excess_field(&self, aerial: &AerialImage) -> Vec<f64> {
        let diffused = aerial.blurred(self.params.diffusion_nm);
        let threshold = self.threshold_field(&diffused);
        diffused
            .as_slice()
            .iter()
            .zip(&threshold)
            .map(|(&i, &t)| i - t)
            .collect()
    }

    /// Develops an aerial image into a binary resist pattern: diffuse,
    /// threshold, print.
    pub fn develop(&self, aerial: &AerialImage) -> ResistPattern {
        let s = aerial.size();
        let printed = self.excess_field(aerial).iter().map(|&e| e >= 0.0).collect();
        ResistPattern {
            size: s,
            pitch_nm: aerial.pitch_nm(),
            printed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaskGrid, OpticalModel, ProcessConfig};

    fn develop_contact(contact_nm: f64) -> ResistPattern {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, 128, 8.0).unwrap();
        let mut mask = MaskGrid::new(128, 8.0);
        let c = 128.0 * 8.0 / 2.0;
        let h = contact_nm / 2.0;
        mask.fill_rect_nm(c - h, c - h, c + h, c + h, 1.0);
        let aerial = model.aerial_image(&mask).unwrap();
        ResistModel::new(p.resist).develop(&aerial)
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(ResistPattern::from_raw(vec![false; 3], 2, 1.0).is_err());
    }

    #[test]
    fn large_contact_prints_centered() {
        let pattern = develop_contact(90.0);
        assert!(pattern.printed_area_nm2() > 0.0, "nothing printed");
        let (cy, cx) = pattern.center_nm().unwrap();
        let mid = 128.0 * 8.0 / 2.0;
        assert!((cy - mid).abs() < 16.0, "cy {cy}");
        assert!((cx - mid).abs() < 16.0, "cx {cx}");
    }

    #[test]
    fn printed_cd_grows_with_mask_size() {
        let small = develop_contact(70.0).printed_area_nm2();
        let large = develop_contact(100.0).printed_area_nm2();
        assert!(large > small, "small {small}, large {large}");
    }

    #[test]
    fn component_extraction_separates_islands() {
        let mut printed = vec![false; 64];
        // Two 2x2 islands.
        for (y, x) in [(1, 1), (1, 2), (2, 1), (2, 2), (5, 5), (5, 6), (6, 5), (6, 6)] {
            printed[y * 8 + x] = true;
        }
        let p = ResistPattern::from_raw(printed, 8, 1.0).unwrap();
        let island = p.component_at(1, 1);
        assert_eq!(island.printed_area_nm2(), 4.0);
        assert!(!island.at(5, 5));
        // Component at an unprinted pixel is empty.
        assert_eq!(p.component_at(0, 0).printed_area_nm2(), 0.0);
    }

    #[test]
    fn center_component_prefers_central_island() {
        let mut printed = vec![false; 16 * 16];
        printed[8 * 16 + 8] = true; // center
        printed[16 + 1] = true; // far corner
        let p = ResistPattern::from_raw(printed, 16, 1.0).unwrap();
        let c = p.center_component().unwrap();
        assert!(c.at(8, 8));
        assert!(!c.at(1, 1));
    }

    #[test]
    fn bounding_box_and_cd() {
        let mut printed = vec![false; 64];
        for y in 2..5 {
            for x in 1..7 {
                printed[y * 8 + x] = true;
            }
        }
        let p = ResistPattern::from_raw(printed, 8, 2.0).unwrap();
        assert_eq!(p.bounding_box(), Some((2, 1, 4, 6)));
        assert_eq!(p.cd_horizontal_nm(), Some(12.0));
        assert_eq!(p.center_nm(), Some((7.0, 8.0)));
    }

    #[test]
    fn empty_pattern_has_no_box() {
        let p = ResistPattern::from_raw(vec![false; 16], 4, 1.0).unwrap();
        assert_eq!(p.bounding_box(), None);
        assert_eq!(p.center_component(), None);
        assert_eq!(p.cd_horizontal_nm(), None);
    }

    #[test]
    fn crop_window_is_clamped() {
        let mut printed = vec![false; 64];
        printed[0] = true;
        let p = ResistPattern::from_raw(printed, 8, 1.0).unwrap();
        let crop = p.crop_window(0.0, 0.0, 4);
        assert_eq!(crop.size(), 4);
        assert!(crop.at(0, 0));
    }

    #[test]
    fn threshold_field_rises_near_bright_features() {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, 64, 8.0).unwrap();
        let mut mask = MaskGrid::new(64, 8.0);
        mask.fill_rect_nm(220.0, 220.0, 292.0, 292.0, 1.0);
        let aerial = model.aerial_image(&mask).unwrap();
        let resist = ResistModel::new(p.resist);
        let t = resist.threshold_field(&aerial);
        // Threshold near the feature exceeds the dark-corner threshold.
        assert!(t[32 * 64 + 32] > t[4 * 64 + 4]);
        assert!((t[4 * 64 + 4] - p.resist.base_threshold).abs() < 1e-6);
    }
}
