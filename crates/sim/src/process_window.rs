//! Process-window analysis: printed CD across a dose × defocus grid.
//!
//! The classic litho yield question the substrate must be able to answer:
//! over what range of exposure dose and focus does a feature print within
//! specification? This drives the SRAF efficacy checks (assist features
//! exist to widen the process window) and gives downstream users the same
//! analysis a commercial simulator offers.

use litho_tensor::{Result, TensorError};

use crate::{AerialImage, MaskGrid, OpticalModel, ProcessConfig, ResistModel};

/// Grid specification for a process-window sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessWindowConfig {
    /// Relative dose levels (1.0 = nominal exposure).
    pub dose_levels: Vec<f64>,
    /// Defocus levels in nm (0 = best focus).
    pub defocus_levels_nm: Vec<f64>,
    /// Target printed CD in nm.
    pub target_cd_nm: f64,
    /// Acceptance band as a fraction of the target (0.1 = ±10 %, the
    /// paper's §4.2 criterion).
    pub tolerance_frac: f64,
}

impl ProcessWindowConfig {
    /// A standard 5 × 5 sweep around nominal conditions.
    pub fn standard(target_cd_nm: f64) -> Self {
        ProcessWindowConfig {
            dose_levels: vec![0.9, 0.95, 1.0, 1.05, 1.1],
            defocus_levels_nm: vec![-60.0, -30.0, 0.0, 30.0, 60.0],
            target_cd_nm,
            tolerance_frac: 0.1,
        }
    }
}

/// The measured process window: printed CD per (defocus, dose) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessWindow {
    config: ProcessWindowConfig,
    /// `cd_nm[defocus_idx][dose_idx]`; `None` when nothing printed.
    cd_nm: Vec<Vec<Option<f64>>>,
}

impl ProcessWindow {
    /// The sweep configuration.
    pub fn config(&self) -> &ProcessWindowConfig {
        &self.config
    }

    /// Printed CD at a grid cell, or `None` if nothing printed there.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn cd_at(&self, defocus_idx: usize, dose_idx: usize) -> Option<f64> {
        self.cd_nm[defocus_idx][dose_idx]
    }

    /// Whether a cell prints within the acceptance band.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn in_spec(&self, defocus_idx: usize, dose_idx: usize) -> bool {
        match self.cd_nm[defocus_idx][dose_idx] {
            Some(cd) => {
                (cd - self.config.target_cd_nm).abs()
                    <= self.config.target_cd_nm * self.config.tolerance_frac
            }
            None => false,
        }
    }

    /// Number of in-spec cells — a scalar process-window area proxy.
    pub fn in_spec_cells(&self) -> usize {
        (0..self.config.defocus_levels_nm.len())
            .flat_map(|f| (0..self.config.dose_levels.len()).map(move |d| (f, d)))
            .filter(|&(f, d)| self.in_spec(f, d))
            .count()
    }

    /// Depth of focus at nominal dose: the span (nm) of contiguous
    /// in-spec defocus levels around best focus. Zero when best focus is
    /// out of spec (or absent from the grid).
    pub fn depth_of_focus_nm(&self) -> f64 {
        let dose_idx = match self
            .config
            .dose_levels
            .iter()
            .position(|&d| (d - 1.0).abs() < 1e-9)
        {
            Some(i) => i,
            None => return 0.0,
        };
        let focus_idx = match self
            .config
            .defocus_levels_nm
            .iter()
            .position(|&f| f.abs() < 1e-9)
        {
            Some(i) => i,
            None => return 0.0,
        };
        if !self.in_spec(focus_idx, dose_idx) {
            return 0.0;
        }
        let mut lo = focus_idx;
        while lo > 0 && self.in_spec(lo - 1, dose_idx) {
            lo -= 1;
        }
        let mut hi = focus_idx;
        while hi + 1 < self.config.defocus_levels_nm.len() && self.in_spec(hi + 1, dose_idx) {
            hi += 1;
        }
        self.config.defocus_levels_nm[hi] - self.config.defocus_levels_nm[lo]
    }

    /// Exposure latitude at best focus: the relative dose span of
    /// contiguous in-spec dose levels around nominal. Zero when nominal
    /// dose is out of spec.
    pub fn exposure_latitude(&self) -> f64 {
        let focus_idx = match self
            .config
            .defocus_levels_nm
            .iter()
            .position(|&f| f.abs() < 1e-9)
        {
            Some(i) => i,
            None => return 0.0,
        };
        let dose_idx = match self
            .config
            .dose_levels
            .iter()
            .position(|&d| (d - 1.0).abs() < 1e-9)
        {
            Some(i) => i,
            None => return 0.0,
        };
        if !self.in_spec(focus_idx, dose_idx) {
            return 0.0;
        }
        let mut lo = dose_idx;
        while lo > 0 && self.in_spec(focus_idx, lo - 1) {
            lo -= 1;
        }
        let mut hi = dose_idx;
        while hi + 1 < self.config.dose_levels.len() && self.in_spec(focus_idx, hi + 1) {
            hi += 1;
        }
        self.config.dose_levels[hi] - self.config.dose_levels[lo]
    }
}

/// Sweeps the process window of a mask's centre feature.
///
/// Dose scales the aerial intensity linearly (exposure time); defocus is
/// imaged with a dedicated compact optical model per level. The printed
/// CD is measured on the centre component.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for an empty sweep grid and
/// propagates simulation errors.
pub fn analyze_process_window(
    process: &ProcessConfig,
    mask: &MaskGrid,
    config: &ProcessWindowConfig,
) -> Result<ProcessWindow> {
    if config.dose_levels.is_empty() || config.defocus_levels_nm.is_empty() {
        return Err(TensorError::InvalidArgument(
            "process-window sweep grid must be non-empty".into(),
        ));
    }
    let resist = ResistModel::new(process.resist);
    let mut cd_nm = Vec::with_capacity(config.defocus_levels_nm.len());
    for &defocus in &config.defocus_levels_nm {
        let model = OpticalModel::with_settings(
            process,
            mask.size(),
            mask.pitch_nm(),
            defocus,
            process.compact_kernel_count,
        )?;
        let aerial = model.aerial_image(mask)?;
        let mut row = Vec::with_capacity(config.dose_levels.len());
        for &dose in &config.dose_levels {
            let dosed: Vec<f64> = aerial.as_slice().iter().map(|&v| v * dose).collect();
            let dosed = AerialImage::from_raw(dosed, aerial.size(), aerial.pitch_nm())?;
            let pattern = resist.develop(&dosed);
            row.push(
                pattern
                    .center_component()
                    .and_then(|c| c.cd_horizontal_nm())
                    .filter(|&cd| cd > 0.0),
            );
        }
        cd_nm.push(row);
    }
    Ok(ProcessWindow {
        config: config.clone(),
        cd_nm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased_contact_mask() -> MaskGrid {
        // A mask contact sized so the nominal condition prints ~60 nm.
        let mut mask = MaskGrid::new(128, 16.0);
        let c = 1024.0;
        mask.fill_rect_nm(c - 48.0, c - 48.0, c + 48.0, c + 48.0, 1.0);
        mask
    }

    fn window() -> ProcessWindow {
        let process = ProcessConfig::n10();
        let mask = biased_contact_mask();
        let nominal = analyze_process_window(
            &process,
            &mask,
            &ProcessWindowConfig::standard(0.0),
        )
        .unwrap();
        // Calibrate the target to the nominal print so the spec band is
        // centred (the test probes window *structure*, not calibration).
        let cd = nominal.cd_at(2, 2).expect("nominal condition must print");
        analyze_process_window(&process, &mask, &ProcessWindowConfig::standard(cd)).unwrap()
    }

    #[test]
    fn empty_grid_rejected() {
        let process = ProcessConfig::n10();
        let mask = biased_contact_mask();
        let bad = ProcessWindowConfig {
            dose_levels: vec![],
            ..ProcessWindowConfig::standard(60.0)
        };
        assert!(analyze_process_window(&process, &mask, &bad).is_err());
    }

    #[test]
    fn cd_is_monotone_in_dose() {
        let w = window();
        for f in 0..5 {
            let mut prev = 0.0;
            for d in 0..5 {
                if let Some(cd) = w.cd_at(f, d) {
                    assert!(cd >= prev - 1e-9, "CD not monotone at ({f},{d})");
                    prev = cd;
                }
            }
        }
    }

    #[test]
    fn best_focus_prints_largest() {
        let w = window();
        let focus = w.cd_at(2, 2).unwrap();
        for f in [0usize, 4] {
            if let Some(defocused) = w.cd_at(f, 2) {
                assert!(defocused <= focus + 1e-9);
            }
        }
    }

    #[test]
    fn nominal_cell_is_in_spec_and_window_nonempty() {
        let w = window();
        assert!(w.in_spec(2, 2));
        assert!(w.in_spec_cells() >= 1);
        assert!(w.depth_of_focus_nm() >= 0.0);
        assert!(w.exposure_latitude() >= 0.0);
    }

    #[test]
    fn underdose_shrinks_or_kills_the_print() {
        let process = ProcessConfig::n10();
        let mask = biased_contact_mask();
        let config = ProcessWindowConfig {
            dose_levels: vec![0.3, 1.0],
            defocus_levels_nm: vec![0.0],
            target_cd_nm: 60.0,
            tolerance_frac: 0.1,
        };
        let w = analyze_process_window(&process, &mask, &config).unwrap();
        let low = w.cd_at(0, 0);
        let nominal = w.cd_at(0, 1).unwrap();
        match low {
            None => {}
            Some(cd) => assert!(cd < nominal),
        }
    }
}
