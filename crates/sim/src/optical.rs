use std::sync::Mutex;

use litho_tensor::fft::{fft2_in_place, FftDirection};
use litho_tensor::{pool, Complex, Result, TensorError};

use crate::kernels::{build_kernels, OpticalKernel};
use crate::{AerialImage, MaskGrid, ProcessConfig};

/// A partially coherent optical imaging model at a fixed defocus.
///
/// Holds the pre-transformed SOCS kernel spectra for a fixed grid
/// geometry, so imaging a mask costs one forward FFT of the mask plus one
/// inverse FFT per kernel. The per-kernel inverse FFTs run in parallel on
/// the shared worker pool (each kernel owns a disjoint field buffer) and
/// the weighted intensity reduction stays serial in kernel order, so the
/// result is bit-identical to the serial loop at any thread count.
///
/// The kernel count defaults to the process's *compact* rank; the rigorous
/// facade ([`crate::RigorousSim`]) requests the higher rank explicitly.
#[derive(Debug)]
pub struct OpticalModel {
    size: usize,
    pitch_nm: f64,
    defocus_nm: f64,
    /// Frequency-domain kernels (precomputed FFTs) and their weights.
    spectra: Vec<(f64, Vec<Complex>)>,
    /// Scratch reused across `aerial_image` calls — `RigorousSim` images
    /// the same grid repeatedly, so the staging/field buffers are hot.
    scratch: Mutex<Scratch>,
}

/// Reusable buffers for [`OpticalModel::aerial_image`], grown on demand.
#[derive(Debug, Default)]
struct Scratch {
    /// The mask lifted to complex and transformed once per call.
    mask_spec: Vec<Complex>,
    /// One field buffer per SOCS kernel, written by parallel tasks.
    fields: Vec<Vec<Complex>>,
}

impl Clone for OpticalModel {
    fn clone(&self) -> Self {
        OpticalModel {
            size: self.size,
            pitch_nm: self.pitch_nm,
            defocus_nm: self.defocus_nm,
            spectra: self.spectra.clone(),
            // Scratch is transient state; a clone starts cold.
            scratch: Mutex::new(Scratch::default()),
        }
    }
}

impl OpticalModel {
    /// Builds a best-focus model with the process's compact kernel rank.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::FftLengthNotPowerOfTwo`] if `size` is not a
    /// power of two and [`TensorError::InvalidArgument`] for a non-positive
    /// pitch.
    pub fn new(process: &ProcessConfig, size: usize, pitch_nm: f64) -> Result<Self> {
        OpticalModel::with_settings(process, size, pitch_nm, 0.0, process.compact_kernel_count)
    }

    /// Builds a model at an explicit defocus and kernel rank.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OpticalModel::new`].
    pub fn with_settings(
        process: &ProcessConfig,
        size: usize,
        pitch_nm: f64,
        defocus_nm: f64,
        kernel_count: usize,
    ) -> Result<Self> {
        if !size.is_power_of_two() {
            return Err(TensorError::FftLengthNotPowerOfTwo(size));
        }
        if pitch_nm <= 0.0 {
            return Err(TensorError::InvalidArgument(
                "pitch must be positive".into(),
            ));
        }
        if kernel_count == 0 {
            return Err(TensorError::InvalidArgument(
                "kernel count must be positive".into(),
            ));
        }
        let kernels = build_kernels(process, size, pitch_nm, defocus_nm, kernel_count);
        let spectra = kernels
            .into_iter()
            .map(|k: OpticalKernel| {
                let mut spec = k.samples;
                fft2_in_place(&mut spec, size, size, FftDirection::Forward)
                    .expect("size validated as power of two");
                (k.weight, spec)
            })
            .collect();
        Ok(OpticalModel {
            size,
            pitch_nm,
            defocus_nm,
            spectra,
            scratch: Mutex::new(Scratch::default()),
        })
    }

    /// Grid extent in pixels per side.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Physical pitch in nm per pixel.
    pub fn pitch_nm(&self) -> f64 {
        self.pitch_nm
    }

    /// Defocus of this model in nm.
    pub fn defocus_nm(&self) -> f64 {
        self.defocus_nm
    }

    /// Number of coherent systems in the SOCS expansion.
    pub fn kernel_count(&self) -> usize {
        self.spectra.len()
    }

    /// Computes the aerial image of a mask: `I = Σ_j w_j |m ⊛ k_j|²`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the mask geometry differs
    /// from the model's grid.
    pub fn aerial_image(&self, mask: &MaskGrid) -> Result<AerialImage> {
        if mask.size() != self.size || (mask.pitch_nm() - self.pitch_nm).abs() > 1e-12 {
            return Err(TensorError::ShapeMismatch {
                left: vec![mask.size(), mask.size()],
                right: vec![self.size, self.size],
            });
        }
        let n = self.size;
        let mut scratch = self.scratch.lock().expect("optical scratch poisoned");
        let Scratch { mask_spec, fields } = &mut *scratch;

        // Forward FFT of the mask once, staged into the reused buffer.
        mask_spec.resize(n * n, Complex::ZERO);
        for (s, &v) in mask_spec.iter_mut().zip(mask.as_slice()) {
            *s = Complex::new(v, 0.0);
        }
        fft2_in_place(mask_spec, n, n, FftDirection::Forward)?;

        // One inverse FFT per kernel, each into its own reused field buffer
        // so the transforms can run in parallel. Buffers are overwritten in
        // full, so stale contents from a previous call are harmless.
        fields.resize_with(self.spectra.len(), Vec::new);
        {
            let mask_spec: &[Complex] = mask_spec;
            let spectra = &self.spectra;
            pool::parallel_for_chunks(fields, 1, |j, chunk| {
                let field = &mut chunk[0];
                field.resize(n * n, Complex::ZERO);
                let (_, spec) = &spectra[j];
                for ((f, &m), &k) in field.iter_mut().zip(mask_spec).zip(spec) {
                    *f = m * k;
                }
                fft2_in_place(field, n, n, FftDirection::Inverse)
                    .expect("size validated at construction");
            });
        }

        // Weighted reduction stays serial and in kernel order: the fold
        // `((0 + w_0·|a_0|²) + w_1·|a_1|²) + …` matches the original serial
        // loop bit-for-bit regardless of how the FFTs were scheduled.
        let mut intensity = vec![0.0f64; n * n];
        for ((weight, _), field) in self.spectra.iter().zip(fields.iter()) {
            for (acc, a) in intensity.iter_mut().zip(field.iter()) {
                *acc += weight * a.norm_sqr();
            }
        }
        AerialImage::from_raw(intensity, n, self.pitch_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contact_mask(size: usize, pitch: f64, contact_nm: f64) -> MaskGrid {
        let mut g = MaskGrid::new(size, pitch);
        let c = size as f64 * pitch / 2.0;
        let h = contact_nm / 2.0;
        g.fill_rect_nm(c - h, c - h, c + h, c + h, 1.0);
        g
    }

    #[test]
    fn rejects_bad_geometry() {
        let p = ProcessConfig::n10();
        assert!(OpticalModel::new(&p, 100, 4.0).is_err()); // not a power of 2
        assert!(OpticalModel::new(&p, 64, -1.0).is_err());
        assert!(OpticalModel::with_settings(&p, 64, 4.0, 0.0, 0).is_err());
        let model = OpticalModel::new(&p, 64, 4.0).unwrap();
        assert!(model.aerial_image(&MaskGrid::new(32, 4.0)).is_err());
    }

    #[test]
    fn clear_field_images_to_unit_intensity() {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, 64, 8.0).unwrap();
        let mut mask = MaskGrid::new(64, 8.0);
        mask.as_mut_slice().fill(1.0);
        let img = model.aerial_image(&mask).unwrap();
        for &v in img.as_slice() {
            assert!((v - 1.0).abs() < 1e-6, "clear field intensity {v}");
        }
    }

    #[test]
    fn dark_field_images_to_zero() {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, 64, 8.0).unwrap();
        let img = model.aerial_image(&MaskGrid::new(64, 8.0)).unwrap();
        assert!(img.max_intensity() < 1e-12);
    }

    #[test]
    fn contact_peak_is_centered_and_subunity() {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, 128, 8.0).unwrap();
        let mask = contact_mask(128, 8.0, 60.0);
        let img = model.aerial_image(&mask).unwrap();
        // A 60nm contact is well below the diffraction limit (~87nm), so
        // its image peaks below clear-field intensity.
        let peak = img.max_intensity();
        assert!(peak > 0.01 && peak < 1.0, "peak {peak}");
        // Peak location at the grid center (within a pixel).
        let mut best = (0usize, 0usize);
        let mut best_v = f64::MIN;
        for y in 0..128 {
            for x in 0..128 {
                if img.at(y, x) > best_v {
                    best_v = img.at(y, x);
                    best = (y, x);
                }
            }
        }
        assert!(best.0.abs_diff(64) <= 1 && best.1.abs_diff(64) <= 1, "{best:?}");
    }

    #[test]
    fn bigger_contact_prints_brighter() {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, 128, 8.0).unwrap();
        let small = model
            .aerial_image(&contact_mask(128, 8.0, 48.0))
            .unwrap()
            .max_intensity();
        let large = model
            .aerial_image(&contact_mask(128, 8.0, 80.0))
            .unwrap()
            .max_intensity();
        assert!(large > small);
    }

    #[test]
    fn neighboring_contact_adds_proximity_flare() {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, 128, 8.0).unwrap();
        let isolated = model.aerial_image(&contact_mask(128, 8.0, 60.0)).unwrap();
        let mut dense = contact_mask(128, 8.0, 60.0);
        // Neighbor at minimum pitch to the right.
        let c = 128.0 * 8.0 / 2.0;
        let h = 30.0;
        dense.fill_rect_nm(c + 120.0 - h, c - h, c + 120.0 + h, c + h, 1.0);
        let dense_img = model.aerial_image(&dense).unwrap();
        // Intensity at the center contact increases due to the neighbor.
        assert!(dense_img.at(64, 64) > isolated.at(64, 64));
    }

    #[test]
    fn defocus_reduces_peak_intensity() {
        let p = ProcessConfig::n10();
        let mask = contact_mask(128, 8.0, 60.0);
        let focus = OpticalModel::with_settings(&p, 128, 8.0, 0.0, 4).unwrap();
        let defocus = OpticalModel::with_settings(&p, 128, 8.0, 60.0, 4).unwrap();
        let i_focus = focus.aerial_image(&mask).unwrap().max_intensity();
        let i_defocus = defocus.aerial_image(&mask).unwrap().max_intensity();
        assert!(i_defocus < i_focus);
    }
}
