//! Property-based tests for the simulation substrate: imaging linearity
//! limits, resist monotonicity and contour/pattern consistency.

use proptest::prelude::*;

use litho_sim::{extract_contours, MaskGrid, OpticalModel, ProcessConfig, ResistModel};

const GRID: usize = 64;
const PITCH: f64 = 8.0;

fn centered_mask(contact_nm: f64) -> MaskGrid {
    let mut g = MaskGrid::new(GRID, PITCH);
    let c = GRID as f64 * PITCH / 2.0;
    let h = contact_nm / 2.0;
    g.fill_rect_nm(c - h, c - h, c + h, c + h, 1.0);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mask_area_matches_analytic(x0 in 50.0f64..300.0, y0 in 50.0f64..300.0, w in 5.0f64..150.0, h in 5.0f64..150.0) {
        let mut g = MaskGrid::new(GRID, PITCH);
        g.fill_rect_nm(x0, y0, x0 + w, y0 + h, 1.0);
        prop_assert!((g.transmitted_area_nm2() - w * h).abs() < 1e-6);
    }

    #[test]
    fn aerial_intensity_is_nonnegative_and_bounded(contact in 40.0f64..200.0) {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
        let img = model.aerial_image(&centered_mask(contact)).unwrap();
        prop_assert!(img.min_intensity() >= -1e-12);
        // Sub-clear-field for any finite feature (normalised to clear = 1,
        // with a small allowance for constructive proximity ripple).
        prop_assert!(img.max_intensity() <= 1.2, "peak {}", img.max_intensity());
    }

    #[test]
    fn peak_intensity_is_monotone_in_feature_size(a in 40.0f64..120.0, delta in 8.0f64..60.0) {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
        let small = model.aerial_image(&centered_mask(a)).unwrap().max_intensity();
        let large = model.aerial_image(&centered_mask(a + delta)).unwrap().max_intensity();
        prop_assert!(large > small, "{large} vs {small} at {a}+{delta}");
    }

    #[test]
    fn printed_area_is_monotone_in_dose(contact in 90.0f64..160.0, dose in 1.05f64..1.5) {
        // Scaling the mask transmission (dose) can only grow the print.
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
        let resist = ResistModel::new(p.resist);
        let nominal = model.aerial_image(&centered_mask(contact)).unwrap();
        let boosted_data: Vec<f64> = nominal.as_slice().iter().map(|&v| v * dose).collect();
        let boosted =
            litho_sim::AerialImage::from_raw(boosted_data, GRID, PITCH).unwrap();
        let area_nominal = resist.develop(&nominal).printed_area_nm2();
        let area_boosted = resist.develop(&boosted).printed_area_nm2();
        // The envelope term tracks dose, so growth is sub-linear but the
        // print must never shrink.
        prop_assert!(area_boosted >= area_nominal, "{area_boosted} < {area_nominal}");
    }

    #[test]
    fn contours_enclose_the_printed_area(contact in 95.0f64..180.0) {
        let p = ProcessConfig::n10();
        let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
        let resist = ResistModel::new(p.resist);
        let aerial = model.aerial_image(&centered_mask(contact)).unwrap();
        let pattern = resist.develop(&aerial);
        prop_assume!(pattern.printed_area_nm2() > 0.0);
        let excess = resist.excess_field(&aerial);
        let contours = extract_contours(&excess, GRID, PITCH, 0.0).unwrap();
        prop_assert!(!contours.is_empty());
        // The main contour's bbox encloses the pattern's bbox (within a
        // pixel of interpolation slack).
        let (py0, px0, py1, px1) = pattern.bounding_box().unwrap();
        let main = contours
            .iter()
            .max_by(|a, b| a.length_nm().partial_cmp(&b.length_nm()).unwrap())
            .unwrap();
        let (bx0, by0, bx1, by1) = main.bounding_box_nm().unwrap();
        prop_assert!(bx0 <= (px0 as f64 + 1.0) * PITCH);
        prop_assert!(by0 <= (py0 as f64 + 1.0) * PITCH);
        prop_assert!(bx1 >= (px1 as f64 - 1.0) * PITCH);
        prop_assert!(by1 >= (py1 as f64 - 1.0) * PITCH);
    }

    #[test]
    fn develop_is_deterministic(contact in 80.0f64..160.0) {
        let p = ProcessConfig::n7();
        let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
        let resist = ResistModel::new(p.resist);
        let aerial = model.aerial_image(&centered_mask(contact)).unwrap();
        prop_assert_eq!(resist.develop(&aerial), resist.develop(&aerial));
    }
}
