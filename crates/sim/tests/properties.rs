//! Property-style tests for the simulation substrate: imaging linearity
//! limits, resist monotonicity and contour/pattern consistency.
//! Deterministic seeded loops replace proptest so the suite runs offline.

use litho_sim::{extract_contours, MaskGrid, OpticalModel, ProcessConfig, ResistModel};
use litho_tensor::rng::{Rng, SeedableRng, StdRng};

const GRID: usize = 64;
const PITCH: f64 = 8.0;
const CASES: usize = 24;

fn centered_mask(contact_nm: f64) -> MaskGrid {
    let mut g = MaskGrid::new(GRID, PITCH);
    let c = GRID as f64 * PITCH / 2.0;
    let h = contact_nm / 2.0;
    g.fill_rect_nm(c - h, c - h, c + h, c + h, 1.0);
    g
}

#[test]
fn mask_area_matches_analytic() {
    let mut rng = StdRng::seed_from_u64(0x51A1_0001);
    for _ in 0..CASES {
        let x0 = rng.gen_range(50.0f64..300.0);
        let y0 = rng.gen_range(50.0f64..300.0);
        let w = rng.gen_range(5.0f64..150.0);
        let h = rng.gen_range(5.0f64..150.0);
        let mut g = MaskGrid::new(GRID, PITCH);
        g.fill_rect_nm(x0, y0, x0 + w, y0 + h, 1.0);
        assert!((g.transmitted_area_nm2() - w * h).abs() < 1e-6);
    }
}

#[test]
fn aerial_intensity_is_nonnegative_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x51A1_0002);
    let p = ProcessConfig::n10();
    let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
    for _ in 0..CASES {
        let contact = rng.gen_range(40.0f64..200.0);
        let img = model.aerial_image(&centered_mask(contact)).unwrap();
        assert!(img.min_intensity() >= -1e-12);
        // Sub-clear-field for any finite feature (normalised to clear = 1,
        // with a small allowance for constructive proximity ripple).
        assert!(img.max_intensity() <= 1.2, "peak {}", img.max_intensity());
    }
}

#[test]
fn peak_intensity_is_monotone_in_feature_size() {
    let mut rng = StdRng::seed_from_u64(0x51A1_0003);
    let p = ProcessConfig::n10();
    let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
    for _ in 0..CASES {
        let a = rng.gen_range(40.0f64..120.0);
        let delta = rng.gen_range(8.0f64..60.0);
        let small = model.aerial_image(&centered_mask(a)).unwrap().max_intensity();
        let large = model
            .aerial_image(&centered_mask(a + delta))
            .unwrap()
            .max_intensity();
        assert!(large > small, "{large} vs {small} at {a}+{delta}");
    }
}

#[test]
fn printed_area_is_monotone_in_dose() {
    // Scaling the mask transmission (dose) can only grow the print.
    let mut rng = StdRng::seed_from_u64(0x51A1_0004);
    let p = ProcessConfig::n10();
    let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
    let resist = ResistModel::new(p.resist);
    for _ in 0..CASES {
        let contact = rng.gen_range(90.0f64..160.0);
        let dose = rng.gen_range(1.05f64..1.5);
        let nominal = model.aerial_image(&centered_mask(contact)).unwrap();
        let boosted_data: Vec<f64> = nominal.as_slice().iter().map(|&v| v * dose).collect();
        let boosted = litho_sim::AerialImage::from_raw(boosted_data, GRID, PITCH).unwrap();
        let area_nominal = resist.develop(&nominal).printed_area_nm2();
        let area_boosted = resist.develop(&boosted).printed_area_nm2();
        // The envelope term tracks dose, so growth is sub-linear but the
        // print must never shrink.
        assert!(area_boosted >= area_nominal, "{area_boosted} < {area_nominal}");
    }
}

#[test]
fn contours_enclose_the_printed_area() {
    let mut rng = StdRng::seed_from_u64(0x51A1_0005);
    let p = ProcessConfig::n10();
    let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
    let resist = ResistModel::new(p.resist);
    let mut checked = 0;
    while checked < CASES {
        let contact = rng.gen_range(95.0f64..180.0);
        let aerial = model.aerial_image(&centered_mask(contact)).unwrap();
        let pattern = resist.develop(&aerial);
        if pattern.printed_area_nm2() <= 0.0 {
            continue;
        }
        checked += 1;
        let excess = resist.excess_field(&aerial);
        let contours = extract_contours(&excess, GRID, PITCH, 0.0).unwrap();
        assert!(!contours.is_empty());
        // The main contour's bbox encloses the pattern's bbox (within a
        // pixel of interpolation slack).
        let (py0, px0, py1, px1) = pattern.bounding_box().unwrap();
        let main = contours
            .iter()
            .max_by(|a, b| a.length_nm().partial_cmp(&b.length_nm()).unwrap())
            .unwrap();
        let (bx0, by0, bx1, by1) = main.bounding_box_nm().unwrap();
        assert!(bx0 <= (px0 as f64 + 1.0) * PITCH);
        assert!(by0 <= (py0 as f64 + 1.0) * PITCH);
        assert!(bx1 >= (px1 as f64 - 1.0) * PITCH);
        assert!(by1 >= (py1 as f64 - 1.0) * PITCH);
    }
}

#[test]
fn develop_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x51A1_0006);
    let p = ProcessConfig::n7();
    let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
    let resist = ResistModel::new(p.resist);
    for _ in 0..CASES {
        let contact = rng.gen_range(80.0f64..160.0);
        let aerial = model.aerial_image(&centered_mask(contact)).unwrap();
        assert_eq!(resist.develop(&aerial), resist.develop(&aerial));
    }
}

#[test]
fn aerial_image_identical_across_thread_counts() {
    // The per-kernel inverse FFTs run on the worker pool but the weighted
    // intensity reduction stays serial in kernel order, so the image must
    // be bit-identical at any pool width (1 is the inline serial path).
    let p = ProcessConfig::n10();
    let model = OpticalModel::new(&p, GRID, PITCH).unwrap();
    let mask = centered_mask(90.0);
    litho_tensor::pool::configure_threads(1);
    let reference = model.aerial_image(&mask).unwrap();
    for threads in [2usize, 8] {
        litho_tensor::pool::configure_threads(threads);
        let img = model.aerial_image(&mask).unwrap();
        assert_eq!(
            img.as_slice(),
            reference.as_slice(),
            "aerial image diverged at {threads} threads"
        );
    }
    litho_tensor::pool::configure_threads(0);
}
