//! Human and machine surfaces for alert state: the `alerts` CLI table,
//! the fleet-page HTML fragment, and the Prometheus exposition block
//! appended to the dash `/metrics` payload.

use std::fmt::Write as _;

use litho_ledger::fmt_unix;

use crate::config::AlertRule;
use crate::record::{AlertRecord, AlertState};

/// Renders the active-alert table shown by `lithogan_cli alerts`.
/// Deterministic given the records (timestamps come from them, not the
/// wall clock), so the output can be golden-tested.
pub fn render_alerts_table(active: &[AlertRecord]) -> String {
    let mut out = String::new();
    if active.is_empty() {
        out.push_str("no active alerts\n");
        return out;
    }
    let header = ["STATE", "SEV", "RULE", "SUBJECT", "SINCE (UTC)", "REASON"];
    let rows: Vec<[String; 6]> = active
        .iter()
        .map(|a| {
            [
                a.state.as_str().to_string(),
                a.severity.clone(),
                a.rule.clone(),
                a.subject.clone(),
                fmt_unix(a.first_seen_unix_s),
                a.reason.clone(),
            ]
        })
        .collect();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{h:<w$}  ", w = widths[i]);
    }
    out.truncate(out.trim_end().len());
    out.push('\n');
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{cell:<w$}  ", w = widths[i]);
        }
        out.truncate(out.trim_end().len());
        out.push('\n');
    }
    let firing = active.iter().filter(|a| a.state == AlertState::Firing).count();
    let pending = active.len() - firing;
    let _ = writeln!(out, "{firing} firing, {pending} pending");
    out
}

/// One-line transition notice, shared by `alerts` output and `watch`.
pub fn render_transition(rec: &AlertRecord) -> String {
    format!(
        "alert [{}] {} · {} — {}",
        rec.state.as_str(),
        rec.rule,
        rec.subject,
        rec.reason
    )
}

fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// The firing-alerts banner injected into the fleet HTML page. Empty
/// string when nothing is active, so the page stays clean.
pub fn alerts_html(active: &[AlertRecord]) -> String {
    if active.is_empty() {
        return String::new();
    }
    let firing = active.iter().filter(|a| a.state == AlertState::Firing).count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<div class=\"alerts\"><h2>alerts · {firing} firing, {} pending</h2><ul>",
        active.len() - firing
    );
    for a in active {
        let _ = writeln!(
            out,
            "<li class=\"alert-{}\"><b>{}</b> [{}] {} · {} — {}</li>",
            a.state.as_str(),
            escape_html(a.rule.as_str()),
            a.state.as_str(),
            escape_html(&a.severity),
            escape_html(&a.subject),
            escape_html(&a.reason),
        );
    }
    out.push_str("</ul></div>\n");
    out
}

fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Prometheus exposition for alert state, appended to the dash
/// `/metrics` payload after the fleet families. Every configured rule
/// exports a `lithogan_alerts_firing` sample (0 when quiet) so "rule
/// exists but never fired" and "rule missing" are distinguishable to
/// scrapers, plus per-state totals.
pub fn alerts_exposition(rules: &[AlertRule], active: &[AlertRecord]) -> String {
    let mut out = String::new();
    out.push_str(
        "# HELP lithogan_alerts_firing Whether the alert rule currently has a firing alert \
         (1 firing, 0 quiet).\n# TYPE lithogan_alerts_firing gauge\n",
    );
    for rule in rules {
        let firing = active
            .iter()
            .any(|a| a.rule == rule.name && a.state == AlertState::Firing);
        let _ = writeln!(
            out,
            "lithogan_alerts_firing{{rule=\"{}\",severity=\"{}\"}} {}",
            escape_label(&rule.name),
            escape_label(&rule.severity),
            firing as u32
        );
    }
    out.push_str(
        "# HELP lithogan_alerts_active Active alerts by state.\n\
         # TYPE lithogan_alerts_active gauge\n",
    );
    for state in [AlertState::Pending, AlertState::Firing] {
        let n = active.iter().filter(|a| a.state == state).count();
        let _ = writeln!(
            out,
            "lithogan_alerts_active{{state=\"{}\"}} {n}",
            state.as_str()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::default_rules;
    use crate::record::{fingerprint, ALERTS_SCHEMA};

    fn rec(rule: &str, subject: &str, state: AlertState) -> AlertRecord {
        AlertRecord {
            schema_version: ALERTS_SCHEMA,
            rule: rule.to_string(),
            kind: "health".to_string(),
            severity: "page".to_string(),
            state,
            fingerprint: fingerprint(rule, subject),
            subject: subject.to_string(),
            reason: "health verdict: nan-poisoned".to_string(),
            value: None,
            streak: 1,
            first_seen_unix_s: 1_700_000_100,
            last_seen_unix_s: 1_700_000_400,
        }
    }

    #[test]
    fn table_lists_alerts_and_counts() {
        let out = render_alerts_table(&[
            rec("unhealthy-run", "train-1700000100-1", AlertState::Firing),
            rec("ede-drift", "fleet/ede_mean_nm", AlertState::Pending),
        ]);
        assert!(out.starts_with("STATE"));
        assert!(out.contains("firing"));
        assert!(out.contains("train-1700000100-1"));
        assert!(out.contains("2023-11-14 22:15")); // fmt_unix of first_seen
        assert!(out.ends_with("1 firing, 1 pending\n"));
        assert_eq!(render_alerts_table(&[]), "no active alerts\n");
    }

    #[test]
    fn html_escapes_and_counts() {
        let mut a = rec("r<1>", "train&x", AlertState::Firing);
        a.reason = "\"quoted\"".to_string();
        let html = alerts_html(&[a]);
        assert!(html.contains("r&lt;1&gt;"));
        assert!(html.contains("train&amp;x"));
        assert!(html.contains("&quot;quoted&quot;"));
        assert!(html.contains("1 firing, 0 pending"));
        assert_eq!(alerts_html(&[]), "");
    }

    #[test]
    fn exposition_covers_every_rule() {
        let rules = default_rules();
        let active = [rec("unhealthy-run", "train-1700000100-1", AlertState::Firing)];
        let text = alerts_exposition(&rules, &active);
        assert!(text.contains("# TYPE lithogan_alerts_firing gauge"));
        assert!(text
            .contains("lithogan_alerts_firing{rule=\"unhealthy-run\",severity=\"page\"} 1"));
        assert!(text.contains("lithogan_alerts_firing{rule=\"ede-drift\",severity=\"warn\"} 0"));
        assert!(text.contains("lithogan_alerts_firing{rule=\"stale-run\",severity=\"warn\"} 0"));
        assert!(text.contains("lithogan_alerts_active{state=\"firing\"} 1"));
        assert!(text.contains("lithogan_alerts_active{state=\"pending\"} 0"));
    }
}
