//! Fleet alerting for the LithoGAN runs ledger.
//!
//! The observability stack can *show* everything — traces, health
//! verdicts, drift streaks, a Prometheus dash — but unattended fleets
//! need something that *acts* on it. `litho-alert` closes that gap
//! with three pieces, all std-only like the rest of the workspace:
//!
//! * [`config`]: declarative alert rules (threshold, direction-aware
//!   drift, health-verdict, stale-run) parsed from an `alerts.toml`
//!   subset by hand — see [`parse_rules`] and [`default_rules`].
//! * [`engine`]: one [`evaluate`] pass turns rules plus fleet state
//!   (the `runs/index.jsonl` records, run-directory activity, the
//!   clock) into stateful alerts — pending → firing → resolved, with
//!   first/last-seen stamps and a dedup [`fingerprint`].
//! * [`record`]: the append-only `runs/alerts.jsonl` store, with the
//!   same torn-tail-tolerant, last-wins replay semantics as the run
//!   index.
//!
//! Surfaces live in [`render`]: the CLI table, the fleet-page HTML
//! banner and the `lithogan_alerts_firing` Prometheus families.
//!
//! ```
//! use litho_alert::{default_rules, evaluate, EngineContext};
//! let outcome = evaluate(
//!     &default_rules(),
//!     &EngineContext { records: &[], runs_root: std::path::Path::new("/nonexistent"), now_unix_s: 0 },
//!     &[],
//! );
//! assert!(outcome.active.is_empty());
//! ```

mod config;
mod engine;
mod record;
mod render;

pub use config::{default_rules, parse_rules, AlertRule, Comparison, RuleKind};
pub use engine::{evaluate, evaluate_rule, EngineContext, EvalOutcome, Incident};
pub use record::{
    alerts_path, append_alerts, fingerprint, load_alerts, AlertRecord, AlertState, AlertsLoad,
    ALERTS_SCHEMA,
};
pub use render::{alerts_exposition, alerts_html, render_alerts_table, render_transition};

use std::io;
use std::path::Path;

/// Loads the rule set for a runs root: an explicit `--rules` path if
/// given (missing file is an error), else `<runs_root>/alerts.toml` if
/// present, else [`default_rules`]. Parse errors name the file.
pub fn load_rules(runs_root: &Path, explicit: Option<&Path>) -> io::Result<Vec<AlertRule>> {
    let path = match explicit {
        Some(p) => p.to_path_buf(),
        None => {
            let p = runs_root.join("alerts.toml");
            if !p.exists() {
                return Ok(default_rules());
            }
            p
        }
    };
    let text = std::fs::read_to_string(&path)?;
    parse_rules(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}
