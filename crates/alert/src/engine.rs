//! The alert engine: rules × fleet state → alert state transitions.
//!
//! One evaluation is pure given its inputs — the index records, the
//! runs root (for stale-run mtime scanning), the wall clock, and the
//! previously active alerts — so tests and goldens pin `now_unix_s`
//! and get byte-stable output. The engine owns the state machine:
//!
//! ```text
//!            condition holds,            condition holds,
//!            streak < for               streak >= for
//!   (none) ───────────────▶ pending ───────────────▶ firing
//!              │                │  condition clears     │
//!              └── streak>=for ─┴────────▶ resolved ◀───┘
//! ```
//!
//! Only *transitions* (plus streak advances while pending) are emitted
//! for appending to `runs/alerts.jsonl`; a steadily-firing alert costs
//! nothing per evaluation. A resolved fingerprint that trips again
//! starts a fresh alert with a new first-seen.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::UNIX_EPOCH;

use litho_ledger::{
    load_manifest, scan_run_dirs, slice_metric_key, split_slice_key, trend, IndexRecord,
};

use crate::config::{drift_config, AlertRule, Comparison, RuleKind};
use crate::record::{fingerprint, AlertRecord, AlertState, ALERTS_SCHEMA};

/// Everything one evaluation reads.
pub struct EngineContext<'a> {
    /// Chronological fleet index, as [`litho_ledger::load_index`] returns it.
    pub records: &'a [IndexRecord],
    /// The runs root, scanned by stale-run rules for file activity.
    pub runs_root: &'a Path,
    /// The evaluation wall clock; injected so goldens are deterministic.
    pub now_unix_s: u64,
}

/// One rule match within one evaluation, before state-machine merge.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    pub subject: String,
    pub reason: String,
    pub value: Option<f64>,
}

/// The result of one evaluation.
#[derive(Debug, Default, Clone)]
pub struct EvalOutcome {
    /// Records to append to `runs/alerts.jsonl`: new alerts, state
    /// changes, and streak advances of still-pending alerts.
    pub transitions: Vec<AlertRecord>,
    /// All alerts pending or firing after this evaluation, in
    /// first-seen order — what tables, `/api/alerts` and `/metrics`
    /// should show.
    pub active: Vec<AlertRecord>,
}

impl EvalOutcome {
    /// The subset of [`EvalOutcome::active`] that is firing.
    pub fn firing(&self) -> Vec<&AlertRecord> {
        self.active
            .iter()
            .filter(|a| a.state == AlertState::Firing)
            .collect()
    }
}

/// Runs every rule once and merges the matches into the persisted
/// alert state. `prior_active` is [`crate::AlertsLoad::active`] from
/// the previous evaluation (resolved alerts must not be included —
/// they are history, not state).
pub fn evaluate(rules: &[AlertRule], ctx: &EngineContext, prior_active: &[AlertRecord]) -> EvalOutcome {
    // Fingerprint -> incident + owning rule, for this evaluation.
    let mut matched: BTreeMap<String, (usize, Incident)> = BTreeMap::new();
    for (i, rule) in rules.iter().enumerate() {
        for incident in evaluate_rule(rule, ctx) {
            let fp = fingerprint(&rule.name, &incident.subject);
            // First writer wins; rule names are unique so a collision
            // here means the same rule matched the same subject twice.
            matched.entry(fp).or_insert((i, incident));
        }
    }

    let mut outcome = EvalOutcome::default();
    let mut seen_prior: Vec<&str> = Vec::new();

    // Advance or resolve every previously active alert.
    for prev in prior_active {
        seen_prior.push(&prev.fingerprint);
        match matched.remove(&prev.fingerprint) {
            Some((rule_idx, incident)) => {
                let rule = &rules[rule_idx];
                let streak = prev.streak + 1;
                let state = confirmed_state(streak, rule.for_evals);
                let next = AlertRecord {
                    state,
                    reason: incident.reason,
                    value: incident.value,
                    streak,
                    last_seen_unix_s: ctx.now_unix_s,
                    ..prev.clone()
                };
                // Pending streak advances are persisted (the streak is
                // state); a steadily-firing alert appends nothing.
                if state != prev.state || state == AlertState::Pending {
                    outcome.transitions.push(next.clone());
                }
                outcome.active.push(next);
            }
            None => {
                outcome.transitions.push(AlertRecord {
                    state: AlertState::Resolved,
                    reason: format!("condition cleared: {}", prev.reason),
                    last_seen_unix_s: ctx.now_unix_s,
                    ..prev.clone()
                });
            }
        }
    }

    // Whatever remains matched is new this evaluation.
    for (fp, (rule_idx, incident)) in matched {
        debug_assert!(!seen_prior.contains(&fp.as_str()));
        let rule = &rules[rule_idx];
        let state = confirmed_state(1, rule.for_evals);
        let rec = AlertRecord {
            schema_version: ALERTS_SCHEMA,
            rule: rule.name.clone(),
            kind: rule.kind.kind_str().to_string(),
            severity: rule.severity.clone(),
            state,
            fingerprint: fp,
            subject: incident.subject,
            reason: incident.reason,
            value: incident.value,
            streak: 1,
            first_seen_unix_s: ctx.now_unix_s,
            last_seen_unix_s: ctx.now_unix_s,
        };
        outcome.transitions.push(rec.clone());
        outcome.active.push(rec);
    }

    outcome.active.sort_by(|a, b| {
        (a.first_seen_unix_s, &a.rule, &a.subject).cmp(&(b.first_seen_unix_s, &b.rule, &b.subject))
    });
    outcome
}

fn confirmed_state(streak: u64, for_evals: u64) -> AlertState {
    if streak >= for_evals {
        AlertState::Firing
    } else {
        AlertState::Pending
    }
}

/// Applies a rule's `command` filter and `last` window to the index.
fn window<'a>(rule: &AlertRule, records: &'a [IndexRecord]) -> Vec<&'a IndexRecord> {
    let filtered: Vec<&IndexRecord> = records
        .iter()
        .filter(|r| rule.command.as_deref().is_none_or(|c| r.command == c))
        .collect();
    let start = rule.last.map_or(0, |n| filtered.len().saturating_sub(n));
    filtered[start..].to_vec()
}

/// Evaluates one rule against the fleet, yielding zero or more matches.
pub fn evaluate_rule(rule: &AlertRule, ctx: &EngineContext) -> Vec<Incident> {
    match &rule.kind {
        RuleKind::Threshold { metric, op, value } => {
            let recs = window(rule, ctx.records);
            // Latest run that recorded the metric: a threshold alert is
            // about the fleet's current state, not its history.
            let Some((rec, v)) = recs
                .iter()
                .rev()
                .find_map(|r| r.metric(metric).map(|v| (*r, v)))
            else {
                return Vec::new();
            };
            // NaN compares false against any bound, but a poisoned
            // metric is never "within bounds" — treat it as tripped.
            let tripped = !v.is_finite()
                || match op {
                    Comparison::Above => v > *value,
                    Comparison::Below => v < *value,
                };
            if !tripped {
                return Vec::new();
            }
            vec![Incident {
                subject: rec.run_id.clone(),
                reason: format!("{metric} = {v} {} threshold {value}", op.as_str()),
                value: Some(v),
            }]
        }
        RuleKind::Drift {
            metric,
            tol_pct,
            drift_runs,
        } => {
            let recs: Vec<IndexRecord> = window(rule, ctx.records).into_iter().cloned().collect();
            let t = trend(&recs, metric, None, &drift_config(*tol_pct, *drift_runs));
            let Some(drift) = t.drift else {
                return Vec::new();
            };
            vec![Incident {
                subject: format!("fleet/{metric}"),
                reason: format!(
                    "{metric} drifting for {} runs since {} (worst {}, median {})",
                    drift.runs,
                    drift.start_run_id,
                    fmt_val(drift.worst),
                    t.reference.map(fmt_val).unwrap_or_else(|| "-".into()),
                ),
                value: Some(drift.worst),
            }]
        }
        RuleKind::SliceDrift {
            metric,
            family,
            tol_pct,
            drift_runs,
        } => {
            let recs: Vec<IndexRecord> = window(rule, ctx.records).into_iter().cloned().collect();
            // Which families to watch: the configured one, or every
            // family the windowed index has recorded for this metric.
            let families: Vec<String> = match family {
                Some(f) => vec![f.clone()],
                None => {
                    let mut fams: Vec<String> = recs
                        .iter()
                        .flat_map(|r| r.metrics.iter().map(|(k, _)| k.as_str()))
                        .filter_map(split_slice_key)
                        .filter(|(base, _)| base == metric)
                        .map(|(_, fam)| fam.to_string())
                        .collect();
                    fams.sort();
                    fams.dedup();
                    fams
                }
            };
            let cfg = drift_config(*tol_pct, *drift_runs);
            let mut out = Vec::new();
            for fam in families {
                let key = slice_metric_key(metric, &fam);
                let t = trend(&recs, &key, None, &cfg);
                let Some(drift) = t.drift else {
                    continue;
                };
                out.push(Incident {
                    subject: format!("fleet/{metric}/family={fam}"),
                    reason: format!(
                        "{metric}[{fam}] drifting for {} runs since {} (worst {}, median {})",
                        drift.runs,
                        drift.start_run_id,
                        fmt_val(drift.worst),
                        t.reference.map(fmt_val).unwrap_or_else(|| "-".into()),
                    ),
                    value: Some(drift.worst),
                });
            }
            out
        }
        RuleKind::Health { diagnoses } => {
            let recs = window(rule, ctx.records);
            // Latest health-carrying run *per command*: a bad train run
            // keeps alerting until a newer healthy train run lands, and
            // an unhealthy eval doesn't mask it.
            let mut latest: BTreeMap<&str, (&IndexRecord, &str)> = BTreeMap::new();
            for r in &recs {
                if let Some(h) = r.health.as_deref() {
                    latest.insert(r.command.as_str(), (r, h));
                }
            }
            latest
                .values()
                .filter(|(_, verdict)| *verdict != "ok")
                .filter(|(_, verdict)| match diagnoses {
                    None => true,
                    Some(kinds) => verdict
                        .split(',')
                        .any(|d| kinds.iter().any(|k| k.as_str() == d.trim())),
                })
                .map(|(rec, verdict)| Incident {
                    subject: rec.run_id.clone(),
                    reason: format!("health verdict: {verdict} (status {})", rec.status),
                    value: None,
                })
                .collect()
        }
        RuleKind::Stale { after_s } => {
            let Ok(dirs) = scan_run_dirs(ctx.runs_root) else {
                return Vec::new();
            };
            let mut out = Vec::new();
            for dir in dirs {
                let Ok(manifest) = load_manifest(&dir) else {
                    continue;
                };
                if manifest.status != "running" {
                    continue;
                }
                if let Some(command) = rule.command.as_deref() {
                    if manifest.command != command {
                        continue;
                    }
                }
                let Some(last_activity) = last_activity_unix_s(&dir) else {
                    continue;
                };
                let idle = ctx.now_unix_s.saturating_sub(last_activity);
                if idle <= *after_s {
                    continue;
                }
                out.push(Incident {
                    subject: manifest.run_id.clone(),
                    reason: format!("running but no file activity for {idle}s (limit {after_s}s)"),
                    value: Some(idle as f64),
                });
            }
            out.sort_by(|a, b| a.subject.cmp(&b.subject));
            out
        }
    }
}

/// Newest mtime across the files a live run appends to.
fn last_activity_unix_s(run_dir: &Path) -> Option<u64> {
    ["manifest.json", "samples.jsonl", "trace.jsonl", "health.jsonl"]
        .iter()
        .filter_map(|f| std::fs::metadata(run_dir.join(f)).ok())
        .filter_map(|m| m.modified().ok())
        .filter_map(|t| t.duration_since(UNIX_EPOCH).ok())
        .map(|d| d.as_secs())
        .max()
}

fn fmt_val(v: f64) -> String {
    if !v.is_finite() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e9 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}
