//! Declarative alert rules and the serde-free `alerts.toml` parser.
//!
//! The config format is a deliberately small TOML subset, parsed by
//! hand the way the rest of the workspace hand-rolls JSON: `[[rule]]`
//! section headers, `key = value` pairs (quoted strings, numbers,
//! booleans), `#` comments, blank lines. Nothing else — no nested
//! tables, no arrays-of-values, no multi-line strings. Lists (e.g. the
//! health diagnoses filter) are comma-separated strings, matching the
//! CLI's `--abort-on nan,collapse` convention.
//!
//! ```toml
//! # Page when any command's latest run carries a bad health verdict.
//! [[rule]]
//! name = "unhealthy-run"
//! kind = "health"
//! severity = "page"
//!
//! [[rule]]
//! name = "ede-regression"
//! kind = "threshold"
//! metric = "ede_mean_nm"
//! op = "above"
//! value = 25.0
//! command = "train"
//! last = 20
//! for = 2
//! ```

use litho_health::DiagnosisKind;
use litho_ledger::TrendConfig;

/// Threshold direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    Above,
    Below,
}

impl Comparison {
    pub fn as_str(self) -> &'static str {
        match self {
            Comparison::Above => "above",
            Comparison::Below => "below",
        }
    }
}

/// What a rule evaluates. Every variant reads fleet state that already
/// exists — the index, health verdicts, the trend streak detector, run
/// directory mtimes — so rules never re-derive metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Latest matching run's `metric` compared against a fixed bound.
    Threshold {
        metric: String,
        op: Comparison,
        value: f64,
    },
    /// Direction-aware fleet drift via the `runs trend` streak detector.
    Drift {
        metric: String,
        tol_pct: Option<f64>,
        drift_runs: Option<usize>,
    },
    /// Per-family drift: runs the streak detector over every
    /// `metric{family=...}` slice key present in the window (or just the
    /// named family), one incident per drifting family. Catches a slice
    /// regressing while the fleet-wide aggregate stays flat.
    SliceDrift {
        metric: String,
        /// Restrict to one clip family; `None` watches every family the
        /// index has seen for this metric.
        family: Option<String>,
        tol_pct: Option<f64>,
        drift_runs: Option<usize>,
    },
    /// Latest run per command carries a non-ok health verdict. `None`
    /// diagnoses matches any verdict; otherwise at least one listed
    /// diagnosis must appear in it.
    Health { diagnoses: Option<Vec<DiagnosisKind>> },
    /// A `running` run whose files stopped moving `after_s` ago.
    Stale { after_s: u64 },
}

impl RuleKind {
    pub fn kind_str(&self) -> &'static str {
        match self {
            RuleKind::Threshold { .. } => "threshold",
            RuleKind::Drift { .. } => "drift",
            RuleKind::SliceDrift { .. } => "slice_drift",
            RuleKind::Health { .. } => "health",
            RuleKind::Stale { .. } => "stale",
        }
    }
}

/// One configured rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    pub name: String,
    /// `warn` or `page`; free-form label, carried onto records/metrics.
    pub severity: String,
    /// Restrict to runs of one command (`train`, `eval`, …).
    pub command: Option<String>,
    /// Evaluate only the last N index records (like `runs ls --last`).
    pub last: Option<usize>,
    /// Consecutive evaluations the condition must hold before the alert
    /// leaves `pending` for `firing`. 1 (the default) fires immediately.
    pub for_evals: u64,
    pub kind: RuleKind,
}

/// The default rule set used when no `alerts.toml` exists: page on any
/// unhealthy latest run, warn on fleet EDE drift (aggregate and
/// per-family), warn on stalled runs.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "unhealthy-run".to_string(),
            severity: "page".to_string(),
            command: None,
            last: None,
            for_evals: 1,
            kind: RuleKind::Health { diagnoses: None },
        },
        AlertRule {
            name: "ede-drift".to_string(),
            severity: "warn".to_string(),
            command: None,
            last: None,
            for_evals: 1,
            kind: RuleKind::Drift {
                metric: "ede_mean_nm".to_string(),
                tol_pct: None,
                drift_runs: None,
            },
        },
        AlertRule {
            name: "slice-ede-drift".to_string(),
            severity: "warn".to_string(),
            command: None,
            last: None,
            for_evals: 1,
            kind: RuleKind::SliceDrift {
                metric: "ede_mean_nm".to_string(),
                family: None,
                tol_pct: None,
                drift_runs: None,
            },
        },
        AlertRule {
            name: "stale-run".to_string(),
            severity: "warn".to_string(),
            command: None,
            last: None,
            for_evals: 1,
            kind: RuleKind::Stale { after_s: 900 },
        },
    ]
}

/// One parsed `key = value`.
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Num(f64),
    Bool(bool),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Num(_) => "number",
            TomlValue::Bool(_) => "boolean",
        }
    }
}

struct RawRule {
    line: usize,
    pairs: Vec<(String, TomlValue, usize)>,
}

impl RawRule {
    fn take(&mut self, key: &str) -> Option<(TomlValue, usize)> {
        let i = self.pairs.iter().position(|(k, _, _)| k == key)?;
        let (_, v, line) = self.pairs.remove(i);
        Some((v, line))
    }

    fn take_str(&mut self, key: &str) -> Result<Option<String>, String> {
        match self.take(key) {
            Some((TomlValue::Str(s), _)) => Ok(Some(s)),
            Some((v, line)) => Err(format!(
                "line {line}: `{key}` must be a string, got {}",
                v.type_name()
            )),
            None => Ok(None),
        }
    }

    fn take_num(&mut self, key: &str) -> Result<Option<f64>, String> {
        match self.take(key) {
            Some((TomlValue::Num(n), _)) => Ok(Some(n)),
            Some((v, line)) => Err(format!(
                "line {line}: `{key}` must be a number, got {}",
                v.type_name()
            )),
            None => Ok(None),
        }
    }

    fn take_count(&mut self, key: &str) -> Result<Option<u64>, String> {
        match self.take_num(key)? {
            Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(Some(n as u64)),
            Some(n) => Err(format!(
                "rule at line {}: `{key}` must be a non-negative integer, got {n}",
                self.line
            )),
            None => Ok(None),
        }
    }
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(raw: &str, lineno: usize) -> Result<TomlValue, String> {
    let raw = raw.trim();
    if let Some(inner) = raw.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("line {lineno}: unterminated string"))?;
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(format!(
                        "line {lineno}: unsupported escape \\{}",
                        other.map(String::from).unwrap_or_default()
                    ))
                }
            }
        }
        return Ok(TomlValue::Str(out));
    }
    match raw {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    raw.parse::<f64>()
        .map(TomlValue::Num)
        .map_err(|_| format!("line {lineno}: cannot parse value {raw:?} (quote strings)"))
}

/// Parses an `alerts.toml` document into rules. Errors carry line
/// numbers; unknown keys are errors too, so typos don't silently
/// disable a rule.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let mut raws: Vec<RawRule> = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[rule]]" {
            raws.push(RawRule {
                line: lineno,
                pairs: Vec::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: unsupported section {line:?} (only [[rule]] is recognized)"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`, got {line:?}"));
        };
        let Some(rule) = raws.last_mut() else {
            return Err(format!(
                "line {lineno}: `{}` appears before the first [[rule]] section",
                key.trim()
            ));
        };
        let key = key.trim().to_string();
        if rule.pairs.iter().any(|(k, _, _)| *k == key) {
            return Err(format!("line {lineno}: duplicate key `{key}`"));
        }
        let value = parse_value(value, lineno)?;
        rule.pairs.push((key, value, lineno));
    }

    let mut rules = Vec::with_capacity(raws.len());
    for mut raw in raws {
        let rule = finish_rule(&mut raw)?;
        if let Some((key, _, line)) = raw.pairs.first() {
            return Err(format!(
                "line {line}: unknown key `{key}` for {} rule",
                rule.kind.kind_str()
            ));
        }
        if rules.iter().any(|r: &AlertRule| r.name == rule.name) {
            return Err(format!(
                "rule at line {}: duplicate rule name {:?}",
                raw.line, rule.name
            ));
        }
        rules.push(rule);
    }
    Ok(rules)
}

fn finish_rule(raw: &mut RawRule) -> Result<AlertRule, String> {
    let at = raw.line;
    let kind_name = raw
        .take_str("kind")?
        .ok_or_else(|| format!("rule at line {at}: missing `kind`"))?;
    let name = raw
        .take_str("name")?
        .ok_or_else(|| format!("rule at line {at}: missing `name`"))?;
    let severity = raw.take_str("severity")?.unwrap_or_else(|| "warn".into());
    let command = raw.take_str("command")?;
    let last = raw.take_count("last")?.map(|n| n as usize);
    let for_evals = raw.take_count("for")?.unwrap_or(1).max(1);

    let kind = match kind_name.as_str() {
        "threshold" => {
            let metric = raw
                .take_str("metric")?
                .ok_or_else(|| format!("rule at line {at}: threshold rule needs `metric`"))?;
            let op = match raw.take_str("op")?.as_deref() {
                Some("above") | None => Comparison::Above,
                Some("below") => Comparison::Below,
                Some(other) => {
                    return Err(format!(
                        "rule at line {at}: `op` must be \"above\" or \"below\", got {other:?}"
                    ))
                }
            };
            let value = raw
                .take_num("value")?
                .ok_or_else(|| format!("rule at line {at}: threshold rule needs `value`"))?;
            RuleKind::Threshold { metric, op, value }
        }
        "drift" => RuleKind::Drift {
            metric: raw
                .take_str("metric")?
                .ok_or_else(|| format!("rule at line {at}: drift rule needs `metric`"))?,
            tol_pct: raw.take_num("tol_pct")?,
            drift_runs: raw.take_count("drift_runs")?.map(|n| n as usize),
        },
        "slice_drift" => RuleKind::SliceDrift {
            metric: raw
                .take_str("metric")?
                .ok_or_else(|| format!("rule at line {at}: slice_drift rule needs `metric`"))?,
            family: raw.take_str("family")?,
            tol_pct: raw.take_num("tol_pct")?,
            drift_runs: raw.take_count("drift_runs")?.map(|n| n as usize),
        },
        "health" => {
            let diagnoses = match raw.take_str("diagnoses")? {
                None => None,
                Some(list) if list == "any" => None,
                Some(list) => Some(
                    DiagnosisKind::parse_list(&list)
                        .map_err(|e| format!("rule at line {at}: {e}"))?,
                ),
            };
            RuleKind::Health { diagnoses }
        }
        "stale" => RuleKind::Stale {
            after_s: raw
                .take_count("after_s")?
                .ok_or_else(|| format!("rule at line {at}: stale rule needs `after_s`"))?,
        },
        other => {
            return Err(format!(
                "rule at line {at}: unknown kind {other:?} \
                 (expected threshold, drift, slice_drift, health or stale)"
            ))
        }
    };
    Ok(AlertRule {
        name,
        severity,
        command,
        last,
        for_evals,
        kind,
    })
}

/// The drift-detector tuning a drift rule resolves to.
pub(crate) fn drift_config(tol_pct: Option<f64>, drift_runs: Option<usize>) -> TrendConfig {
    let mut cfg = TrendConfig::default();
    if let Some(t) = tol_pct {
        cfg.tol_pct = t;
    }
    if let Some(n) = drift_runs {
        cfg.drift_runs = n;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_rule_kinds() {
        let text = r#"
# fleet alerting rules
[[rule]]
name = "ede-regression"   # trailing comment
kind = "threshold"
metric = "ede_mean_nm"
op = "above"
value = 25.0
command = "train"
last = 20
for = 2
severity = "page"

[[rule]]
name = "ede-drift"
kind = "drift"
metric = "ede_mean_nm"
tol_pct = 12.5
drift_runs = 3

[[rule]]
name = "chain-drift"
kind = "slice_drift"
metric = "ede_mean_nm"
family = "chain1d"
tol_pct = 8.0

[[rule]]
name = "nan-watch"
kind = "health"
diagnoses = "nan,collapse"

[[rule]]
name = "stuck"
kind = "stale"
after_s = 600
"#;
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 5);
        assert_eq!(rules[0].name, "ede-regression");
        assert_eq!(rules[0].severity, "page");
        assert_eq!(rules[0].command.as_deref(), Some("train"));
        assert_eq!(rules[0].last, Some(20));
        assert_eq!(rules[0].for_evals, 2);
        assert_eq!(
            rules[0].kind,
            RuleKind::Threshold {
                metric: "ede_mean_nm".into(),
                op: Comparison::Above,
                value: 25.0,
            }
        );
        assert_eq!(
            rules[1].kind,
            RuleKind::Drift {
                metric: "ede_mean_nm".into(),
                tol_pct: Some(12.5),
                drift_runs: Some(3),
            }
        );
        assert_eq!(
            rules[2].kind,
            RuleKind::SliceDrift {
                metric: "ede_mean_nm".into(),
                family: Some("chain1d".into()),
                tol_pct: Some(8.0),
                drift_runs: None,
            }
        );
        assert_eq!(
            rules[3].kind,
            RuleKind::Health {
                diagnoses: Some(vec![DiagnosisKind::NanPoisoned, DiagnosisKind::ModeCollapse]),
            }
        );
        assert_eq!(rules[4].kind, RuleKind::Stale { after_s: 600 });
        assert_eq!(rules[4].severity, "warn"); // default
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let text = "[[rule]]\nname = \"a#b\"\nkind = \"health\"\n";
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules[0].name, "a#b");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, &str)] = &[
            ("name = \"x\"\n", "before the first [[rule]]"),
            ("[[rule]]\nkind = \"health\"\n", "missing `name`"),
            ("[[rule]]\nname = \"x\"\n", "missing `kind`"),
            ("[[rule]]\nname = \"x\"\nkind = \"nope\"\n", "unknown kind"),
            ("[[rule]]\nname = \"x\"\nkind = \"health\"\nbogus = 1\n", "unknown key `bogus`"),
            ("[[rule]]\nname = \"x\"\nkind = \"stale\"\nafter_s = \"soon\"\n", "must be a number"),
            ("[[rule]]\nname = \"x\"\nkind = \"stale\"\nafter_s = 1.5\n", "non-negative integer"),
            ("[[rule]]\nname = \"x\"\nkind = \"health\"\nname = \"y\"\n", "duplicate key"),
            ("[table]\n", "unsupported section"),
            ("[[rule]]\nname = x\nkind = \"health\"\n", "quote strings"),
            (
                "[[rule]]\nname = \"x\"\nkind = \"health\"\n[[rule]]\nname = \"x\"\nkind = \"health\"\n",
                "duplicate rule name",
            ),
        ];
        for (text, needle) in cases {
            let err = parse_rules(text).unwrap_err();
            assert!(
                err.contains(needle),
                "config {text:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn default_rules_cover_health_drift_stale() {
        let kinds: Vec<&str> = default_rules().iter().map(|r| r.kind.kind_str()).collect();
        assert_eq!(kinds, vec!["health", "drift", "slice_drift", "stale"]);
    }

    #[test]
    fn slice_drift_without_family_watches_all_families() {
        let text = "[[rule]]\nname = \"s\"\nkind = \"slice_drift\"\nmetric = \"ede_mean_nm\"\n";
        let rules = parse_rules(text).unwrap();
        assert_eq!(
            rules[0].kind,
            RuleKind::SliceDrift {
                metric: "ede_mean_nm".into(),
                family: None,
                tol_pct: None,
                drift_runs: None,
            }
        );
        // Missing metric is an error, like plain drift.
        let err = parse_rules("[[rule]]\nname = \"s\"\nkind = \"slice_drift\"\n").unwrap_err();
        assert!(err.contains("slice_drift rule needs `metric`"), "{err}");
    }
}
