//! Stateful alert records and the append-only `runs/alerts.jsonl` store.
//!
//! Alert state follows the Prometheus/Alertmanager lifecycle: an alert
//! is *pending* while a rule's condition holds but the configured
//! `for` streak hasn't been reached, *firing* once confirmed, and
//! *resolved* when the condition clears. Records are deduplicated by a
//! *fingerprint* — an FNV-1a hash of `(rule name, subject)` — so the
//! same regression observed across many evaluations stays one alert.
//!
//! Persistence mirrors `runs/index.jsonl` exactly: the engine appends
//! one line per *state transition* with a single `O_APPEND` write (a
//! crashed writer can tear at most the final line), and readers replay
//! the log with last-wins-per-fingerprint semantics, skipping torn or
//! malformed lines. Steady state — an alert that keeps firing — appends
//! nothing, so the log stays proportional to state changes, not to
//! evaluation frequency.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use litho_json::jsonl::{parse_jsonl_with, JsonlParse};
use litho_json::{write_f64, write_str, Json};

/// Bumped whenever the alert record layout changes incompatibly.
pub const ALERTS_SCHEMA: u32 = 1;

/// Lifecycle state of one alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition holds but the `for` streak is not yet satisfied.
    Pending,
    /// Condition confirmed for the configured number of evaluations.
    Firing,
    /// Condition no longer holds.
    Resolved,
}

impl AlertState {
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    pub fn parse(s: &str) -> Option<AlertState> {
        match s {
            "pending" => Some(AlertState::Pending),
            "firing" => Some(AlertState::Firing),
            "resolved" => Some(AlertState::Resolved),
            _ => None,
        }
    }
}

/// One line of `runs/alerts.jsonl`: the state of one `(rule, subject)`
/// pair at the evaluation that changed it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRecord {
    pub schema_version: u32,
    /// Name of the rule that produced this alert.
    pub rule: String,
    /// Rule kind discriminator (`threshold`/`drift`/`slice_drift`/`health`/`stale`).
    pub kind: String,
    /// Severity copied from the rule (`warn`/`page`).
    pub severity: String,
    pub state: AlertState,
    /// FNV-1a hash of `(rule, subject)`, hex — the dedup key.
    pub fingerprint: String,
    /// What the alert is about: a run id, or `fleet/<metric>` for
    /// fleet-wide drift.
    pub subject: String,
    /// Human-readable explanation of the current condition.
    pub reason: String,
    /// The observed value that tripped the rule, when numeric.
    pub value: Option<f64>,
    /// Consecutive evaluations the condition has held.
    pub streak: u64,
    pub first_seen_unix_s: u64,
    pub last_seen_unix_s: u64,
}

impl AlertRecord {
    /// Renders as a compact JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema_version\":");
        let _ = write!(out, "{}", self.schema_version);
        push_str_field(&mut out, "rule", &self.rule);
        push_str_field(&mut out, "kind", &self.kind);
        push_str_field(&mut out, "severity", &self.severity);
        push_str_field(&mut out, "state", self.state.as_str());
        push_str_field(&mut out, "fingerprint", &self.fingerprint);
        push_str_field(&mut out, "subject", &self.subject);
        push_str_field(&mut out, "reason", &self.reason);
        out.push_str(",\"value\":");
        match self.value {
            Some(v) if v.is_finite() => write_f64(&mut out, v),
            // NaN tripped the rule: record null, the reader maps it back.
            Some(_) => out.push_str("null"),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"streak\":{},\"first_seen_unix_s\":{},\"last_seen_unix_s\":{}}}",
            self.streak, self.first_seen_unix_s, self.last_seen_unix_s
        );
        out
    }

    /// One JSONL line (trailing newline included).
    pub fn to_jsonl(&self) -> String {
        let mut line = self.to_json();
        line.push('\n');
        line
    }

    /// Decodes one parsed JSON object; `None` when required fields are
    /// missing or malformed (the caller skips the line).
    pub fn from_json(v: &Json) -> Option<AlertRecord> {
        Some(AlertRecord {
            schema_version: v.get("schema_version")?.as_u64()? as u32,
            rule: v.get("rule")?.as_str()?.to_string(),
            kind: v.get("kind")?.as_str()?.to_string(),
            severity: v.get("severity")?.as_str()?.to_string(),
            state: AlertState::parse(v.get("state")?.as_str()?)?,
            fingerprint: v.get("fingerprint")?.as_str()?.to_string(),
            subject: v.get("subject")?.as_str()?.to_string(),
            reason: v.get("reason")?.as_str()?.to_string(),
            value: v.get("value").and_then(Json::as_f64),
            streak: v.get("streak")?.as_u64()?,
            first_seen_unix_s: v.get("first_seen_unix_s")?.as_u64()?,
            last_seen_unix_s: v.get("last_seen_unix_s")?.as_u64()?,
        })
    }
}

fn push_str_field(out: &mut String, key: &str, v: &str) {
    out.push(',');
    write_str(out, key);
    out.push(':');
    write_str(out, v);
}

/// FNV-1a (64-bit) over `rule` and `subject`, hex-encoded — stable
/// across processes, cheap, and collision-safe at fleet scale.
pub fn fingerprint(rule: &str, subject: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in rule.bytes().chain([0u8]).chain(subject.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

/// `<runs_root>/alerts.jsonl`.
pub fn alerts_path(runs_root: &Path) -> PathBuf {
    runs_root.join("alerts.jsonl")
}

/// Appends transition records to `runs/alerts.jsonl` as one `O_APPEND`
/// write, creating the file (and the runs root) if needed. A no-op for
/// an empty slice — no file is touched.
pub fn append_alerts(runs_root: &Path, records: &[AlertRecord]) -> io::Result<()> {
    if records.is_empty() {
        return Ok(());
    }
    std::fs::create_dir_all(runs_root)?;
    let mut buf = String::with_capacity(records.len() * 256);
    for r in records {
        buf.push_str(&r.to_jsonl());
    }
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(alerts_path(runs_root))?;
    f.write_all(buf.as_bytes())?;
    Ok(())
}

/// The replayed alert log.
#[derive(Debug, Default, Clone)]
pub struct AlertsLoad {
    /// Last-written record per fingerprint, in first-seen order
    /// (ties broken by rule name). Includes resolved alerts.
    pub alerts: Vec<AlertRecord>,
    /// Malformed interior lines skipped during replay.
    pub skipped_lines: usize,
    /// True when the final line was torn (no trailing newline).
    pub truncated_tail: bool,
}

impl AlertsLoad {
    /// The alerts still pending or firing.
    pub fn active(&self) -> Vec<AlertRecord> {
        self.alerts
            .iter()
            .filter(|a| a.state != AlertState::Resolved)
            .cloned()
            .collect()
    }
}

/// Replays `runs/alerts.jsonl` with last-wins-per-fingerprint dedup.
/// A missing file is an empty log, torn/malformed lines are skipped.
pub fn load_alerts(runs_root: &Path) -> io::Result<AlertsLoad> {
    let path = alerts_path(runs_root);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(AlertsLoad::default()),
        Err(e) => return Err(e),
    };
    let JsonlParse {
        records,
        skipped_lines,
        truncated_tail,
    } = parse_jsonl_with(&text, AlertRecord::from_json);
    let mut alerts: Vec<AlertRecord> = Vec::new();
    for rec in records {
        match alerts.iter_mut().find(|a| a.fingerprint == rec.fingerprint) {
            Some(slot) => *slot = rec,
            None => alerts.push(rec),
        }
    }
    alerts.sort_by(|a, b| {
        (a.first_seen_unix_s, &a.rule, &a.subject).cmp(&(b.first_seen_unix_s, &b.rule, &b.subject))
    });
    Ok(AlertsLoad {
        alerts,
        skipped_lines,
        truncated_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rule: &str, subject: &str, state: AlertState, streak: u64) -> AlertRecord {
        AlertRecord {
            schema_version: ALERTS_SCHEMA,
            rule: rule.to_string(),
            kind: "health".to_string(),
            severity: "page".to_string(),
            state,
            fingerprint: fingerprint(rule, subject),
            subject: subject.to_string(),
            reason: "health verdict: nan-poisoned".to_string(),
            value: Some(12.5),
            streak,
            first_seen_unix_s: 1_700_000_100,
            last_seen_unix_s: 1_700_000_200,
        }
    }

    #[test]
    fn record_round_trips() {
        let rec = sample("unhealthy-run", "train-1700000100-1", AlertState::Firing, 3);
        let parsed = AlertRecord::from_json(&Json::parse(&rec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn nan_value_round_trips_as_null() {
        let mut rec = sample("t", "r", AlertState::Pending, 1);
        rec.value = Some(f64::NAN);
        let parsed = AlertRecord::from_json(&Json::parse(&rec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed.value, None);
    }

    #[test]
    fn fingerprint_is_stable_and_separates_fields() {
        assert_eq!(fingerprint("a", "b"), fingerprint("a", "b"));
        assert_ne!(fingerprint("a", "b"), fingerprint("b", "a"));
        // The separator byte keeps ("ab","") distinct from ("a","b").
        assert_ne!(fingerprint("ab", ""), fingerprint("a", "b"));
    }

    #[test]
    fn load_dedups_last_wins_and_survives_torn_tail() {
        let dir = std::env::temp_dir().join(format!("litho-alert-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        assert!(load_alerts(&dir).unwrap().alerts.is_empty());

        let pending = sample("unhealthy-run", "train-1", AlertState::Pending, 1);
        let firing = sample("unhealthy-run", "train-1", AlertState::Firing, 2);
        let other = sample("ede-drift", "fleet/ede_mean_nm", AlertState::Firing, 2);
        append_alerts(&dir, &[pending]).unwrap();
        append_alerts(&dir, &[firing.clone(), other.clone()]).unwrap();
        // Torn final line, as a crashed writer would leave it.
        use std::io::Write as _;
        let mut f = OpenOptions::new()
            .append(true)
            .open(alerts_path(&dir))
            .unwrap();
        f.write_all(b"{\"schema_version\":1,\"rule\":\"tor").unwrap();
        drop(f);

        let load = load_alerts(&dir).unwrap();
        assert!(load.truncated_tail);
        assert_eq!(load.alerts.len(), 2);
        // Same first-seen: ordered by rule name; last-wins per fingerprint.
        assert_eq!(load.alerts[0], other);
        assert_eq!(load.alerts[1], firing);
        assert_eq!(load.active().len(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }
}
