//! Engine state-machine tests: rules × synthetic fleet state across
//! multiple evaluations, including the persisted round-trip through
//! `runs/alerts.jsonl`.

use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, SystemTime};

use litho_alert::{
    append_alerts, evaluate, load_alerts, parse_rules, AlertRule, AlertState, Comparison,
    EngineContext, RuleKind, ALERTS_SCHEMA,
};
use litho_ledger::{IndexRecord, INDEX_SCHEMA};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "litho-alert-engine-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_rec(run_id: &str, command: &str, started: u64, metric: Option<f64>, health: Option<&str>) -> IndexRecord {
    IndexRecord {
        schema_version: INDEX_SCHEMA,
        run_id: run_id.to_string(),
        command: command.to_string(),
        started_unix_s: started,
        seed: Some(1),
        dataset_fingerprint: None,
        status: "ok".to_string(),
        wall_clock_s: Some(1.0),
        simd: None,
        metrics: metric.map(|v| vec![("ede_mean_nm".to_string(), v)]).unwrap_or_default(),
        health: health.map(str::to_string),
    }
}

fn threshold_rule(for_evals: u64) -> AlertRule {
    AlertRule {
        name: "ede-too-high".to_string(),
        severity: "page".to_string(),
        command: Some("train".to_string()),
        last: None,
        for_evals,
        kind: RuleKind::Threshold {
            metric: "ede_mean_nm".to_string(),
            op: Comparison::Above,
            value: 10.0,
        },
    }
}

#[test]
fn threshold_pending_firing_resolved_lifecycle() {
    let root = scratch("lifecycle");
    let rules = vec![threshold_rule(2)];
    let bad = [run_rec("train-100-1", "train", 100, Some(42.0), None)];
    let good = [run_rec("train-200-1", "train", 200, Some(5.0), None)];

    // Eval 1: condition holds, for=2 → pending.
    let ctx = |records, now| EngineContext { records, runs_root: &root, now_unix_s: now };
    let e1 = evaluate(&rules, &ctx(&bad, 1000), &[]);
    assert_eq!(e1.active.len(), 1);
    assert_eq!(e1.active[0].state, AlertState::Pending);
    assert_eq!(e1.active[0].streak, 1);
    assert_eq!(e1.active[0].first_seen_unix_s, 1000);
    assert_eq!(e1.transitions.len(), 1);
    append_alerts(&root, &e1.transitions).unwrap();

    // Eval 2: still bad → firing, first-seen preserved.
    let prior = load_alerts(&root).unwrap().active();
    let e2 = evaluate(&rules, &ctx(&bad, 2000), &prior);
    assert_eq!(e2.active[0].state, AlertState::Firing);
    assert_eq!(e2.active[0].streak, 2);
    assert_eq!(e2.active[0].first_seen_unix_s, 1000);
    assert_eq!(e2.active[0].last_seen_unix_s, 2000);
    assert_eq!(e2.firing().len(), 1);
    append_alerts(&root, &e2.transitions).unwrap();

    // Eval 3: still bad, still firing → steady state, nothing appended.
    let prior = load_alerts(&root).unwrap().active();
    let e3 = evaluate(&rules, &ctx(&bad, 3000), &prior);
    assert_eq!(e3.active[0].state, AlertState::Firing);
    assert!(e3.transitions.is_empty());

    // Eval 4: a healthy newer run → resolved, cleared from active.
    let both = [bad[0].clone(), good[0].clone()];
    let e4 = evaluate(&rules, &ctx(&both, 4000), &prior);
    assert!(e4.active.is_empty());
    assert_eq!(e4.transitions.len(), 1);
    assert_eq!(e4.transitions[0].state, AlertState::Resolved);
    assert!(e4.transitions[0].reason.contains("condition cleared"));
    append_alerts(&root, &e4.transitions).unwrap();

    // The log replays to one resolved alert; a fresh trip restarts it.
    let load = load_alerts(&root).unwrap();
    assert_eq!(load.alerts.len(), 1);
    assert_eq!(load.alerts[0].state, AlertState::Resolved);
    assert!(load.active().is_empty());
    let e5 = evaluate(&rules, &ctx(&bad, 5000), &load.active());
    assert_eq!(e5.active[0].state, AlertState::Pending);
    assert_eq!(e5.active[0].first_seen_unix_s, 5000);

    fs::remove_dir_all(&root).ok();
}

#[test]
fn health_rule_matches_latest_run_per_command() {
    let root = scratch("health");
    let rules = parse_rules(
        "[[rule]]\nname = \"unhealthy\"\nkind = \"health\"\ndiagnoses = \"nan\"\nseverity = \"page\"\n",
    )
    .unwrap();
    let records = [
        run_rec("train-100-1", "train", 100, Some(5.0), Some("nan-poisoned")),
        run_rec("eval-150-1", "eval", 150, None, Some("ok")),
    ];
    let ctx = EngineContext { records: &records, runs_root: &root, now_unix_s: 1000 };
    let out = evaluate(&rules, &ctx, &[]);
    assert_eq!(out.active.len(), 1);
    assert_eq!(out.active[0].subject, "train-100-1");
    assert_eq!(out.active[0].state, AlertState::Firing); // default for=1
    assert!(out.active[0].reason.contains("nan-poisoned"));

    // A newer healthy train run supersedes the poisoned one.
    let healed = [
        records[0].clone(),
        records[1].clone(),
        run_rec("train-200-1", "train", 200, Some(5.0), Some("ok")),
    ];
    let ctx2 = EngineContext { records: &healed, runs_root: &root, now_unix_s: 2000 };
    let out2 = evaluate(&rules, &ctx2, &out.active);
    assert!(out2.active.is_empty());
    assert_eq!(out2.transitions[0].state, AlertState::Resolved);

    // Diagnosis filter: a mode-collapse verdict doesn't match "nan".
    let collapsed = [run_rec("train-300-1", "train", 300, None, Some("mode-collapse"))];
    let ctx3 = EngineContext { records: &collapsed, runs_root: &root, now_unix_s: 3000 };
    assert!(evaluate(&rules, &ctx3, &[]).active.is_empty());

    fs::remove_dir_all(&root).ok();
}

#[test]
fn drift_rule_rides_the_trend_streak_detector() {
    let root = scratch("drift");
    let rules = parse_rules(
        "[[rule]]\nname = \"ede-drift\"\nkind = \"drift\"\nmetric = \"ede_mean_nm\"\ndrift_runs = 2\n",
    )
    .unwrap();
    // Stable fleet at 10, then two runs 50% off-median: a confirmed drift.
    let records: Vec<IndexRecord> = [10.0, 10.0, 10.0, 10.0, 15.0, 15.0]
        .iter()
        .enumerate()
        .map(|(i, v)| run_rec(&format!("train-{i}-1"), "train", 100 + i as u64, Some(*v), None))
        .collect();
    let ctx = EngineContext { records: &records, runs_root: &root, now_unix_s: 1000 };
    let out = evaluate(&rules, &ctx, &[]);
    assert_eq!(out.active.len(), 1);
    assert_eq!(out.active[0].subject, "fleet/ede_mean_nm");
    assert_eq!(out.active[0].state, AlertState::Firing);
    assert!(out.active[0].reason.contains("drifting for 2 runs"), "{}", out.active[0].reason);
    assert_eq!(out.active[0].value, Some(15.0));

    fs::remove_dir_all(&root).ok();
}

#[test]
fn slice_drift_fires_per_family_while_aggregate_stays_flat() {
    let root = scratch("slice-drift");
    let rules = parse_rules(
        "[[rule]]\nname = \"slice-drift\"\nkind = \"slice_drift\"\nmetric = \"ede_mean_nm\"\ndrift_runs = 2\n",
    )
    .unwrap();
    // The chain1d slice walks 50% off-median while the aggregate and the
    // isolated slice sit still — exactly the regression an aggregate
    // drift rule cannot see.
    let chain = [4.0, 4.0, 4.0, 4.0, 6.0, 6.0];
    let records: Vec<IndexRecord> = chain
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let mut r = run_rec(&format!("train-{i}-1"), "train", 100 + i as u64, Some(10.0), None);
            r.metrics.push(("ede_mean_nm{family=chain1d}".to_string(), *v));
            r.metrics.push(("ede_mean_nm{family=isolated}".to_string(), 2.0));
            r
        })
        .collect();
    let ctx = EngineContext { records: &records, runs_root: &root, now_unix_s: 1000 };
    let out = evaluate(&rules, &ctx, &[]);
    assert_eq!(out.active.len(), 1, "only the drifting family should fire");
    assert_eq!(out.active[0].subject, "fleet/ede_mean_nm/family=chain1d");
    assert_eq!(out.active[0].state, AlertState::Firing);
    assert!(
        out.active[0].reason.contains("ede_mean_nm[chain1d] drifting for 2 runs"),
        "{}",
        out.active[0].reason
    );
    assert_eq!(out.active[0].value, Some(6.0));

    // Pinning `family` to a quiet slice keeps the rule silent even
    // though another family is drifting.
    let pinned = parse_rules(
        "[[rule]]\nname = \"iso-drift\"\nkind = \"slice_drift\"\nmetric = \"ede_mean_nm\"\nfamily = \"isolated\"\ndrift_runs = 2\n",
    )
    .unwrap();
    assert!(evaluate(&pinned, &ctx, &[]).active.is_empty());

    fs::remove_dir_all(&root).ok();
}

#[test]
fn last_window_scopes_threshold_rules() {
    let root = scratch("window");
    // Latest train run is bad, but scoping to the last 1 eval-command
    // run hides it; with the window the old regression is invisible.
    let mut rule = threshold_rule(1);
    rule.last = Some(1);
    let records = [
        run_rec("train-100-1", "train", 100, Some(42.0), None),
        run_rec("train-200-1", "train", 200, Some(5.0), None),
    ];
    let ctx = EngineContext { records: &records, runs_root: &root, now_unix_s: 1000 };
    assert!(evaluate(&[rule.clone()], &ctx, &[]).active.is_empty());
    // Without the window the latest metric still decides: quiet too.
    rule.last = None;
    assert!(evaluate(&[rule], &ctx, &[]).active.is_empty());
    fs::remove_dir_all(&root).ok();
}

fn write_running_manifest(dir: &Path, run_id: &str) {
    fs::create_dir_all(dir).unwrap();
    fs::write(
        dir.join("manifest.json"),
        format!(
            "{{\"schema_version\":2,\"run_id\":\"{run_id}\",\"command\":\"train\",\
             \"started_unix_s\":100,\"status\":\"running\",\"args\":[],\"config\":{{}},\
             \"metrics\":{{}},\"artifacts\":[]}}"
        ),
    )
    .unwrap();
}

#[test]
fn stale_rule_flags_idle_running_runs() {
    let root = scratch("stale");
    let rules = parse_rules(
        "[[rule]]\nname = \"stuck\"\nkind = \"stale\"\nafter_s = 60\n",
    )
    .unwrap();
    let dir = root.join("train-100-1");
    write_running_manifest(&dir, "train-100-1");

    // Backdate every run file two minutes: well past the 60s budget.
    let old = SystemTime::now() - Duration::from_secs(120);
    let f = File::options().write(true).open(dir.join("manifest.json")).unwrap();
    f.set_times(fs::FileTimes::new().set_modified(old)).unwrap();
    drop(f);

    let now = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap()
        .as_secs();
    let ctx = EngineContext { records: &[], runs_root: &root, now_unix_s: now };
    let out = evaluate(&rules, &ctx, &[]);
    assert_eq!(out.active.len(), 1);
    assert_eq!(out.active[0].subject, "train-100-1");
    assert!(out.active[0].reason.contains("no file activity"));

    // Fresh activity clears it.
    let f = File::options().write(true).open(dir.join("manifest.json")).unwrap();
    f.set_times(fs::FileTimes::new().set_modified(SystemTime::now())).unwrap();
    drop(f);
    let out2 = evaluate(&rules, &ctx, &out.active);
    assert!(out2.active.is_empty());
    assert_eq!(out2.transitions[0].state, AlertState::Resolved);

    fs::remove_dir_all(&root).ok();
}

#[test]
fn schema_version_rides_every_record() {
    let root = scratch("schema");
    let rules = vec![threshold_rule(1)];
    let bad = [run_rec("train-100-1", "train", 100, Some(42.0), None)];
    let ctx = EngineContext { records: &bad, runs_root: &root, now_unix_s: 1000 };
    let out = evaluate(&rules, &ctx, &[]);
    assert!(out.transitions.iter().all(|t| t.schema_version == ALERTS_SCHEMA));
    fs::remove_dir_all(&root).ok();
}
