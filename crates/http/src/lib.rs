//! A std-only HTTP/1.1 server for long-running observability daemons.
//!
//! `lithogan_cli dash` (and, later, `serve`) need a TCP front end that
//! the hermetic build can carry: no async runtime, no external crates,
//! just `std::net`. The design mirrors the `litho_tensor::pool` worker
//! pool in miniature:
//!
//! * [`Server::bind`] opens a [`std::net::TcpListener`];
//! * [`Server::serve`] runs a blocking accept loop that feeds accepted
//!   connections into a small fixed pool of worker threads over a
//!   `Mutex<VecDeque>` + `Condvar` queue (bounded: when the queue is
//!   deeper than [`MAX_QUEUED`] the connection is answered `503`
//!   inline rather than queued without limit);
//! * each worker parses one request ([`Request`]), calls the handler,
//!   and writes a fixed-length `Connection: close` response
//!   ([`Response`]) — no chunked encoding, no keep-alive, so a response
//!   is always one well-formed write;
//! * [`ShutdownHandle::shutdown`] stores an atomic flag and then
//!   connects to the listener itself, waking the blocked `accept` so
//!   the loop observes the flag, drains the queue and joins the
//!   workers — a clean exit without signals-in-the-accept-path tricks.
//!
//! Parsing is deliberately strict and small: request line + headers
//! capped at [`MAX_HEAD_BYTES`], bodies at [`MAX_BODY_BYTES`], anything
//! malformed is a `400`. The server never interprets paths — routing
//! belongs to the handler.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Cap on request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a declared request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Connections queued beyond this are refused with `503`.
pub const MAX_QUEUED: usize = 64;
/// Per-connection socket read/write timeout, so a stalled client can
/// never pin a worker forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Uppercase method as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string, percent-encoding untouched.
    pub path: String,
    /// Decoded `k=v` query pairs, in order; flags without `=` carry an
    /// empty value.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A fixed-length response; the server adds `Content-Length` and
/// `Connection: close` when writing.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub content_type: String,
    /// Extra headers beyond content type/length.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: content_type.to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response with an arbitrary status.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// `404 Not Found` with a short plain-text body.
    pub fn not_found(what: &str) -> Response {
        Response::text(404, format!("not found: {what}\n"))
    }

    /// `400 Bad Request`.
    pub fn bad_request(why: &str) -> Response {
        Response::text(400, format!("bad request: {why}\n"))
    }

    /// `405 Method Not Allowed`.
    pub fn method_not_allowed() -> Response {
        Response::text(405, "method not allowed\n")
    }

    const fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        }
    }

    /// Serializes status line, headers and body as one buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Errors surfaced to the client as a status code during parsing.
#[derive(Debug, PartialEq)]
enum ParseError {
    /// Malformed request line/headers/body framing.
    Bad(&'static str),
    /// Head grew past [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The connection closed before a full request arrived (no response
    /// owed — this is also the silent path for shutdown wakeup probes).
    Disconnected,
    Io(io::ErrorKind),
}

fn decode_percent(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (decode_percent(k), decode_percent(v)),
            None => (decode_percent(pair), String::new()),
        })
        .collect()
}

/// Reads one request off a stream. Splits head from body at the first
/// blank line, honoring `Content-Length` (chunked uploads are rejected —
/// this server never needs them).
fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            if pos > MAX_HEAD_BYTES {
                return Err(ParseError::HeadTooLarge);
            }
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk).map_err(|e| ParseError::Io(e.kind()))?;
        if n == 0 {
            return if buf.is_empty() {
                Err(ParseError::Disconnected)
            } else {
                Err(ParseError::Bad("truncated request head"))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::Bad("non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Bad("malformed request line"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad("malformed request line"));
    }
    if method.is_empty() || target.is_empty() {
        return Err(ParseError::Bad("malformed request line"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad("malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| ParseError::Bad("unparsable content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::Bad("body too large"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| ParseError::Io(e.kind()))?;
        if n == 0 {
            return Err(ParseError::Bad("truncated body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The handler the server dispatches every parsed request to.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// Remote control for a running [`Server::serve`] loop. Clone-cheap;
/// usable from any thread (including a request handler answering a
/// shutdown route).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: sets the flag, then connects to the listener
    /// so a blocked `accept` wakes up and observes it. Idempotent.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
        // The probe connection is closed immediately without sending
        // anything; the worker that picks it up sees a clean disconnect.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// True once [`Self::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Connection queue shared between the accept loop and the workers.
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    closed: AtomicBool,
}

impl ConnQueue {
    fn push(&self, stream: TcpStream) {
        self.queue.lock().unwrap().push_back(stream);
        self.ready.notify_one();
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut guard = self.queue.lock().unwrap();
        loop {
            if let Some(stream) = guard.pop_front() {
                return Some(stream);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            guard = self.ready.wait(guard).unwrap();
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }
}

/// A bound listener plus its shutdown flag. The accept loop itself runs
/// in [`Server::serve`] on the calling thread.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    flag: Arc<AtomicBool>,
    workers: usize,
    /// Requests fully served (a response was written), across workers.
    served: Arc<AtomicU64>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates resolution/bind errors.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            flag: Arc::new(AtomicBool::new(false)),
            workers: worker_count(),
            served: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The actually-bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests fully served so far.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// A handle that can stop [`Self::serve`] from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.flag),
            addr: self.addr,
        }
    }

    /// Runs the accept loop until the shutdown handle fires: accepted
    /// connections go to a fixed pool of worker threads; on shutdown the
    /// queue is drained, the workers joined, and the call returns.
    ///
    /// # Errors
    ///
    /// Propagates accept errors other than the transient kinds
    /// (`Interrupted`, `ConnectionAborted`, `WouldBlock`).
    pub fn serve(&self, handler: Arc<Handler>) -> io::Result<()> {
        let queue = Arc::new(ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        let mut workers = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let served = Arc::clone(&self.served);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("litho-http-{i}"))
                    .spawn(move || {
                        while let Some(mut stream) = queue.pop() {
                            handle_connection(&mut stream, handler.as_ref(), &served);
                        }
                    })
                    .expect("spawn litho-http worker"),
            );
        }
        let result = loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.flag.load(Ordering::Acquire) {
                        // The wakeup probe itself (or a straggler racing
                        // it); drop it and stop accepting.
                        break Ok(());
                    }
                    let depth = queue.queue.lock().unwrap().len();
                    if depth >= MAX_QUEUED {
                        refuse_overloaded(stream);
                        continue;
                    }
                    queue.push(stream);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::WouldBlock
                    ) =>
                {
                    if self.flag.load(Ordering::Acquire) {
                        break Ok(());
                    }
                }
                Err(e) => break Err(e),
            }
            if self.flag.load(Ordering::Acquire) {
                break Ok(());
            }
        };
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        result
    }
}

/// Worker-thread count: enough to overlap slow renders with fast metric
/// scrapes, bounded so a dash never competes with the compute pool.
fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 8)
}

fn refuse_overloaded(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.write_all(&Response::text(503, "overloaded\n").to_bytes());
}

fn handle_connection(stream: &mut TcpStream, handler: &Handler, served: &AtomicU64) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match read_request(stream) {
        Ok(request) => handler(&request),
        // Nothing arrived (client closed, or the shutdown wakeup probe):
        // nothing is owed.
        Err(ParseError::Disconnected) => return,
        Err(ParseError::HeadTooLarge) => Response::text(431, "request head too large\n"),
        Err(ParseError::Bad(why)) => Response::bad_request(why),
        Err(ParseError::Io(_)) => return,
    };
    if stream.write_all(&response.to_bytes()).is_ok() {
        served.fetch_add(1, Ordering::Relaxed);
    }
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        request(addr, "GET", target, &[], b"")
    }

    fn request(
        addr: SocketAddr,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: test\r\n");
        for (k, v) in headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn echo_server() -> (Arc<Server>, ShutdownHandle, std::thread::JoinHandle<io::Result<()>>) {
        let server = Arc::new(Server::bind("127.0.0.1:0").unwrap());
        let handle = server.shutdown_handle();
        let serving = Arc::clone(&server);
        let join = std::thread::spawn(move || {
            serving.serve(Arc::new(|req: &Request| match req.path.as_str() {
                "/echo" => Response::ok(
                    "text/plain",
                    format!(
                        "{} q={} body={}",
                        req.method,
                        req.query_param("q").unwrap_or("-"),
                        String::from_utf8_lossy(&req.body)
                    ),
                ),
                "/slow" => {
                    std::thread::sleep(Duration::from_millis(30));
                    Response::ok("text/plain", "slow done")
                }
                other => Response::not_found(other),
            }))
        });
        (server, handle, join)
    }

    #[test]
    fn parses_request_line_query_headers_and_body() {
        let (server, handle, join) = echo_server();
        let addr = server.local_addr();
        let (status, body) = request(
            addr,
            "POST",
            "/echo?q=a%20b&flag",
            &[("X-Extra", "1")],
            b"hello",
        );
        assert_eq!(status, 200);
        assert_eq!(body, "POST q=a b body=hello");
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        handle.shutdown();
        join.join().unwrap().unwrap();
        assert!(server.requests_served() >= 2);
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let (server, handle, join) = echo_server();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "raw: {raw}");

        // Oversized head: 431.
        let mut stream = TcpStream::connect(addr).unwrap();
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES + 1024)
        );
        stream.write_all(huge.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 431"), "raw: {raw}");

        // A connect-then-close probe is ignored silently.
        drop(TcpStream::connect(addr).unwrap());
        let (status, _) = get(addr, "/echo");
        assert_eq!(status, 200);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_clients_all_complete() {
        let (server, handle, join) = echo_server();
        let addr = server.local_addr();
        let clients: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let path = if i % 4 == 0 { "/slow" } else { "/echo?q=x" };
                    let (status, _) = get(addr, path);
                    status
                })
            })
            .collect();
        for c in clients {
            assert_eq!(c.join().unwrap(), 200);
        }
        handle.shutdown();
        join.join().unwrap().unwrap();
        assert_eq!(server.requests_served(), 16);
    }

    #[test]
    fn shutdown_unblocks_accept_and_is_idempotent() {
        let (server, handle, join) = echo_server();
        assert!(!handle.is_shutdown());
        handle.shutdown();
        handle.shutdown();
        assert!(handle.is_shutdown());
        join.join().unwrap().unwrap();
        // A handler-thread shutdown (the /shutdown route case) must not
        // deadlock either: the response is written by a worker while the
        // accept loop exits.
        let server2 = Arc::new(Server::bind("127.0.0.1:0").unwrap());
        let handle2 = server2.shutdown_handle();
        let addr = server2.local_addr();
        let route_handle = handle2.clone();
        let serving = Arc::clone(&server2);
        let join = std::thread::spawn(move || {
            serving.serve(Arc::new(move |req: &Request| {
                if req.path == "/shutdown" {
                    route_handle.shutdown();
                    Response::ok("text/plain", "shutting down\n")
                } else {
                    Response::not_found(&req.path)
                }
            }))
        });
        let (status, body) = get(addr, "/shutdown");
        assert_eq!(status, 200);
        assert_eq!(body, "shutting down\n");
        join.join().unwrap().unwrap();
        let _ = server;
    }

    #[test]
    fn percent_decoding_and_query_edge_cases() {
        assert_eq!(decode_percent("a%2Fb+c%ZZ"), "a/b c%ZZ");
        let q = parse_query("a=1&b&&c=x%20y");
        assert_eq!(
            q,
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), String::new()),
                ("c".to_string(), "x y".to_string()),
            ]
        );
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let r = Response::ok("application/json", "{}".as_bytes().to_vec());
        let text = String::from_utf8(r.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
