//! Synthetic N10/N7 paired datasets for end-to-end lithography modeling.
//!
//! Reproduces the data-preparation pipeline of the paper's §3.1 on top of
//! the [`litho-layout`] (SRAF + OPC) and [`litho-sim`] (golden rigorous
//! simulation) substrates:
//!
//! 1. generate a 2 × 2 µm contact clip (one of three array families) with
//!    the target contact at the centre;
//! 2. insert SRAFs and run model-based OPC;
//! 3. crop to the central 1 × 1 µm and rasterise to an RGB image — green
//!    target / red neighbors / blue SRAFs;
//! 4. run the rigorous simulator on the full clip, isolate the centre
//!    contact's printed component, and cut a 128 × 128 nm golden window
//!    scaled to the network resolution;
//! 5. record the golden pattern's bounding-box centre and a re-centred
//!    copy (the CGAN trains on re-centred targets; the centre coordinates
//!    train the CNN — the paper's dual-learning split).
//!
//! The paper's datasets hold 982 (N10) and 979 (N7) clips with a 75/25
//! train/test split; [`DatasetConfig::n10_paper`] and
//! [`DatasetConfig::n7_paper`] reproduce those cardinalities, and
//! [`DatasetConfig::scaled`] builds CPU-budget variants.
//!
//! [`litho-layout`]: https://docs.rs/litho-layout
//! [`litho-sim`]: https://docs.rs/litho-sim

mod builder;
mod config;
mod io;
mod sample;
mod window;

pub use builder::{generate, GenerationStats};
pub use config::DatasetConfig;
pub use io::{load_dataset, save_dataset};
pub use sample::{Dataset, Sample};
pub use window::{field_window, golden_window, keep_central_component};

pub use litho_tensor::{Result, TensorError};
