use litho_sim::ProcessConfig;

/// Configuration of one benchmark dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Process node (optics + resist + contact geometry).
    pub process: ProcessConfig,
    /// Number of clips to generate (982 for N10, 979 for N7 in the paper).
    pub clip_count: usize,
    /// Network image resolution (paper: 256; scaled configs use less).
    pub image_size: usize,
    /// Simulation grid resolution over the 2 µm clip (power of two).
    pub sim_grid: usize,
    /// Golden resist window edge, nm (128 in the paper).
    pub golden_window_nm: f64,
    /// Fraction of samples assigned to the training split (0.75).
    pub train_fraction: f64,
    /// RNG seed for clip generation and the split shuffle.
    pub seed: u64,
    /// Mask write / registration error: each post-OPC shape is translated
    /// by an independent uniform offset in `[-j, +j]` nm per axis. This is
    /// the physical mechanism that scatters printed-pattern centres away
    /// from the drawn centre (edge-based OPC corrects systematic
    /// asymmetry, but a write error applied after OPC cannot be
    /// compensated) — the signal the paper's centre-prediction CNN
    /// regresses.
    pub mask_jitter_nm: f64,
}

impl DatasetConfig {
    /// The paper's N10 benchmark: 982 clips at 256 × 256.
    pub fn n10_paper() -> Self {
        DatasetConfig {
            process: ProcessConfig::n10(),
            clip_count: 982,
            image_size: 256,
            sim_grid: 256,
            golden_window_nm: 128.0,
            train_fraction: 0.75,
            seed: 10,
            mask_jitter_nm: 3.0,
        }
    }

    /// The paper's N7 benchmark: 979 clips at 256 × 256.
    pub fn n7_paper() -> Self {
        DatasetConfig {
            process: ProcessConfig::n7(),
            clip_count: 979,
            image_size: 256,
            sim_grid: 256,
            golden_window_nm: 128.0,
            train_fraction: 0.75,
            seed: 7,
            mask_jitter_nm: 3.0,
        }
    }

    /// A CPU-budget variant: same pipeline, reduced image resolution and
    /// clip count. Used by the experiment binaries so full training runs
    /// fit a CPU time budget (see DESIGN.md's substitution table).
    pub fn scaled(process: ProcessConfig, clip_count: usize, image_size: usize) -> Self {
        let seed = if process.name == "N7" { 7 } else { 10 };
        DatasetConfig {
            process,
            clip_count,
            image_size,
            sim_grid: 256,
            golden_window_nm: 128.0,
            train_fraction: 0.75,
            seed,
            mask_jitter_nm: 3.0,
        }
    }

    /// Nanometres per pixel of the golden window images — the unit of the
    /// EDE metric (0.5 nm/px in the paper's 128 nm → 256 px encoding).
    pub fn golden_nm_per_px(&self) -> f64 {
        self.golden_window_nm / self.image_size as f64
    }

    /// Nanometres per pixel of the mask (input) images over the 1 µm crop.
    pub fn mask_nm_per_px(&self) -> f64 {
        1024.0 / self.image_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_paper_cardinalities() {
        let n10 = DatasetConfig::n10_paper();
        assert_eq!(n10.clip_count, 982);
        assert_eq!(n10.image_size, 256);
        assert_eq!(n10.golden_nm_per_px(), 0.5);
        assert_eq!(n10.mask_nm_per_px(), 4.0);
        assert_eq!(DatasetConfig::n7_paper().clip_count, 979);
    }

    #[test]
    fn scaled_config_keeps_physical_window() {
        let c = DatasetConfig::scaled(ProcessConfig::n10(), 64, 64);
        assert_eq!(c.golden_window_nm, 128.0);
        assert_eq!(c.golden_nm_per_px(), 2.0);
        assert_eq!(c.train_fraction, 0.75);
    }
}
