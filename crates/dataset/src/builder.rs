//! Dataset generation: the full §3.1 pipeline, parallelised over clips.

use litho_tensor::rng::StdRng;
use litho_tensor::rng::SeedableRng;

use litho_layout::{
    insert_srafs, rasterize_clip, ClipFamily, ClipGenerator, OpcConfig, OpcEngine, RasterConfig,
    SrafRules,
};
use litho_sim::{ResistModel, RigorousSim};
use litho_tensor::{Result, Tensor};

use crate::{golden_window, Dataset, DatasetConfig, Sample};

/// Counters describing a generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenerationStats {
    /// Clips requested.
    pub requested: usize,
    /// Samples successfully produced.
    pub generated: usize,
    /// Clips whose golden window came out empty (target failed to print)
    /// and were re-drawn.
    pub empty_golden_retries: usize,
    /// Clips where the OPC loop hit its iteration cap before tolerance.
    pub opc_unconverged: usize,
}

/// Per-thread generation context (the engines are cheap to build relative
/// to a full dataset but not per-clip).
struct Worker {
    generator: ClipGenerator,
    sraf_rules: SrafRules,
    opc: OpcEngine,
    sim: RigorousSim,
    resist: ResistModel,
}

impl Worker {
    fn new(config: &DatasetConfig) -> Result<Self> {
        let process = &config.process;
        let extent = 2048.0;
        let opc = OpcEngine::new(
            process,
            extent,
            OpcConfig {
                grid_size: config.sim_grid,
                ..OpcConfig::default()
            },
        )?;
        let sim = RigorousSim::new(process, config.sim_grid, extent / config.sim_grid as f64)?;
        Ok(Worker {
            generator: ClipGenerator::new(process),
            sraf_rules: SrafRules::for_process(process),
            opc,
            sim,
            resist: ResistModel::new(process.resist),
        })
    }

    /// Generates the sample for clip index `i`, retrying with fresh
    /// geometry when the golden window is empty.
    fn generate_sample(
        &self,
        config: &DatasetConfig,
        index: usize,
        stats: &mut GenerationStats,
    ) -> Result<Option<Sample>> {
        let family = ClipFamily::ALL[index % ClipFamily::ALL.len()];
        for attempt in 0..5u64 {
            // Deterministic per-(clip, attempt) stream: results do not
            // depend on thread scheduling.
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((index as u64) << 8)
                    .wrapping_add(attempt),
            );
            let mut clip = self.generator.generate(family, &mut rng);
            insert_srafs(&mut clip, &self.sraf_rules);
            let opc_result = self.opc.correct(&clip)?;
            if !opc_result.converged {
                stats.opc_unconverged += 1;
            }
            let mut corrected = opc_result.clip;
            apply_mask_jitter(&mut corrected, config.mask_jitter_nm, &mut rng);

            let mask_grid = corrected.to_mask_grid(config.sim_grid);
            let (_, report) = self.sim.simulate(&mask_grid)?;
            let excess = self.resist.excess_field(&report.aerial);
            let golden = golden_window(
                &excess,
                config.sim_grid,
                corrected.extent_nm,
                config.golden_window_nm,
                config.image_size,
            )?;
            if golden.sum() == 0.0 {
                stats.empty_golden_retries += 1;
                continue;
            }

            let mask = rasterize_clip(
                &corrected,
                &RasterConfig {
                    image_size: config.image_size,
                    window_nm: 1024,
                },
            )?;
            let (golden_centered, center_px) = center_golden(&golden)?;
            return Ok(Some(Sample {
                clip: corrected,
                mask,
                golden,
                golden_centered,
                center_px,
                family,
            }));
        }
        Ok(None)
    }
}

/// Mask write / registration error: translates every shape of the
/// post-OPC clip by an independent uniform offset in `[-j, +j]` nm per
/// axis. Applied *after* OPC, so (unlike systematic proximity asymmetry,
/// which the edge-based OPC corrects) it displaces the printed pattern
/// centre — the physical signal behind the paper's centre-prediction CNN.
fn apply_mask_jitter<R: litho_tensor::rng::Rng + ?Sized>(clip: &mut litho_layout::Clip, jitter_nm: f64, rng: &mut R) {
    if jitter_nm <= 0.0 {
        return;
    }
    let offset = |rng: &mut R| rng.gen_range(-jitter_nm..=jitter_nm);
    let (dx, dy) = (offset(rng), offset(rng));
    clip.target = clip.target.translated(dx, dy);
    for r in clip.neighbors.iter_mut().chain(clip.srafs.iter_mut()) {
        let (dx, dy) = (offset(rng), offset(rng));
        *r = r.translated(dx, dy);
    }
}

/// Re-centres a golden window at the image centre and reports the original
/// bounding-box centre (the CNN's regression target).
fn center_golden(golden: &Tensor) -> Result<(Tensor, (f32, f32))> {
    let dims = golden.dims();
    let (h, w) = (dims[0], dims[1]);
    let data = golden.as_slice();
    let mut bb: Option<(usize, usize, usize, usize)> = None;
    for y in 0..h {
        for x in 0..w {
            if data[y * w + x] >= 0.5 {
                bb = Some(match bb {
                    None => (y, x, y, x),
                    Some((y0, x0, y1, x1)) => (y0.min(y), x0.min(x), y1.max(y), x1.max(x)),
                });
            }
        }
    }
    let (y0, x0, y1, x1) = bb.expect("caller guarantees non-empty golden");
    let cy = (y0 + y1) as f32 / 2.0;
    let cx = (x0 + x1) as f32 / 2.0;
    let mid = ((h as f32 - 1.0) / 2.0, (w as f32 - 1.0) / 2.0);
    // Sub-half-pixel offsets shift by zero so centering is idempotent
    // (a bbox of even pixel extent can never land exactly on the
    // half-pixel image mid).
    let quant = |d: f32| if d.abs() <= 0.5 { 0 } else { d.round() as isize };
    let dy = quant(mid.0 - cy);
    let dx = quant(mid.1 - cx);
    let nchw = golden.reshape(&[1, 1, h, w])?;
    let centered = litho_tensor::ops::shift2d(&nchw, dy, dx, 0.0)?.reshape(&[h, w])?;
    Ok((centered, (cy, cx)))
}

/// Output of one worker thread: indexed samples plus that shard's stats.
type WorkerResult = Result<(Vec<(usize, Sample)>, GenerationStats)>;

/// Generates a dataset according to `config`, parallelised across CPU
/// cores. Generation is deterministic in `config.seed` regardless of the
/// thread count.
///
/// # Errors
///
/// Propagates simulator construction/simulation errors.
pub fn generate(config: &DatasetConfig) -> Result<(Dataset, GenerationStats)> {
    let _span = litho_telemetry::span("dataset/generate");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(config.clip_count.max(1));

    let chunk = config.clip_count.div_ceil(threads.max(1));
    let mut results: Vec<WorkerResult> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(config.clip_count);
            if start >= end {
                break;
            }
            handles.push(scope.spawn(move || {
                let worker = Worker::new(config)?;
                let mut stats = GenerationStats::default();
                let mut out = Vec::with_capacity(end - start);
                for i in start..end {
                    if let Some(sample) = worker.generate_sample(config, i, &mut stats)? {
                        out.push((i, sample));
                        litho_telemetry::counter_add("dataset.clips_generated", 1);
                    } else {
                        litho_telemetry::counter_add("dataset.clips_failed", 1);
                    }
                }
                Ok((out, stats))
            }));
        }
        for h in handles {
            results.push(h.join().expect("dataset worker panicked"));
        }
    });

    let mut stats = GenerationStats {
        requested: config.clip_count,
        ..GenerationStats::default()
    };
    let mut indexed: Vec<(usize, Sample)> = Vec::with_capacity(config.clip_count);
    for r in results {
        let (samples, s) = r?;
        stats.empty_golden_retries += s.empty_golden_retries;
        stats.opc_unconverged += s.opc_unconverged;
        indexed.extend(samples);
    }
    indexed.sort_by_key(|(i, _)| *i);
    stats.generated = indexed.len();
    if litho_telemetry::is_enabled() {
        use litho_telemetry::Value;
        litho_telemetry::counter_add("dataset.empty_golden_retries", stats.empty_golden_retries as u64);
        litho_telemetry::counter_add("dataset.opc_unconverged", stats.opc_unconverged as u64);
        litho_telemetry::event(
            "dataset_generated",
            &[
                ("requested", Value::U64(stats.requested as u64)),
                ("generated", Value::U64(stats.generated as u64)),
                ("empty_golden_retries", Value::U64(stats.empty_golden_retries as u64)),
                ("opc_unconverged", Value::U64(stats.opc_unconverged as u64)),
                ("threads", Value::U64(threads as u64)),
            ],
        );
    }
    Ok((
        Dataset {
            config: config.clone(),
            samples: indexed.into_iter().map(|(_, s)| s).collect(),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_sim::ProcessConfig;

    fn tiny_config() -> DatasetConfig {
        let mut c = DatasetConfig::scaled(ProcessConfig::n10(), 6, 32);
        c.sim_grid = 128;
        c
    }

    #[test]
    fn generates_requested_count_with_all_families() {
        let (ds, stats) = generate(&tiny_config()).unwrap();
        assert_eq!(stats.requested, 6);
        assert_eq!(ds.len(), stats.generated);
        assert!(ds.len() >= 5, "generated {}", ds.len());
        let families: std::collections::HashSet<_> =
            ds.samples.iter().map(|s| s.family).collect();
        assert_eq!(families.len(), 3);
    }

    #[test]
    fn samples_are_well_formed() {
        let (ds, _) = generate(&tiny_config()).unwrap();
        for s in &ds.samples {
            assert_eq!(s.mask.dims(), &[3, 32, 32]);
            assert_eq!(s.golden.dims(), &[32, 32]);
            assert_eq!(s.golden_centered.dims(), &[32, 32]);
            // Non-empty golden patterns with the same area after centering.
            assert!(s.golden.sum() > 0.0);
            assert!((s.golden.sum() - s.golden_centered.sum()).abs() < 1e-3);
            // Center within the window.
            assert!(s.center_px.0 >= 0.0 && s.center_px.0 < 32.0);
            assert!(s.center_px.1 >= 0.0 && s.center_px.1 < 32.0);
            // Mask has a green (target) channel with content.
            let green: f32 = s.mask.as_slice()[32 * 32..2 * 32 * 32].iter().sum();
            assert!(green > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = generate(&tiny_config()).unwrap();
        let (b, _) = generate(&tiny_config()).unwrap();
        assert_eq!(a.samples.len(), b.samples.len());
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            assert_eq!(sa.mask, sb.mask);
            assert_eq!(sa.golden, sb.golden);
            assert_eq!(sa.center_px, sb.center_px);
        }
    }

    #[test]
    fn golden_centered_is_centered() {
        let (ds, _) = generate(&tiny_config()).unwrap();
        for s in &ds.samples {
            let (centered, c) = super::center_golden(&s.golden_centered).unwrap();
            // Re-centering a centered image is (nearly) a no-op.
            assert_eq!(centered, s.golden_centered);
            assert!((c.0 - 15.5).abs() <= 1.0, "cy {}", c.0);
            assert!((c.1 - 15.5).abs() <= 1.0, "cx {}", c.1);
        }
    }
}
