//! Golden-window extraction: from the simulator's development excess field
//! to the network-resolution monochrome target image.

use litho_tensor::{Result, Tensor, TensorError};

/// Cuts the `window_nm` square centred in the clip out of a development
/// excess field (`sim_grid × sim_grid` over `clip_extent_nm`), sampling
/// bilinearly at `out_size × out_size` and thresholding at zero.
///
/// Bilinear sampling of the excess field gives sub-pixel-accurate golden
/// shapes even though the simulation grid is coarser than the output
/// image (the paper renders 128 nm → 256 px, i.e. 0.5 nm/px). Only the
/// 4-connected printed component covering the window centre is kept, so a
/// neighbouring contact that leaks into the window cannot contaminate the
/// target (the paper adopts only the centre contact per clip).
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `excess.len()` is not
/// `sim_grid²` and [`TensorError::InvalidArgument`] for degenerate sizes.
pub fn golden_window(
    excess: &[f64],
    sim_grid: usize,
    clip_extent_nm: f64,
    window_nm: f64,
    out_size: usize,
) -> Result<Tensor> {
    let field = field_window(excess, sim_grid, clip_extent_nm, window_nm, out_size)?;
    let binary: Vec<bool> = field.as_slice().iter().map(|&v| v >= 0.0).collect();
    // Keep only the component covering (or nearest to) the window centre.
    let keep = central_component(&binary, out_size);
    let data = keep.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    Tensor::from_vec(data, &[out_size, out_size])
}

/// Bilinearly resamples the centre `window_nm` square of any scalar field
/// on the simulation grid into an `out_size × out_size` tensor (values
/// narrowed to `f32`).
///
/// This is the real-valued core of [`golden_window`]; the Ref. \[12\]
/// baseline uses it to cut aerial-image windows for its threshold CNN.
///
/// # Errors
///
/// Same conditions as [`golden_window`].
pub fn field_window(
    field: &[f64],
    sim_grid: usize,
    clip_extent_nm: f64,
    window_nm: f64,
    out_size: usize,
) -> Result<Tensor> {
    if field.len() != sim_grid * sim_grid {
        return Err(TensorError::LengthMismatch {
            expected: sim_grid * sim_grid,
            actual: field.len(),
        });
    }
    if out_size == 0 || window_nm <= 0.0 || window_nm > clip_extent_nm {
        return Err(TensorError::InvalidArgument(
            "invalid golden window geometry".into(),
        ));
    }
    let pitch = clip_extent_nm / sim_grid as f64;
    let origin = (clip_extent_nm - window_nm) / 2.0;
    let step = window_nm / out_size as f64;

    let sample = |y_nm: f64, x_nm: f64| -> f64 {
        // Grid coordinates of the sample point (pixel centres at +0.5).
        let gy = (y_nm / pitch - 0.5).clamp(0.0, (sim_grid - 1) as f64);
        let gx = (x_nm / pitch - 0.5).clamp(0.0, (sim_grid - 1) as f64);
        let y0 = gy.floor() as usize;
        let x0 = gx.floor() as usize;
        let y1 = (y0 + 1).min(sim_grid - 1);
        let x1 = (x0 + 1).min(sim_grid - 1);
        let ty = gy - y0 as f64;
        let tx = gx - x0 as f64;
        let v00 = field[y0 * sim_grid + x0];
        let v01 = field[y0 * sim_grid + x1];
        let v10 = field[y1 * sim_grid + x0];
        let v11 = field[y1 * sim_grid + x1];
        let top = v00 + (v01 - v00) * tx;
        let bot = v10 + (v11 - v10) * tx;
        top + (bot - top) * ty
    };

    let mut data = vec![0.0f32; out_size * out_size];
    for y in 0..out_size {
        let y_nm = origin + (y as f64 + 0.5) * step;
        for x in 0..out_size {
            let x_nm = origin + (x as f64 + 0.5) * step;
            data[y * out_size + x] = sample(y_nm, x_nm) as f32;
        }
    }
    Tensor::from_vec(data, &[out_size, out_size])
}

/// Erases every foreground region of a monochrome image except the
/// 4-connected component covering (or nearest to) the image centre.
///
/// # Errors
///
/// Returns a rank error for non-2-D input.
pub fn keep_central_component(image: &Tensor) -> Result<Tensor> {
    let dims = image.dims();
    if dims.len() != 2 || dims[0] != dims[1] {
        return Err(TensorError::InvalidArgument(format!(
            "expected a square rank-2 image, got {dims:?}"
        )));
    }
    let size = dims[0];
    let binary: Vec<bool> = image.as_slice().iter().map(|&v| v >= 0.5).collect();
    let keep = central_component(&binary, size);
    let data = image
        .as_slice()
        .iter()
        .zip(&keep)
        .map(|(&v, &k)| if k { v } else { 0.0 })
        .collect();
    Tensor::from_vec(data, dims)
}

/// 4-connected component containing the centre pixel, or the component of
/// the printed pixel nearest the centre; all-false when nothing printed.
fn central_component(binary: &[bool], size: usize) -> Vec<bool> {
    let c = size / 2;
    let seed = if binary[c * size + c] {
        Some((c, c))
    } else {
        let mut best = None;
        let mut best_d = usize::MAX;
        for y in 0..size {
            for x in 0..size {
                if binary[y * size + x] {
                    let d = y.abs_diff(c).pow(2) + x.abs_diff(c).pow(2);
                    if d < best_d {
                        best_d = d;
                        best = Some((y, x));
                    }
                }
            }
        }
        best
    };
    let mut out = vec![false; size * size];
    let Some((sy, sx)) = seed else {
        return out;
    };
    let mut stack = vec![(sy, sx)];
    out[sy * size + sx] = true;
    while let Some((y, x)) = stack.pop() {
        for (dy, dx) in [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)] {
            let (ny, nx) = (y as isize + dy, x as isize + dx);
            if ny < 0 || nx < 0 || ny >= size as isize || nx >= size as isize {
                continue;
            }
            let idx = ny as usize * size + nx as usize;
            if binary[idx] && !out[idx] {
                out[idx] = true;
                stack.push((ny as usize, nx as usize));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A radially decreasing excess field centred in the clip.
    fn radial_excess(sim_grid: usize, extent: f64, radius_nm: f64) -> Vec<f64> {
        let pitch = extent / sim_grid as f64;
        let c = extent / 2.0;
        (0..sim_grid * sim_grid)
            .map(|i| {
                let y = ((i / sim_grid) as f64 + 0.5) * pitch;
                let x = ((i % sim_grid) as f64 + 0.5) * pitch;
                radius_nm - ((x - c).powi(2) + (y - c).powi(2)).sqrt()
            })
            .collect()
    }

    #[test]
    fn validates_geometry() {
        assert!(golden_window(&[0.0; 10], 4, 100.0, 50.0, 8).is_err());
        let e = vec![0.0; 16];
        assert!(golden_window(&e, 4, 100.0, 200.0, 8).is_err());
        assert!(golden_window(&e, 4, 100.0, 50.0, 0).is_err());
    }

    #[test]
    fn disk_appears_with_correct_area() {
        let excess = radial_excess(128, 2048.0, 30.0);
        let img = golden_window(&excess, 128, 2048.0, 128.0, 64).unwrap();
        // Disk radius 30nm in a 128nm window at 2nm/px: area π·15²px.
        let area_px = img.sum() as f64;
        let expect = std::f64::consts::PI * 15.0 * 15.0;
        assert!(
            (area_px - expect).abs() / expect < 0.1,
            "area {area_px} vs {expect}"
        );
        // Centered.
        assert_eq!(img.at(&[32, 32]).unwrap(), 1.0);
        assert_eq!(img.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn subpixel_growth_is_visible() {
        // Two radii differing by less than one sim pixel (16nm here) must
        // still produce different window areas thanks to interpolation.
        let a = golden_window(&radial_excess(128, 2048.0, 30.0), 128, 2048.0, 128.0, 64).unwrap();
        let b = golden_window(&radial_excess(128, 2048.0, 34.0), 128, 2048.0, 128.0, 64).unwrap();
        assert!(b.sum() > a.sum());
    }

    #[test]
    fn off_center_blob_is_dropped() {
        let extent = 2048.0;
        let sim = 128;
        let mut excess = radial_excess(sim, extent, 25.0);
        // Second blob near the window corner (center +55nm in x/y).
        let pitch = extent / sim as f64;
        let c = extent / 2.0 + 55.0;
        for (i, e) in excess.iter_mut().enumerate().take(sim * sim) {
            let y = ((i / sim) as f64 + 0.5) * pitch;
            let x = ((i % sim) as f64 + 0.5) * pitch;
            let d = 12.0 - ((x - c).powi(2) + (y - c).powi(2)).sqrt();
            if d > *e {
                *e = d;
            }
        }
        let img = golden_window(&excess, sim, extent, 128.0, 64).unwrap();
        // Corner blob (center +55nm → pixel 32+27) removed by the
        // component filter.
        assert_eq!(img.at(&[59, 59]).unwrap(), 0.0);
        assert_eq!(img.at(&[32, 32]).unwrap(), 1.0);
    }

    #[test]
    fn empty_field_yields_empty_window() {
        let excess = vec![-1.0; 64 * 64];
        let img = golden_window(&excess, 64, 2048.0, 128.0, 32).unwrap();
        assert_eq!(img.sum(), 0.0);
    }

    #[test]
    fn field_window_preserves_constant_fields() {
        let field = vec![0.37f64; 64 * 64];
        let win = field_window(&field, 64, 2048.0, 128.0, 16).unwrap();
        assert_eq!(win.dims(), &[16, 16]);
        for &v in win.as_slice() {
            assert!((v - 0.37).abs() < 1e-6);
        }
    }

    #[test]
    fn field_window_samples_center_region() {
        // A field that equals x_nm: the window spans the central 128nm of
        // a 2048nm clip, so sampled values sit near 960..1088.
        let field: Vec<f64> = (0..64 * 64)
            .map(|i| ((i % 64) as f64 + 0.5) * 32.0)
            .collect();
        let win = field_window(&field, 64, 2048.0, 128.0, 8).unwrap();
        for &v in win.as_slice() {
            assert!((952.0..=1096.0).contains(&(v as f64)), "{v}");
        }
        // Left column < right column (gradient preserved).
        assert!(win.at(&[4, 0]).unwrap() < win.at(&[4, 7]).unwrap());
    }

    #[test]
    fn keep_central_component_erases_satellites() {
        let mut img = Tensor::zeros(&[16, 16]);
        for (y, x) in [(8, 8), (8, 9), (9, 8)] {
            img.set(&[y, x], 1.0).unwrap();
        }
        img.set(&[1, 1], 1.0).unwrap(); // satellite
        let kept = keep_central_component(&img).unwrap();
        assert_eq!(kept.at(&[8, 8]).unwrap(), 1.0);
        assert_eq!(kept.at(&[1, 1]).unwrap(), 0.0);
        assert_eq!(kept.sum(), 3.0);
        // Non-square inputs rejected.
        assert!(keep_central_component(&Tensor::zeros(&[4, 8])).is_err());
    }
}
