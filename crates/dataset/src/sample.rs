use litho_layout::{Clip, ClipFamily};
use litho_tensor::{ops, Result, Tensor, TensorError};

use crate::DatasetConfig;

/// One paired training sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The post-OPC clip geometry (full 2 µm extent). Kept so baseline
    /// flows that need optical simulation (the Ref. \[12\] comparison and
    /// the Table 4 runtime study) can rebuild the mask.
    pub clip: Clip,
    /// Mask image `[3, S, S]`: R = neighbors, G = target, B = SRAFs.
    pub mask: Tensor,
    /// Golden resist window `[S, S]` at its true position.
    pub golden: Tensor,
    /// Golden window re-centred so the pattern's bounding-box centre sits
    /// at the image centre — the CGAN's training target.
    pub golden_centered: Tensor,
    /// Golden bounding-box centre `(cy, cx)` in golden-window pixels —
    /// the CNN's regression target.
    pub center_px: (f32, f32),
    /// Which contact-array family the source clip belongs to.
    pub family: ClipFamily,
}

impl Sample {
    /// Shifts a generated (centred) pattern to a predicted centre — the
    /// final "post-adjustment" step of the LithoGAN flow (paper Figure 5).
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `image` is not rank 2.
    pub fn recenter_to(image: &Tensor, center_px: (f32, f32)) -> Result<Tensor> {
        let dims = image.dims();
        if dims.len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: dims.len(),
            });
        }
        let (h, w) = (dims[0], dims[1]);
        let mid = ((h as f32 - 1.0) / 2.0, (w as f32 - 1.0) / 2.0);
        // Mirror the sub-half-pixel dead zone of the dataset's centering
        // transform so recentring is its exact inverse.
        let quant = |d: f32| if d.abs() <= 0.5 { 0 } else { d.round() as isize };
        let dy = quant(center_px.0 - mid.0);
        let dx = quant(center_px.1 - mid.1);
        let nchw = image.reshape(&[1, 1, h, w])?;
        ops::shift2d(&nchw, dy, dx, 0.0)?.reshape(&[h, w])
    }
}

/// A generated dataset: samples plus the configuration that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The dataset configuration.
    pub config: DatasetConfig,
    /// All samples, in generation order.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Deterministic 75/25 train/test split (paper §4: "we randomly sample
    /// 75% of the data for training … the remaining 25% … for testing").
    ///
    /// The shuffle is keyed by the dataset seed, so the split is stable
    /// across runs.
    pub fn split(&self) -> (Vec<&Sample>, Vec<&Sample>) {
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        // Deterministic Fisher–Yates keyed by a simple splitmix stream.
        let mut state = self.config.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let train_len = (self.samples.len() as f64 * self.config.train_fraction).round() as usize;
        let train = order[..train_len.min(order.len())]
            .iter()
            .map(|&i| &self.samples[i])
            .collect();
        let test = order[train_len.min(order.len())..]
            .iter()
            .map(|&i| &self.samples[i])
            .collect();
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_sim::ProcessConfig;

    fn dummy_sample(tag: f32) -> Sample {
        Sample {
            clip: Clip::new(2048.0, litho_layout::Rect::centered_square(1024.0, 1024.0, 60.0)),
            mask: Tensor::full(&[3, 8, 8], tag),
            golden: Tensor::zeros(&[8, 8]),
            golden_centered: Tensor::zeros(&[8, 8]),
            center_px: (4.0, 4.0),
            family: ClipFamily::Isolated,
        }
    }

    fn dataset(n: usize) -> Dataset {
        Dataset {
            config: DatasetConfig::scaled(ProcessConfig::n10(), n, 8),
            samples: (0..n).map(|i| dummy_sample(i as f32)).collect(),
        }
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let ds = dataset(100);
        let (train, test) = ds.split();
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        // Disjoint by mask tag.
        let train_tags: std::collections::HashSet<u32> =
            train.iter().map(|s| s.mask.as_slice()[0] as u32).collect();
        for s in &test {
            assert!(!train_tags.contains(&(s.mask.as_slice()[0] as u32)));
        }
    }

    #[test]
    fn split_is_deterministic() {
        let ds = dataset(40);
        let (a, _) = ds.split();
        let (b, _) = ds.split();
        let tags = |v: &[&Sample]| -> Vec<f32> { v.iter().map(|s| s.mask.as_slice()[0]).collect() };
        assert_eq!(tags(&a), tags(&b));
    }

    #[test]
    fn split_is_shuffled_not_prefix() {
        let ds = dataset(100);
        let (train, _) = ds.split();
        let is_prefix = train
            .iter()
            .enumerate()
            .all(|(i, s)| s.mask.as_slice()[0] as usize == i);
        assert!(!is_prefix);
    }

    #[test]
    fn recenter_moves_pattern() {
        let mut img = Tensor::zeros(&[9, 9]);
        // 3x3 blob centred at the image centre (4,4).
        for y in 3..6 {
            for x in 3..6 {
                img.set(&[y, x], 1.0).unwrap();
            }
        }
        let shifted = Sample::recenter_to(&img, (2.0, 6.0)).unwrap();
        assert_eq!(shifted.at(&[2, 6]).unwrap(), 1.0);
        assert_eq!(shifted.at(&[4, 4]).unwrap(), 0.0);
        assert_eq!(shifted.sum(), 9.0);
    }

    #[test]
    fn recenter_identity_when_target_is_center() {
        let mut img = Tensor::zeros(&[8, 8]);
        img.set(&[3, 3], 1.0).unwrap();
        let same = Sample::recenter_to(&img, (3.5, 3.5)).unwrap();
        assert_eq!(same, img);
    }
}
