//! Dataset persistence in a compact custom binary format.
//!
//! The mask images are stored as bytes (`0..=255` quantisation of `[0,1]`
//! coverage values) and golden windows as packed bits, so a paper-scale
//! 982-clip dataset at 256 × 256 stays around 200 MB. Process presets are
//! stored by name (`"N10"`/`"N7"`) and reconstructed on load.

use std::io::{Read, Write};
use std::path::Path;

use litho_layout::{Clip, ClipFamily, Rect};
use litho_sim::ProcessConfig;
use litho_tensor::{Result, Tensor, TensorError};

use crate::{Dataset, DatasetConfig, Sample};

const MAGIC: &[u8; 4] = b"LGD3";

fn io_err(err: std::io::Error) -> TensorError {
    TensorError::InvalidArgument(format!("dataset i/o: {err}"))
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u32::from_le_bytes(b))
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u64::from_le_bytes(b))
}

fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(f64::from_le_bytes(b))
}

fn family_code(f: ClipFamily) -> u8 {
    match f {
        ClipFamily::Isolated => 0,
        ClipFamily::Chain1d => 1,
        ClipFamily::Array2d => 2,
    }
}

fn family_from(code: u8) -> Result<ClipFamily> {
    match code {
        0 => Ok(ClipFamily::Isolated),
        1 => Ok(ClipFamily::Chain1d),
        2 => Ok(ClipFamily::Array2d),
        c => Err(TensorError::InvalidArgument(format!(
            "unknown clip family code {c}"
        ))),
    }
}

fn write_rect<W: Write>(w: &mut W, r: &Rect) -> Result<()> {
    for v in [r.x0, r.y0, r.x1, r.y1] {
        write_f64(w, v)?;
    }
    Ok(())
}

fn read_rect<R: Read>(r: &mut R) -> Result<Rect> {
    let x0 = read_f64(r)?;
    let y0 = read_f64(r)?;
    let x1 = read_f64(r)?;
    let y1 = read_f64(r)?;
    Ok(Rect::new(x0, y0, x1, y1))
}

fn write_clip<W: Write>(w: &mut W, clip: &Clip) -> Result<()> {
    write_f64(w, clip.extent_nm)?;
    write_rect(w, &clip.target)?;
    write_u32(w, clip.neighbors.len() as u32)?;
    for r in &clip.neighbors {
        write_rect(w, r)?;
    }
    write_u32(w, clip.srafs.len() as u32)?;
    for r in &clip.srafs {
        write_rect(w, r)?;
    }
    Ok(())
}

fn read_clip<R: Read>(r: &mut R) -> Result<Clip> {
    let extent_nm = read_f64(r)?;
    let target = read_rect(r)?;
    let mut clip = Clip::new(extent_nm, target);
    let n = read_u32(r)? as usize;
    for _ in 0..n {
        clip.neighbors.push(read_rect(r)?);
    }
    let n = read_u32(r)? as usize;
    for _ in 0..n {
        clip.srafs.push(read_rect(r)?);
    }
    Ok(clip)
}

fn pack_bits(image: &Tensor) -> Vec<u8> {
    let mut out = vec![0u8; image.len().div_ceil(8)];
    for (i, &v) in image.as_slice().iter().enumerate() {
        if v >= 0.5 {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bits(bytes: &[u8], dims: &[usize]) -> Result<Tensor> {
    let n: usize = dims.iter().product();
    let data = (0..n)
        .map(|i| {
            if bytes[i / 8] & (1 << (i % 8)) != 0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    Tensor::from_vec(data, dims)
}

/// Writes a dataset to `path`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] on I/O failure or when the
/// process is not a named preset (only `"N10"`/`"N7"` round-trip).
pub fn save_dataset<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<()> {
    let cfg = &dataset.config;
    if cfg.process.name != "N10" && cfg.process.name != "N7" {
        return Err(TensorError::InvalidArgument(format!(
            "only preset processes can be persisted, got {:?}",
            cfg.process.name
        )));
    }
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = std::io::BufWriter::new(file);
    w.write_all(MAGIC).map_err(io_err)?;
    let name = cfg.process.name.as_bytes();
    write_u32(&mut w, name.len() as u32)?;
    w.write_all(name).map_err(io_err)?;
    write_u32(&mut w, cfg.clip_count as u32)?;
    write_u32(&mut w, cfg.image_size as u32)?;
    write_u32(&mut w, cfg.sim_grid as u32)?;
    write_f64(&mut w, cfg.golden_window_nm)?;
    write_f64(&mut w, cfg.train_fraction)?;
    write_u64(&mut w, cfg.seed)?;
    write_f64(&mut w, cfg.mask_jitter_nm)?;

    write_u32(&mut w, dataset.samples.len() as u32)?;
    let s = cfg.image_size;
    for sample in &dataset.samples {
        write_clip(&mut w, &sample.clip)?;
        w.write_all(&[family_code(sample.family)]).map_err(io_err)?;
        w.write_all(&sample.center_px.0.to_le_bytes()).map_err(io_err)?;
        w.write_all(&sample.center_px.1.to_le_bytes()).map_err(io_err)?;
        // Mask: u8 quantisation.
        let mask_bytes: Vec<u8> = sample
            .mask
            .as_slice()
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect();
        debug_assert_eq!(mask_bytes.len(), 3 * s * s);
        w.write_all(&mask_bytes).map_err(io_err)?;
        // Goldens: packed bits.
        w.write_all(&pack_bits(&sample.golden)).map_err(io_err)?;
        w.write_all(&pack_bits(&sample.golden_centered)).map_err(io_err)?;
    }
    Ok(())
}

/// Reads a dataset previously written by [`save_dataset`].
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] on I/O failure, bad magic, or
/// an unknown process name.
pub fn load_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = std::io::BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(TensorError::InvalidArgument("not a LGD3 dataset".into()));
    }
    let name_len = read_u32(&mut r)? as usize;
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name).map_err(io_err)?;
    let process = match name.as_slice() {
        b"N10" => ProcessConfig::n10(),
        b"N7" => ProcessConfig::n7(),
        other => {
            return Err(TensorError::InvalidArgument(format!(
                "unknown process preset {:?}",
                String::from_utf8_lossy(other)
            )))
        }
    };
    let clip_count = read_u32(&mut r)? as usize;
    let image_size = read_u32(&mut r)? as usize;
    let sim_grid = read_u32(&mut r)? as usize;
    let golden_window_nm = read_f64(&mut r)?;
    let train_fraction = read_f64(&mut r)?;
    let seed = read_u64(&mut r)?;
    let mask_jitter_nm = read_f64(&mut r)?;
    let config = DatasetConfig {
        process,
        clip_count,
        image_size,
        sim_grid,
        golden_window_nm,
        train_fraction,
        seed,
        mask_jitter_nm,
    };

    let count = read_u32(&mut r)? as usize;
    let s = image_size;
    let mut samples = Vec::with_capacity(count);
    for _ in 0..count {
        let clip = read_clip(&mut r)?;
        let mut head = [0u8; 9];
        r.read_exact(&mut head).map_err(io_err)?;
        let family = family_from(head[0])?;
        let cy = f32::from_le_bytes([head[1], head[2], head[3], head[4]]);
        let cx = f32::from_le_bytes([head[5], head[6], head[7], head[8]]);
        let mut mask_bytes = vec![0u8; 3 * s * s];
        r.read_exact(&mut mask_bytes).map_err(io_err)?;
        let mask = Tensor::from_vec(
            mask_bytes.iter().map(|&b| b as f32 / 255.0).collect(),
            &[3, s, s],
        )?;
        let bits_len = (s * s).div_ceil(8);
        let mut golden_bits = vec![0u8; bits_len];
        r.read_exact(&mut golden_bits).map_err(io_err)?;
        let golden = unpack_bits(&golden_bits, &[s, s])?;
        let mut centered_bits = vec![0u8; bits_len];
        r.read_exact(&mut centered_bits).map_err(io_err)?;
        let golden_centered = unpack_bits(&centered_bits, &[s, s])?;
        samples.push(Sample {
            clip,
            mask,
            golden,
            golden_centered,
            center_px: (cy, cx),
            family,
        });
    }
    Ok(Dataset { config, samples })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let mut golden = Tensor::zeros(&[8, 8]);
        golden.set(&[3, 4], 1.0).unwrap();
        Dataset {
            config: DatasetConfig::scaled(ProcessConfig::n10(), 1, 8),
            samples: vec![Sample {
                clip: {
                    let mut c = Clip::new(
                        2048.0,
                        Rect::centered_square(1024.0, 1024.0, 80.0),
                    );
                    c.neighbors.push(Rect::centered_square(1200.0, 1024.0, 80.0));
                    c.srafs.push(Rect::centered(1024.0, 900.0, 96.0, 24.0));
                    c
                },
                mask: Tensor::full(&[3, 8, 8], 0.5),
                golden: golden.clone(),
                golden_centered: golden,
                center_px: (3.0, 4.0),
                family: ClipFamily::Chain1d,
            }],
        }
    }

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("lithogan_ds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.lgd");
        let ds = tiny_dataset();
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.config, ds.config);
        assert_eq!(loaded.samples.len(), 1);
        let (a, b) = (&loaded.samples[0], &ds.samples[0]);
        assert_eq!(a.clip, b.clip);
        assert_eq!(a.family, b.family);
        assert_eq!(a.center_px, b.center_px);
        assert_eq!(a.golden, b.golden);
        // Mask round-trips within quantisation error.
        for (x, y) in a.mask.as_slice().iter().zip(b.mask.as_slice()) {
            assert!((x - y).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("lithogan_ds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.lgd");
        std::fs::write(&path, b"not a dataset").unwrap();
        assert!(load_dataset(&path).is_err());
    }

    #[test]
    fn bit_packing_round_trip() {
        let mut img = Tensor::zeros(&[5, 5]);
        img.set(&[0, 0], 1.0).unwrap();
        img.set(&[4, 4], 1.0).unwrap();
        img.set(&[2, 3], 1.0).unwrap();
        let packed = pack_bits(&img);
        assert_eq!(packed.len(), 4); // 25 bits -> 4 bytes
        let back = unpack_bits(&packed, &[5, 5]).unwrap();
        assert_eq!(back, img);
    }
}
