//! Self-contained SVG dashboard for one run: training loss curves, the
//! per-sample EDE histogram (the paper's Figure 7), and a stage-latency
//! breakdown from the trace. No external assets, scripts or fonts — the
//! file renders anywhere an `<svg>` does.

use std::fmt::Write as _;

use crate::report::RunData;
use crate::trace::SpanAgg;

const WIDTH: f64 = 960.0;
const PANEL_H: f64 = 240.0;
const MARGIN: f64 = 48.0;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

struct Panel<'a> {
    out: &'a mut String,
    x0: f64,
    y0: f64,
    w: f64,
    h: f64,
}

impl Panel<'_> {
    fn frame(&mut self, title: &str) {
        let _ = writeln!(
            self.out,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#ffffff\" stroke=\"#d4d4d8\"/>",
            self.x0, self.y0, self.w, self.h
        );
        let _ = writeln!(
            self.out,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"title\">{}</text>",
            self.x0 + 8.0,
            self.y0 + 18.0,
            esc(title)
        );
    }

    fn note(&mut self, text: &str) {
        let _ = writeln!(
            self.out,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"note\">{}</text>",
            self.x0 + 8.0,
            self.y0 + self.h / 2.0,
            esc(text)
        );
    }
}

/// Inner plotting box of a panel (below the title strip).
fn plot_box(p: &Panel) -> (f64, f64, f64, f64) {
    (
        p.x0 + MARGIN,
        p.y0 + 30.0,
        p.w - MARGIN - 16.0,
        p.h - 30.0 - 28.0,
    )
}

fn loss_panel(panel: &mut Panel, run: &RunData) {
    panel.frame("training loss (per epoch)");
    let Some(t) = &run.trace else {
        panel.note("no trace — run with --metrics-out or without --no-run");
        return;
    };
    if t.epochs.is_empty() {
        panel.note("no train_epoch events in trace");
        return;
    }
    let (px, py, pw, ph) = plot_box(panel);
    let n = t.epochs.len();
    let values: Vec<f64> = t
        .epochs
        .iter()
        .flat_map(|e| [e.g_loss, e.d_loss])
        .filter(|v| v.is_finite())
        .collect();
    let vmax = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    let vmin = values.iter().cloned().fold(f64::MAX, f64::min).min(0.0);
    let sx = |i: usize| px + pw * if n > 1 { i as f64 / (n - 1) as f64 } else { 0.5 };
    let sy = |v: f64| py + ph * (1.0 - (v - vmin) / (vmax - vmin).max(1e-12));
    for (key, color) in [("g_loss", "#2563eb"), ("d_loss", "#dc2626")] {
        let mut points = String::new();
        for (i, e) in t.epochs.iter().enumerate() {
            let v = if key == "g_loss" { e.g_loss } else { e.d_loss };
            if !v.is_finite() {
                continue;
            }
            let _ = write!(points, "{:.1},{:.1} ", sx(i), sy(v));
        }
        let _ = writeln!(
            panel.out,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>",
            points.trim_end()
        );
    }
    // Axis labels: y extremes and x extent, plus a legend.
    let _ = writeln!(
        panel.out,
        "<text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\">{vmax:.2}</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\">{vmin:.2}</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\">epoch 0..{}</text>",
        panel.x0 + 6.0,
        py + 10.0,
        panel.x0 + 6.0,
        py + ph,
        px,
        py + ph + 16.0,
        n - 1
    );
    let _ = writeln!(
        panel.out,
        "<text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\" fill=\"#2563eb\">g_loss</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\" fill=\"#dc2626\">d_loss</text>",
        px + pw - 90.0,
        py + 12.0,
        px + pw - 40.0,
        py + 12.0
    );
}

fn ede_panel(panel: &mut Panel, run: &RunData) {
    panel.frame("EDE distribution (nm, per sample)");
    let values: Vec<f64> = run
        .records
        .iter()
        .filter_map(|r| r.ede_mean_nm)
        .filter(|v| v.is_finite())
        .collect();
    if values.is_empty() {
        panel.note("no per-sample EDE records");
        return;
    }
    let (px, py, pw, ph) = plot_box(panel);
    let vmax = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    const BINS: usize = 16;
    let mut bins = [0usize; BINS];
    for v in &values {
        let i = ((v / vmax) * BINS as f64) as usize;
        bins[i.min(BINS - 1)] += 1;
    }
    let peak = bins.iter().copied().max().unwrap_or(1).max(1) as f64;
    let bw = pw / BINS as f64;
    for (i, &count) in bins.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let h = ph * count as f64 / peak;
        let _ = writeln!(
            panel.out,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#0d9488\"/>",
            px + i as f64 * bw,
            py + ph - h,
            (bw - 1.0).max(0.5),
            h
        );
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let _ = writeln!(
        panel.out,
        "<text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\">0</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\" text-anchor=\"end\">{vmax:.2} nm</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\">n={} mean={mean:.2} nm</text>",
        px,
        py + ph + 16.0,
        px + pw,
        py + ph + 16.0,
        px,
        py + 12.0,
        values.len()
    );
}

fn latency_panel(panel: &mut Panel, run: &RunData) {
    panel.frame("stage latency (self time)");
    let Some(t) = &run.trace else {
        panel.note("no trace recorded for this run");
        return;
    };
    let mut spans: Vec<&SpanAgg> = t.spans.iter().filter(|s| s.self_us > 0.0).collect();
    spans.sort_by(|a, b| b.self_us.total_cmp(&a.self_us));
    spans.truncate(10);
    if spans.is_empty() {
        panel.note("no span events in trace");
        return;
    }
    let (px, py, pw, ph) = plot_box(panel);
    let vmax = spans[0].self_us.max(1e-9);
    let label_w = 220.0_f64.min(pw * 0.45);
    let row_h = (ph / spans.len() as f64).min(24.0);
    for (i, s) in spans.iter().enumerate() {
        let y = py + i as f64 * row_h;
        let w = (pw - label_w) * s.self_us / vmax;
        let _ = writeln!(
            panel.out,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\" text-anchor=\"end\">{}</text>\
             <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#7c3aed\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\">{}</text>",
            px + label_w - 6.0,
            y + row_h * 0.7,
            esc(&s.path),
            px + label_w,
            y + row_h * 0.15,
            w.max(1.0),
            row_h * 0.7,
            px + label_w + w.max(1.0) + 4.0,
            y + row_h * 0.7,
            crate::report::fmt_us(s.self_us)
        );
    }
}

/// Renders the dashboard for one run.
pub fn dashboard_svg(run: &RunData) -> String {
    let height = 40.0 + 3.0 * (PANEL_H + 12.0);
    let mut out = String::with_capacity(16 * 1024);
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         viewBox=\"0 0 {WIDTH} {height}\" font-family=\"sans-serif\">"
    );
    let _ = writeln!(
        out,
        "<style>.title{{font-size:13px;font-weight:bold;fill:#18181b}}\
         .note{{font-size:12px;fill:#71717a}}\
         .axis{{font-size:10px;fill:#52525b}}\
         .head{{font-size:15px;font-weight:bold;fill:#18181b}}</style>"
    );
    let _ = writeln!(
        out,
        "<rect x=\"0\" y=\"0\" width=\"{WIDTH}\" height=\"{height}\" fill=\"#fafafa\"/>"
    );
    let m = &run.manifest;
    let wall = m
        .wall_clock_s
        .map(|s| format!("{s:.2}s"))
        .unwrap_or_else(|| "-".to_string());
    let _ = writeln!(
        out,
        "<text x=\"16\" y=\"26\" class=\"head\">{} — {} ({}, wall {})</text>",
        esc(&m.run_id),
        esc(&m.command),
        esc(&m.status),
        esc(&wall)
    );
    for (i, draw) in [loss_panel, ede_panel, latency_panel].iter().enumerate() {
        let mut panel = Panel {
            out: &mut out,
            x0: 16.0,
            y0: 40.0 + i as f64 * (PANEL_H + 12.0),
            w: WIDTH - 32.0,
            h: PANEL_H,
        };
        draw(&mut panel, run);
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_markup() {
        assert_eq!(esc("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
