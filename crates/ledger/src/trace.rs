//! Analyzer for the `--metrics-out` JSONL stream of `litho-telemetry`.
//!
//! The stream is append-only and may end mid-line when a run is killed,
//! so parsing is line-tolerant: a malformed *final* line is counted as a
//! truncated tail, any other malformed line as skipped, and analysis
//! proceeds with whatever decoded. Span events arrive at span *close*
//! (children before parents, freely interleaved across threads); all
//! aggregation is order-independent.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::json::Json;

/// One decoded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the process' first telemetry touch.
    pub ts_us: u64,
    /// `span` / `counter` / `gauge` / `event` / `meta`.
    pub kind: String,
    /// Span path (`a/b/c`) or metric/event name.
    pub name: String,
    /// Remaining fields, undecoded.
    pub fields: Json,
}

impl TraceEvent {
    /// Decodes one already-parsed JSONL object; `None` when the required
    /// envelope fields (`ts_us`, `kind`, `name`) are missing. Public so
    /// incremental consumers ([`crate::watch`]) share the whole-file
    /// decoder's schema.
    pub fn from_json(v: &Json) -> Option<TraceEvent> {
        Some(TraceEvent {
            ts_us: v.get("ts_us")?.as_u64()?,
            kind: v.get("kind")?.as_str()?.to_string(),
            name: v.get("name")?.as_str()?.to_string(),
            fields: v.clone(),
        })
    }
}

/// Result of decoding a JSONL stream.
#[derive(Debug, Default, Clone)]
pub struct TraceParse {
    pub events: Vec<TraceEvent>,
    /// Malformed non-final lines (corruption, not truncation).
    pub skipped_lines: usize,
    /// True when the final line failed to decode — the signature of a
    /// killed run.
    pub truncated_tail: bool,
}

/// Decodes a JSONL trace from a string (truncation-tolerant, via the
/// shared [`litho_json::jsonl`] machinery).
pub fn parse_trace_str(text: &str) -> TraceParse {
    let parse = litho_json::jsonl::parse_jsonl_with(text, TraceEvent::from_json);
    TraceParse {
        events: parse.records,
        skipped_lines: parse.skipped_lines,
        truncated_tail: parse.truncated_tail,
    }
}

/// Decodes a JSONL trace from a file.
///
/// # Errors
///
/// Propagates I/O errors (malformed *content* never errors).
pub fn parse_trace_file(path: &Path) -> io::Result<TraceParse> {
    Ok(parse_trace_str(&std::fs::read_to_string(path)?))
}

/// Aggregate timing of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAgg {
    /// Full `/`-separated path.
    pub path: String,
    pub count: u64,
    /// Sum of all durations, µs.
    pub total_us: f64,
    /// Total minus the totals of direct children, µs — the time spent in
    /// this span's own code.
    pub self_us: f64,
    /// Exact quantiles over the recorded durations, µs.
    pub min_us: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
    /// Sum of the `flops` cost annotations across this path's spans
    /// (0 when the kernel carried no cost model).
    pub flops: u64,
    /// Sum of the `bytes` cost annotations across this path's spans.
    pub bytes: u64,
}

impl SpanAgg {
    /// Achieved GFLOP/s over the aggregate (annotated FLOPs over total
    /// span time); `None` when no cost annotations were recorded.
    pub fn gflops(&self) -> Option<f64> {
        (self.flops > 0 && self.total_us > 0.0).then(|| self.flops as f64 / self.total_us / 1e3)
    }

    /// Arithmetic intensity (FLOPs per byte) of the aggregate; `None`
    /// when no byte annotations were recorded.
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        (self.bytes > 0).then(|| self.flops as f64 / self.bytes as f64)
    }
}

/// One point of the training loss curve, from `train_epoch` events.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPoint {
    pub epoch: u64,
    pub g_loss: f64,
    pub d_loss: f64,
}

/// One hop of the critical path (see [`TraceAnalysis::critical_path`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalHop {
    pub path: String,
    pub total_us: f64,
    /// This hop's share of its parent's total (1.0 for the root).
    pub fraction_of_parent: f64,
}

/// Everything the analyzer extracts from one trace.
#[derive(Debug, Default, Clone)]
pub struct TraceAnalysis {
    /// Per-path aggregates, sorted by path (children follow parents).
    pub spans: Vec<SpanAgg>,
    /// Final counter values (sum of deltas).
    pub counters: Vec<(String, u64)>,
    /// Training loss curve, ordered by event time.
    pub epochs: Vec<EpochPoint>,
    /// `run_meta` fields, stringified.
    pub meta: Vec<(String, String)>,
    /// Run id attached to the events, if any.
    pub run_id: Option<String>,
    /// Largest event timestamp, µs — a lower bound on the traced
    /// wall-clock.
    pub span_of_time_us: u64,
    pub skipped_lines: usize,
    pub truncated_tail: bool,
}

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Aggregates a decoded trace.
pub fn analyze(parse: &TraceParse) -> TraceAnalysis {
    let mut durations: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut costs: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut analysis = TraceAnalysis {
        skipped_lines: parse.skipped_lines,
        truncated_tail: parse.truncated_tail,
        ..TraceAnalysis::default()
    };
    for ev in &parse.events {
        analysis.span_of_time_us = analysis.span_of_time_us.max(ev.ts_us);
        if analysis.run_id.is_none() {
            if let Some(run) = ev.fields.get("run").and_then(Json::as_str) {
                analysis.run_id = Some(run.to_string());
            }
        }
        match ev.kind.as_str() {
            "span" => {
                if let Some(dur) = ev.fields.get("dur_us").and_then(Json::as_f64) {
                    durations.entry(ev.name.clone()).or_default().push(dur);
                    let flops = ev.fields.get("flops").and_then(Json::as_u64).unwrap_or(0);
                    let bytes = ev.fields.get("bytes").and_then(Json::as_u64).unwrap_or(0);
                    if flops > 0 || bytes > 0 {
                        let slot = costs.entry(ev.name.clone()).or_insert((0, 0));
                        slot.0 += flops;
                        slot.1 += bytes;
                    }
                }
            }
            "counter" => {
                if let Some(delta) = ev.fields.get("delta").and_then(Json::as_u64) {
                    *counters.entry(ev.name.clone()).or_insert(0) += delta;
                }
            }
            "event" if ev.name == "train_epoch" => {
                if let (Some(epoch), Some(g), Some(d)) = (
                    ev.fields.get("epoch").and_then(Json::as_u64),
                    ev.fields.get("g_loss").and_then(Json::as_f64),
                    ev.fields.get("d_loss").and_then(Json::as_f64),
                ) {
                    analysis.epochs.push(EpochPoint {
                        epoch,
                        g_loss: g,
                        d_loss: d,
                    });
                }
            }
            "meta" => {
                if let Json::Obj(members) = &ev.fields {
                    for (k, v) in members {
                        if matches!(k.as_str(), "ts_us" | "kind" | "name") {
                            continue;
                        }
                        let text = match v {
                            Json::Str(s) => s.clone(),
                            other => other.to_string_compact(),
                        };
                        analysis.meta.push((k.clone(), text));
                    }
                }
            }
            _ => {}
        }
    }

    // Per-path totals first, so self time can subtract direct children.
    let totals: BTreeMap<&str, f64> = durations
        .iter()
        .map(|(path, durs)| (path.as_str(), durs.iter().sum()))
        .collect();
    for (path, durs) in &durations {
        let mut sorted = durs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let total: f64 = sorted.iter().sum();
        let children: f64 = totals
            .iter()
            .filter(|(p, _)| is_direct_child(path, p))
            .map(|(_, t)| *t)
            .sum();
        analysis.spans.push(SpanAgg {
            path: path.clone(),
            count: sorted.len() as u64,
            total_us: total,
            // Nested spans on *other threads* can overlap the parent, so
            // clamp instead of going negative.
            self_us: (total - children).max(0.0),
            min_us: sorted.first().copied().unwrap_or(0.0),
            p50_us: exact_quantile(&sorted, 0.50),
            p95_us: exact_quantile(&sorted, 0.95),
            p99_us: exact_quantile(&sorted, 0.99),
            max_us: sorted.last().copied().unwrap_or(0.0),
            flops: costs.get(path).map_or(0, |c| c.0),
            bytes: costs.get(path).map_or(0, |c| c.1),
        });
    }
    analysis.counters = counters.into_iter().collect();
    analysis
}

fn is_direct_child(parent: &str, candidate: &str) -> bool {
    candidate
        .strip_prefix(parent)
        .and_then(|rest| rest.strip_prefix('/'))
        .is_some_and(|leaf| !leaf.contains('/'))
}

impl TraceAnalysis {
    pub fn span(&self, path: &str) -> Option<&SpanAgg> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The dominant chain of spans: starting from the most expensive root,
    /// repeatedly descend into the most expensive direct child. Each hop
    /// reports its share of the parent's total, so the output reads as
    /// "where did the time go".
    pub fn critical_path(&self) -> Vec<CriticalHop> {
        let mut chain = Vec::new();
        let root = self
            .spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .max_by(|a, b| a.total_us.total_cmp(&b.total_us));
        let Some(mut here) = root else {
            return chain;
        };
        chain.push(CriticalHop {
            path: here.path.clone(),
            total_us: here.total_us,
            fraction_of_parent: 1.0,
        });
        loop {
            let next = self
                .spans
                .iter()
                .filter(|s| is_direct_child(&here.path, &s.path))
                .max_by(|a, b| a.total_us.total_cmp(&b.total_us));
            let Some(child) = next else {
                return chain;
            };
            chain.push(CriticalHop {
                path: child.path.clone(),
                total_us: child.total_us,
                fraction_of_parent: if here.total_us > 0.0 {
                    child.total_us / here.total_us
                } else {
                    0.0
                },
            });
            here = child;
        }
    }
}

/// Convenience: decode and aggregate a trace file in one step.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn analyze_file(path: &Path) -> io::Result<TraceAnalysis> {
    Ok(analyze(&parse_trace_file(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(ts: u64, name: &str, dur_us: f64, depth: u64) -> String {
        format!(
            "{{\"ts_us\":{ts},\"kind\":\"span\",\"name\":\"{name}\",\"dur_us\":{dur_us},\"depth\":{depth}}}"
        )
    }

    #[test]
    fn aggregates_self_time_and_quantiles() {
        let mut text = String::new();
        // Two pipeline runs; children close before parents.
        for ts in [100u64, 200] {
            text.push_str(&span_line(ts, "pipeline/optical", 30.0, 1));
            text.push('\n');
            text.push_str(&span_line(ts + 1, "pipeline/resist", 10.0, 1));
            text.push('\n');
            text.push_str(&span_line(ts + 2, "pipeline", 50.0, 0));
            text.push('\n');
        }
        let analysis = analyze(&parse_trace_str(&text));
        let p = analysis.span("pipeline").unwrap();
        assert_eq!(p.count, 2);
        assert_eq!(p.total_us, 100.0);
        assert_eq!(p.self_us, 20.0); // 100 - (60 + 20)
        let o = analysis.span("pipeline/optical").unwrap();
        assert_eq!(o.self_us, o.total_us);
        assert_eq!(o.p50_us, 30.0);
        assert_eq!(o.max_us, 30.0);

        let chain = analysis.critical_path();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].path, "pipeline");
        assert_eq!(chain[1].path, "pipeline/optical");
        assert!((chain[1].fraction_of_parent - 0.6).abs() < 1e-12);
    }

    #[test]
    fn counters_sum_and_epochs_extracted() {
        let text = "\
{\"ts_us\":1,\"kind\":\"counter\",\"name\":\"clips\",\"delta\":2}\n\
{\"ts_us\":2,\"kind\":\"counter\",\"name\":\"clips\",\"delta\":3}\n\
{\"ts_us\":3,\"kind\":\"event\",\"name\":\"train_epoch\",\"epoch\":0,\"g_loss\":2.5,\"d_loss\":0.7}\n\
{\"ts_us\":4,\"kind\":\"meta\",\"name\":\"run_meta\",\"bin\":\"cli\",\"threads\":8,\"run\":\"train-1-2\"}\n";
        let analysis = analyze(&parse_trace_str(text));
        assert_eq!(analysis.counters, vec![("clips".to_string(), 5)]);
        assert_eq!(analysis.epochs.len(), 1);
        assert_eq!(analysis.epochs[0].g_loss, 2.5);
        assert_eq!(analysis.run_id.as_deref(), Some("train-1-2"));
        assert!(analysis
            .meta
            .iter()
            .any(|(k, v)| k == "threads" && v == "8"));
        assert_eq!(analysis.span_of_time_us, 4);
    }

    #[test]
    fn cost_annotations_aggregate_per_path() {
        let text = "\
{\"ts_us\":1,\"kind\":\"span\",\"name\":\"gemm[4x4x4]\",\"dur_us\":500.0,\"depth\":0,\"flops\":1000000,\"bytes\":4000}\n\
{\"ts_us\":2,\"kind\":\"span\",\"name\":\"gemm[4x4x4]\",\"dur_us\":500.0,\"depth\":0,\"flops\":1000000,\"bytes\":4000}\n\
{\"ts_us\":3,\"kind\":\"span\",\"name\":\"plain\",\"dur_us\":10.0,\"depth\":0}\n";
        let analysis = analyze(&parse_trace_str(text));
        let g = analysis.span("gemm[4x4x4]").unwrap();
        assert_eq!(g.flops, 2_000_000);
        assert_eq!(g.bytes, 8_000);
        // 2e6 FLOPs over 1000 µs = 2 GFLOP/s; AI = 250.
        assert!((g.gflops().unwrap() - 2.0).abs() < 1e-9);
        assert!((g.arithmetic_intensity().unwrap() - 250.0).abs() < 1e-9);
        let p = analysis.span("plain").unwrap();
        assert_eq!((p.flops, p.bytes), (0, 0));
        assert_eq!(p.gflops(), None);
        assert_eq!(p.arithmetic_intensity(), None);
    }

    #[test]
    fn exact_quantiles_on_known_sequence() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(exact_quantile(&sorted, 0.50), 50.0);
        assert_eq!(exact_quantile(&sorted, 0.95), 95.0);
        assert_eq!(exact_quantile(&sorted, 0.99), 99.0);
        assert_eq!(exact_quantile(&sorted, 1.0), 100.0);
        assert_eq!(exact_quantile(&[], 0.5), 0.0);
    }
}
