//! Fleet state for the `lithogan_cli dash` observability daemon.
//!
//! Two pieces live here rather than in the daemon binary because they
//! are pure ledger logic and want ledger-level tests:
//!
//! * [`LiveTails`] — discovery + incremental tailing of *in-flight*
//!   runs. Running runs are not in `runs/index.jsonl` (the index is
//!   appended at finalize), so discovery scans run directories for
//!   `status: "running"` manifests and attaches a [`WatchSession`] to
//!   each, reusing the truncation-tolerant `JsonlTailer` so a `/metrics`
//!   scrape racing a writer never sees a torn line.
//! * [`prometheus_exposition`] — renders the fleet (index records +
//!   live snapshots + the dash's own request accounting) in Prometheus
//!   text exposition format 0.0.4. It is a pure function of its inputs,
//!   which is what makes the golden test possible: same fixtures in,
//!   byte-identical exposition out. Absent values emit *no sample* —
//!   never `NaN` — matching the ledger's absent-not-null convention.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use crate::index::{scan_run_dirs, IndexRecord};
use crate::manifest::load_manifest;
use crate::trend::{trend, TrendConfig};
use crate::watch::{WatchSession, WatchSnapshot};

/// The headline metrics the dash exposes per command
/// (`lithogan_latest_metric`) and runs the drift detector over
/// (`lithogan_drift_active`). A fixed list keeps the exposition schema
/// stable for scrapers and golden tests.
pub const DASH_TREND_METRICS: [&str; 3] = ["ede_mean_nm", "samples_per_sec", "pool_utilization"];

/// Incremental follower of every in-flight run under a runs root.
#[derive(Debug)]
pub struct LiveTails {
    root: PathBuf,
    /// Run id to never tail — the dash's own still-running ledger entry.
    exclude: Option<String>,
    /// Keyed by run id; `BTreeMap` so snapshots come out in a stable
    /// order for the exposition.
    sessions: BTreeMap<String, WatchSession>,
}

impl LiveTails {
    /// Aims at a runs root. `exclude` is the daemon's own run id.
    pub fn new(root: impl Into<PathBuf>, exclude: Option<String>) -> LiveTails {
        LiveTails {
            root: root.into(),
            exclude,
            sessions: BTreeMap::new(),
        }
    }

    /// One poll: rescan for newly-started runs, drain every tailer, drop
    /// finished runs. Returns `(run_id, snapshot)` pairs for the runs
    /// still in flight, in run-id order.
    ///
    /// A run whose directory vanished mid-poll (`runs gc`) is silently
    /// dropped — a scrape must not 500 because the fleet churned.
    ///
    /// # Errors
    ///
    /// Propagates only the directory-scan error; per-run tail errors
    /// retire that run's session instead.
    pub fn poll(&mut self) -> io::Result<Vec<(String, WatchSnapshot)>> {
        for dir in scan_run_dirs(&self.root)? {
            let Ok(manifest) = load_manifest(&dir) else {
                continue;
            };
            if manifest.status != "running" {
                continue;
            }
            if self.exclude.as_deref() == Some(manifest.run_id.as_str()) {
                continue;
            }
            self.sessions
                .entry(manifest.run_id)
                .or_insert_with(|| WatchSession::new(&dir));
        }
        let mut live = Vec::new();
        let mut retire = Vec::new();
        for (id, session) in &mut self.sessions {
            match session.poll() {
                Ok(snap) if snap.finished => retire.push(id.clone()),
                Ok(snap) => live.push((id.clone(), snap)),
                Err(_) => retire.push(id.clone()),
            }
        }
        for id in retire {
            self.sessions.remove(&id);
        }
        Ok(live)
    }
}

/// A latency summary over the dash's own request handling, fed from the
/// telemetry histogram snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub sum_s: f64,
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
}

/// The dash daemon's own request accounting, exposed so the dash is
/// observable by the same scraper that watches the fleet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DashSelfMetrics {
    pub uptime_s: f64,
    pub requests_total: u64,
    /// `(status code, count)` pairs, any order (sorted on render).
    pub responses_by_code: Vec<(u16, u64)>,
    pub latency: Option<LatencySummary>,
}

/// Escapes a label value per the exposition format: backslash, quote
/// and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `aborted(nan-poisoned)` → `aborted`, so the status label set stays
/// bounded regardless of abort reasons.
fn normalize_status(status: &str) -> &str {
    if status.starts_with("aborted") {
        "aborted"
    } else {
        status
    }
}

/// Formats a sample value: finite shortest-round-trip floats; the
/// exposition format spells the IEEE specials `NaN`/`+Inf`/`-Inf`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {}", fmt_value(value));
}

/// Renders the fleet in Prometheus text exposition format 0.0.4.
///
/// * `records` — the decoded index, chronological (as
///   [`crate::load_index`] returns it);
/// * `live` — in-flight snapshots from [`LiveTails::poll`];
/// * `dash_self` — the daemon's own accounting, `None` in pure-fleet
///   renders (golden tests);
/// * `cfg` — drift-detector tuning shared with `runs trend`.
///
/// Schema (see DESIGN §4f): fleet families are always present (HELP/TYPE
/// even with zero samples), live families only while runs are in flight,
/// self families only with `dash_self`. A run that never recorded a
/// metric contributes no sample — absent, not `NaN`.
pub fn prometheus_exposition(
    records: &[IndexRecord],
    live: &[(String, WatchSnapshot)],
    dash_self: Option<&DashSelfMetrics>,
    cfg: &TrendConfig,
) -> String {
    let mut out = String::new();

    // Run counts by (normalized) status.
    family(
        &mut out,
        "lithogan_runs_total",
        "gauge",
        "Runs in the fleet index by status.",
    );
    let mut by_status: BTreeMap<&str, u64> = BTreeMap::new();
    for rec in records {
        *by_status.entry(normalize_status(&rec.status)).or_default() += 1;
    }
    for (status, count) in &by_status {
        sample(
            &mut out,
            "lithogan_runs_total",
            &[("status", status)],
            *count as f64,
        );
    }

    // Latest headline metric per command: the most recent run of each
    // command that actually recorded the metric.
    family(
        &mut out,
        "lithogan_latest_metric",
        "gauge",
        "Latest recorded headline metric per command.",
    );
    let mut commands: Vec<&str> = records.iter().map(|r| r.command.as_str()).collect();
    commands.sort_unstable();
    commands.dedup();
    for command in commands {
        for metric in DASH_TREND_METRICS {
            let latest = records
                .iter()
                .rev()
                .filter(|r| r.command == command)
                .find_map(|r| r.metric(metric));
            if let Some(value) = latest {
                sample(
                    &mut out,
                    "lithogan_latest_metric",
                    &[("command", command), ("metric", metric)],
                    value,
                );
            }
        }
    }

    // Per-clip-family slices of the headline metrics, joined back out of
    // the slice-qualified index keys (`ede_mean_nm{family=chain1d}`).
    // Like the latest-metric family: newest run of the command that
    // recorded the slice wins, and an absent slice emits no sample.
    family(
        &mut out,
        "lithogan_slice_metric",
        "gauge",
        "Latest per-clip-family slice of a headline metric, per command.",
    );
    let mut commands: Vec<&str> = records.iter().map(|r| r.command.as_str()).collect();
    commands.sort_unstable();
    commands.dedup();
    for command in commands {
        let mut keys: Vec<&str> = records
            .iter()
            .filter(|r| r.command == command)
            .flat_map(|r| r.metrics.iter().map(|(k, _)| k.as_str()))
            .filter(|k| crate::index::split_slice_key(k).is_some())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let latest = records
                .iter()
                .rev()
                .filter(|r| r.command == command)
                .find_map(|r| r.metric(key));
            if let Some(value) = latest {
                let (metric, fam) = crate::index::split_slice_key(key).expect("filtered above");
                sample(
                    &mut out,
                    "lithogan_slice_metric",
                    &[("command", command), ("metric", metric), ("family", fam)],
                    value,
                );
            }
        }
    }

    // Drift-detector state, same machinery as `runs trend --gate`.
    let drifts: Vec<_> = DASH_TREND_METRICS
        .iter()
        .map(|metric| (*metric, trend(records, metric, None, cfg).drift))
        .collect();
    family(
        &mut out,
        "lithogan_drift_active",
        "gauge",
        "1 when the streak drift detector has confirmed a regression for the metric.",
    );
    for (metric, drift) in &drifts {
        sample(
            &mut out,
            "lithogan_drift_active",
            &[("metric", metric)],
            if drift.is_some() { 1.0 } else { 0.0 },
        );
    }
    if drifts.iter().any(|(_, d)| d.is_some()) {
        family(
            &mut out,
            "lithogan_drift_streak_runs",
            "gauge",
            "Length of the confirmed off-median streak, in runs.",
        );
        for (metric, drift) in &drifts {
            if let Some(drift) = drift {
                sample(
                    &mut out,
                    "lithogan_drift_streak_runs",
                    &[("metric", metric)],
                    drift.runs as f64,
                );
            }
        }
    }

    // Live gauges for in-flight runs, tailed incrementally.
    if !live.is_empty() {
        family(
            &mut out,
            "lithogan_live_epochs_total",
            "gauge",
            "Training epochs completed so far by an in-flight run.",
        );
        for (id, snap) in live {
            sample(
                &mut out,
                "lithogan_live_epochs_total",
                &[("run", id)],
                snap.epochs_done as f64,
            );
        }
        family(
            &mut out,
            "lithogan_live_loss",
            "gauge",
            "Latest generator/discriminator loss of an in-flight run.",
        );
        for (id, snap) in live {
            if let Some(e) = &snap.last_epoch {
                sample(
                    &mut out,
                    "lithogan_live_loss",
                    &[("run", id), ("net", "g")],
                    e.g_loss,
                );
                sample(
                    &mut out,
                    "lithogan_live_loss",
                    &[("run", id), ("net", "d")],
                    e.d_loss,
                );
            }
        }
        family(
            &mut out,
            "lithogan_live_pool_utilization",
            "gauge",
            "Latest worker-pool utilization gauge of an in-flight run (0..1).",
        );
        for (id, snap) in live {
            if let Some(util) = snap.pool_utilization {
                sample(
                    &mut out,
                    "lithogan_live_pool_utilization",
                    &[("run", id)],
                    util,
                );
            }
        }
    }

    // The dash's own accounting.
    if let Some(me) = dash_self {
        family(
            &mut out,
            "lithogan_dash_uptime_seconds",
            "gauge",
            "Seconds since the dash daemon started.",
        );
        sample(&mut out, "lithogan_dash_uptime_seconds", &[], me.uptime_s);
        family(
            &mut out,
            "lithogan_dash_http_requests_total",
            "counter",
            "HTTP requests handled by the dash daemon.",
        );
        sample(
            &mut out,
            "lithogan_dash_http_requests_total",
            &[],
            me.requests_total as f64,
        );
        family(
            &mut out,
            "lithogan_dash_http_responses_total",
            "counter",
            "HTTP responses by status code.",
        );
        let mut codes = me.responses_by_code.clone();
        codes.sort_unstable();
        for (code, count) in codes {
            sample(
                &mut out,
                "lithogan_dash_http_responses_total",
                &[("code", &code.to_string())],
                count as f64,
            );
        }
        if let Some(lat) = &me.latency {
            family(
                &mut out,
                "lithogan_dash_http_request_seconds",
                "summary",
                "Dash request handling latency.",
            );
            for (q, v) in [("0.5", lat.p50_s), ("0.95", lat.p95_s), ("0.99", lat.p99_s)] {
                sample(
                    &mut out,
                    "lithogan_dash_http_request_seconds",
                    &[("quantile", q)],
                    v,
                );
            }
            sample(
                &mut out,
                "lithogan_dash_http_request_seconds_sum",
                &[],
                lat.sum_s,
            );
            sample(
                &mut out,
                "lithogan_dash_http_request_seconds_count",
                &[],
                lat.count as f64,
            );
        }
    }
    out
}

/// The minimal HTML fleet page behind `GET /`: one row per indexed run
/// linking its JSON and SVG views, newest first. `banner` is a
/// pre-rendered (already escaped) HTML fragment inserted above the
/// table — the dash passes the firing-alerts banner here so this crate
/// stays independent of the alert engine; pass `""` for none.
pub fn fleet_html(
    records: &[IndexRecord],
    live: &[(String, WatchSnapshot)],
    banner: &str,
) -> String {
    let mut rows = String::new();
    for (id, snap) in live {
        let _ = write!(
            rows,
            "<tr><td><code>{id}</code></td><td>{}</td><td>running</td>\
             <td>epoch {}</td><td><a href=\"/api/runs/{id}\">json</a></td></tr>",
            escape_html(snap.command.as_deref().unwrap_or("?")),
            snap.epochs_done,
        );
    }
    for rec in records.iter().rev() {
        let metrics = DASH_TREND_METRICS
            .iter()
            .filter_map(|m| rec.metric(m).map(|v| format!("{m} {v:.3}")))
            .collect::<Vec<_>>()
            .join(", ");
        let id = escape_html(&rec.run_id);
        let _ = write!(
            rows,
            "<tr><td><code>{id}</code></td><td>{}</td><td>{}</td><td>{}</td>\
             <td><a href=\"/api/runs/{id}\">json</a> \
             <a href=\"/api/eval/{id}\">eval</a> \
             <a href=\"/runs/{id}/dashboard.svg\">dashboard</a> \
             <a href=\"/runs/{id}/triage.svg\">triage</a> \
             <a href=\"/runs/{id}/health.svg\">health</a> \
             <a href=\"/runs/{id}/trend.svg\">trend</a> \
             <a href=\"/runs/{id}/flamegraph.svg\">flamegraph</a></td></tr>",
            escape_html(&rec.command),
            escape_html(&rec.status),
            escape_html(&metrics),
        );
    }
    format!(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>lithogan fleet</title>\
         <style>body{{font:14px system-ui;margin:2em}}table{{border-collapse:collapse}}\
         td,th{{border:1px solid #ccc;padding:4px 8px;text-align:left}}</style>\
         </head><body><h1>lithogan fleet</h1>\
         <p><a href=\"/metrics\">/metrics</a> · <a href=\"/api/runs\">/api/runs</a> · \
         <a href=\"/api/alerts\">/api/alerts</a></p>\
         {banner}\
         <table><tr><th>run</th><th>command</th><th>status</th><th>metrics</th>\
         <th>views</th></tr>{rows}</table></body></html>"
    )
}

fn escape_html(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::INDEX_SCHEMA;
    use std::fs;

    fn rec(id: &str, command: &str, started: u64, status: &str, metrics: &[(&str, f64)]) -> IndexRecord {
        IndexRecord {
            schema_version: INDEX_SCHEMA,
            run_id: id.to_string(),
            command: command.to_string(),
            started_unix_s: started,
            seed: None,
            dataset_fingerprint: None,
            status: status.to_string(),
            wall_clock_s: Some(1.0),
            simd: None,
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            health: None,
        }
    }

    #[test]
    fn exposition_counts_statuses_and_normalizes_aborts() {
        let records = vec![
            rec("a", "train", 1, "ok", &[]),
            rec("b", "train", 2, "aborted(nan-poisoned)", &[]),
            rec("c", "eval", 3, "error", &[]),
            rec("d", "train", 4, "ok", &[]),
        ];
        let text = prometheus_exposition(&records, &[], None, &TrendConfig::default());
        assert!(text.contains("lithogan_runs_total{status=\"ok\"} 2\n"), "{text}");
        assert!(text.contains("lithogan_runs_total{status=\"aborted\"} 1\n"));
        assert!(text.contains("lithogan_runs_total{status=\"error\"} 1\n"));
        assert!(text.contains("# TYPE lithogan_runs_total gauge\n"));
    }

    #[test]
    fn latest_metric_is_per_command_and_absent_fields_emit_no_sample() {
        let records = vec![
            rec("t1", "train", 1, "ok", &[("ede_mean_nm", 8.0), ("pool_utilization", 0.5)]),
            // Newest train run lacks pool_utilization: the latest sample
            // for it falls back to t1, and no NaN ever appears.
            rec("t2", "train", 2, "ok", &[("ede_mean_nm", 6.5)]),
            rec("e1", "eval", 3, "ok", &[("samples_per_sec", 42.0)]),
        ];
        let text = prometheus_exposition(&records, &[], None, &TrendConfig::default());
        assert!(text
            .contains("lithogan_latest_metric{command=\"train\",metric=\"ede_mean_nm\"} 6.5\n"));
        assert!(text
            .contains("lithogan_latest_metric{command=\"train\",metric=\"pool_utilization\"} 0.5\n"));
        assert!(text
            .contains("lithogan_latest_metric{command=\"eval\",metric=\"samples_per_sec\"} 42\n"));
        assert!(
            !text.contains("NaN"),
            "absent metrics must be absent, not NaN: {text}"
        );
        assert!(!text.contains("command=\"eval\",metric=\"ede_mean_nm\""));
    }

    #[test]
    fn slice_metrics_join_family_out_of_the_key() {
        let records = vec![
            rec(
                "t1",
                "train",
                1,
                "ok",
                &[
                    ("ede_mean_nm", 4.0),
                    ("ede_mean_nm{family=isolated}", 3.0),
                    ("ede_mean_nm{family=chain1d}", 5.0),
                ],
            ),
            // Newest run lacks the chain1d slice (no chain1d clips in its
            // split): the chain1d sample falls back to t1, never NaN.
            rec(
                "t2",
                "train",
                2,
                "ok",
                &[("ede_mean_nm", 4.5), ("ede_mean_nm{family=isolated}", 3.5)],
            ),
        ];
        let text = prometheus_exposition(&records, &[], None, &TrendConfig::default());
        assert!(text.contains("# TYPE lithogan_slice_metric gauge\n"), "{text}");
        assert!(text.contains(
            "lithogan_slice_metric{command=\"train\",metric=\"ede_mean_nm\",family=\"isolated\"} 3.5\n"
        ));
        assert!(text.contains(
            "lithogan_slice_metric{command=\"train\",metric=\"ede_mean_nm\",family=\"chain1d\"} 5\n"
        ));
        assert!(!text.contains("NaN"));
        // The aggregate key stays out of the slice family.
        assert!(!text.contains("lithogan_slice_metric{command=\"train\",metric=\"ede_mean_nm\"} "));
    }

    #[test]
    fn drift_state_follows_the_trend_detector() {
        // Four clean runs around 6.5 nm then two at 9+: with the default
        // tol/streak config that is a confirmed drift.
        let records: Vec<IndexRecord> = [6.4, 6.5, 6.6, 6.5, 9.2, 9.5]
            .iter()
            .enumerate()
            .map(|(i, v)| {
                rec(
                    &format!("t{i}"),
                    "train",
                    i as u64,
                    "ok",
                    &[("ede_mean_nm", *v)],
                )
            })
            .collect();
        let text = prometheus_exposition(&records, &[], None, &TrendConfig::default());
        assert!(text.contains("lithogan_drift_active{metric=\"ede_mean_nm\"} 1\n"), "{text}");
        assert!(text.contains("lithogan_drift_streak_runs{metric=\"ede_mean_nm\"} 2\n"));
        assert!(text.contains("lithogan_drift_active{metric=\"samples_per_sec\"} 0\n"));
    }

    #[test]
    fn self_metrics_render_as_counters_and_summary() {
        let me = DashSelfMetrics {
            uptime_s: 12.5,
            requests_total: 7,
            responses_by_code: vec![(404, 1), (200, 6)],
            latency: Some(LatencySummary {
                count: 7,
                sum_s: 0.014,
                p50_s: 0.001,
                p95_s: 0.004,
                p99_s: 0.004,
            }),
        };
        let text = prometheus_exposition(&[], &[], Some(&me), &TrendConfig::default());
        assert!(text.contains("# TYPE lithogan_dash_http_requests_total counter\n"));
        assert!(text.contains("lithogan_dash_http_requests_total 7\n"));
        // Codes sorted regardless of insertion order.
        let p200 = text.find("code=\"200\"").unwrap();
        let p404 = text.find("code=\"404\"").unwrap();
        assert!(p200 < p404);
        assert!(text.contains("# TYPE lithogan_dash_http_request_seconds summary\n"));
        assert!(text.contains("lithogan_dash_http_request_seconds{quantile=\"0.5\"} 0.001\n"));
        assert!(text.contains("lithogan_dash_http_request_seconds_count 7\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let records = vec![rec("r\"1\"", "tr\\ain", 1, "ok", &[("ede_mean_nm", 1.0)])];
        let html = fleet_html(&records, &[], "");
        assert!(html.contains("<code>r\"1\"</code>"));
        let bannered = fleet_html(&records, &[], "<div class=\"alerts\">1 firing</div>");
        assert!(bannered.contains("<div class=\"alerts\">1 firing</div>"));
        let text = prometheus_exposition(&records, &[], None, &TrendConfig::default());
        assert!(text.contains("command=\"tr\\\\ain\""), "{text}");
    }

    #[test]
    fn live_tails_discover_running_runs_and_drop_finished() {
        let root = std::env::temp_dir().join(format!("litho_dash_live_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let write = |id: &str, status: &str| {
            let dir = root.join(id);
            fs::create_dir_all(&dir).unwrap();
            fs::write(
                dir.join("manifest.json"),
                format!(
                    "{{\"schema_version\":2,\"run_id\":\"{id}\",\"command\":\"train\",\
                     \"started_unix_s\":1,\"config\":{{}},\"status\":\"{status}\"}}\n"
                ),
            )
            .unwrap();
        };
        write("train-1-1", "running");
        write("train-2-2", "ok");
        write("dash-3-3", "running");

        let mut tails = LiveTails::new(&root, Some("dash-3-3".to_string()));
        let live = tails.poll().unwrap();
        assert_eq!(live.len(), 1, "only the foreign running run");
        assert_eq!(live[0].0, "train-1-1");

        // Epoch events stream in between polls.
        fs::write(
            root.join("train-1-1/trace.jsonl"),
            "{\"ts_us\":1000,\"kind\":\"event\",\"name\":\"train_epoch\",\
             \"epoch\":0,\"g_loss\":2.0,\"d_loss\":0.9}\n",
        )
        .unwrap();
        let live = tails.poll().unwrap();
        assert_eq!(live[0].1.epochs_done, 1);

        // Exposition surfaces the live run.
        let text = prometheus_exposition(&[], &live, None, &TrendConfig::default());
        assert!(text.contains("lithogan_live_epochs_total{run=\"train-1-1\"} 1\n"));
        assert!(text.contains("lithogan_live_loss{run=\"train-1-1\",net=\"g\"} 2\n"));

        // Finishing retires the session; live families disappear.
        write("train-1-1", "ok");
        assert!(tails.poll().unwrap().is_empty());
        let text = prometheus_exposition(&[], &[], None, &TrendConfig::default());
        assert!(!text.contains("lithogan_live_epochs_total"));

        fs::remove_dir_all(&root).ok();
    }
}
