//! Run manifests and the `runs/<id>/` directory layout.
//!
//! Every `train` / `eval` / `predict` / bench invocation opens a
//! [`RunLedger`], which
//!
//! 1. creates `runs/<id>/` (id = `<command>-<unix-seconds>-<pid>`),
//! 2. writes `manifest.json` immediately (status `"running"`, so killed
//!    runs are distinguishable from completed ones),
//! 3. appends per-sample [`SampleRecord`]s to `samples.jsonl`,
//! 4. rewrites the manifest with status and wall-clock on
//!    [`RunLedger::finalize`].
//!
//! The telemetry JSONL stream (`trace.jsonl` by default) lands in the same
//! directory, so one `runs/<id>/` is a complete, comparable artifact.

use std::fs;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use litho_metrics::{MetricAccumulator, SampleRecord};

use crate::json::Json;

/// Manifest schema version, bumped on incompatible layout changes.
/// Version 2 renamed the field itself from `schema` to `schema_version`
/// (matching the index records); the parser accepts both spellings and
/// treats a manifest with neither as version 1.
pub const MANIFEST_SCHEMA: u32 = 2;

/// Identity of the dataset a run consumed. The fingerprint is an FNV-1a
/// 64-bit hash of the dataset file bytes, so two runs are comparable only
/// when their fingerprints match.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    /// Path as given on the command line.
    pub path: String,
    /// FNV-1a 64 hash of the file contents, hex.
    pub fingerprint: String,
    /// File size, bytes.
    pub bytes: u64,
    /// Sample count.
    pub samples: usize,
    /// Image resolution.
    pub image_size: usize,
    /// Process node name (`N10` / `N7`).
    pub node: String,
    /// Nanometres per golden-image pixel (the EDE unit).
    pub nm_per_px: f64,
}

impl DatasetInfo {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("path".into(), Json::Str(self.path.clone())),
            ("fingerprint".into(), Json::Str(self.fingerprint.clone())),
            ("bytes".into(), Json::Num(self.bytes as f64)),
            ("samples".into(), Json::Num(self.samples as f64)),
            ("image_size".into(), Json::Num(self.image_size as f64)),
            ("node".into(), Json::Str(self.node.clone())),
            ("nm_per_px".into(), Json::Num(self.nm_per_px)),
        ])
    }

    fn from_json(v: &Json) -> Option<DatasetInfo> {
        Some(DatasetInfo {
            path: v.get("path")?.as_str()?.to_string(),
            fingerprint: v.get("fingerprint")?.as_str()?.to_string(),
            bytes: v.get("bytes")?.as_u64()?,
            samples: v.get("samples")?.as_u64()? as usize,
            image_size: v.get("image_size")?.as_u64()? as usize,
            node: v.get("node")?.as_str()?.to_string(),
            nm_per_px: v.get("nm_per_px")?.as_f64()?,
        })
    }
}

/// FNV-1a 64 fingerprint of a file: `(hex_digest, byte_length)`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn fingerprint_file(path: &Path) -> io::Result<(String, u64)> {
    let mut file = fs::File::open(path)?;
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut len: u64 = 0;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        len += n as u64;
        for &b in &buf[..n] {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    Ok((format!("{hash:016x}"), len))
}

/// The durable description of one run, stored as
/// `runs/<id>/manifest.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    pub schema_version: u32,
    pub run_id: String,
    /// Subcommand or bench binary name (`train`, `predict`, `table3`, …).
    pub command: String,
    /// Wall-clock start, seconds since the Unix epoch.
    pub started_unix_s: u64,
    /// RNG seed, when the command has one.
    pub seed: Option<u64>,
    /// Flat key/value configuration (epochs, flags, scale label, …).
    pub config: Vec<(String, String)>,
    pub dataset: Option<DatasetInfo>,
    /// Path of the telemetry JSONL stream, relative to the run directory
    /// unless absolute.
    pub trace: Option<String>,
    /// `running`, `ok`, `error` or `aborted(<reason>)`.
    pub status: String,
    /// Total wall-clock, present once finalized.
    pub wall_clock_s: Option<f64>,
    /// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`);
    /// `None` where the proc filesystem is unavailable.
    pub peak_rss_bytes: Option<u64>,
    /// Cumulative tensor data bytes allocated by the process
    /// ([`litho_tensor::allocated_bytes`]), an allocator-churn signal.
    pub tensor_alloc_bytes: Option<u64>,
    /// Effective worker-pool width (`--threads` / `LITHO_THREADS` /
    /// detected cores); `None` on manifests from before the pool existed.
    pub threads: Option<usize>,
    /// Active SIMD kernel level (`"scalar"` / `"avx2"`, from `--simd` /
    /// `LITHO_SIMD` / CPUID detection); `None` on manifests from before
    /// runtime kernel dispatch existed.
    pub simd: Option<String>,
    /// Inference throughput over the run's evaluated samples, a
    /// `runs trend`-able headline performance metric.
    pub samples_per_sec: Option<f64>,
    /// Mean worker-pool utilization over the run's parallel regions
    /// (busy time over threads × wall, 0..1); `None` on manifests from
    /// before pool profiling or when the pool never ran a job.
    pub pool_utilization: Option<f64>,
    /// Largest single workspace buffer requested during the run, bytes
    /// ([`litho_tensor::peak_workspace_bytes`]).
    pub peak_workspace_bytes: Option<u64>,
    /// Evaluated pairs excluded from box-based metrics because a side had
    /// no foreground ([`MetricAccumulator::skipped`]). Stamped at
    /// finalize; `None` on manifests that predate the field or on runs
    /// that evaluated nothing. A large value next to a low EDE means the
    /// model collapsed to empty output.
    pub eval_skipped: Option<usize>,
}

impl RunManifest {
    /// Serializes to pretty-stable compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut members = vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("run_id".into(), Json::Str(self.run_id.clone())),
            ("command".into(), Json::Str(self.command.clone())),
            (
                "started_unix_s".into(),
                Json::Num(self.started_unix_s as f64),
            ),
        ];
        if let Some(seed) = self.seed {
            members.push(("seed".into(), Json::Num(seed as f64)));
        }
        members.push((
            "config".into(),
            Json::Obj(
                self.config
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
        if let Some(ds) = &self.dataset {
            members.push(("dataset".into(), ds.to_json()));
        }
        if let Some(trace) = &self.trace {
            members.push(("trace".into(), Json::Str(trace.clone())));
        }
        if let Some(threads) = self.threads {
            members.push(("threads".into(), Json::Num(threads as f64)));
        }
        if let Some(simd) = &self.simd {
            members.push(("simd".into(), Json::Str(simd.clone())));
        }
        if let Some(sps) = self.samples_per_sec {
            members.push(("samples_per_sec".into(), Json::Num(sps)));
        }
        if let Some(util) = self.pool_utilization {
            members.push(("pool_utilization".into(), Json::Num(util)));
        }
        if let Some(ws) = self.peak_workspace_bytes {
            members.push(("peak_workspace_bytes".into(), Json::Num(ws as f64)));
        }
        if let Some(skipped) = self.eval_skipped {
            members.push(("eval_skipped".into(), Json::Num(skipped as f64)));
        }
        members.push(("status".into(), Json::Str(self.status.clone())));
        if let Some(wall) = self.wall_clock_s {
            members.push(("wall_clock_s".into(), Json::Num(wall)));
        }
        if self.wall_clock_s.is_some() {
            // Memory accounting is stamped at finalize time; `null` keeps
            // the field visible on platforms without /proc.
            members.push((
                "peak_rss_bytes".into(),
                match self.peak_rss_bytes {
                    Some(v) => Json::Num(v as f64),
                    None => Json::Null,
                },
            ));
            members.push((
                "tensor_alloc_bytes".into(),
                match self.tensor_alloc_bytes {
                    Some(v) => Json::Num(v as f64),
                    None => Json::Null,
                },
            ));
        }
        let mut out = Json::Obj(members).to_string_compact();
        out.push('\n');
        out
    }

    /// Parses a manifest written by [`Self::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for malformed JSON or missing fields.
    pub fn from_json_str(text: &str) -> io::Result<RunManifest> {
        let v = Json::parse(text).map_err(|e| invalid(format!("manifest: {e}")))?;
        let str_field = |key: &str| -> io::Result<String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("manifest: missing field {key:?}")))
        };
        let config = match v.get("config") {
            Some(Json::Obj(members)) => members
                .iter()
                .filter_map(|(k, val)| val.as_str().map(|s| (k.clone(), s.to_string())))
                .collect(),
            _ => Vec::new(),
        };
        Ok(RunManifest {
            schema_version: v
                .get("schema_version")
                .or_else(|| v.get("schema")) // pre-v2 spelling
                .and_then(Json::as_u64)
                .unwrap_or(1) as u32,
            run_id: str_field("run_id")?,
            command: str_field("command")?,
            started_unix_s: v
                .get("started_unix_s")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            seed: v.get("seed").and_then(Json::as_u64),
            config,
            dataset: v.get("dataset").and_then(DatasetInfo::from_json),
            trace: v.get("trace").and_then(Json::as_str).map(str::to_string),
            status: str_field("status")?,
            wall_clock_s: v.get("wall_clock_s").and_then(Json::as_f64),
            peak_rss_bytes: v.get("peak_rss_bytes").and_then(Json::as_u64),
            tensor_alloc_bytes: v.get("tensor_alloc_bytes").and_then(Json::as_u64),
            threads: v.get("threads").and_then(Json::as_u64).map(|n| n as usize),
            simd: v.get("simd").and_then(Json::as_str).map(str::to_string),
            samples_per_sec: v.get("samples_per_sec").and_then(Json::as_f64),
            pool_utilization: v.get("pool_utilization").and_then(Json::as_f64),
            peak_workspace_bytes: v.get("peak_workspace_bytes").and_then(Json::as_u64),
            eval_skipped: v
                .get("eval_skipped")
                .and_then(Json::as_u64)
                .map(|n| n as usize),
        })
    }
}

/// Validates a user-supplied run id before it is joined onto a runs
/// root. Ledger-minted ids are always a single path component
/// (`<command>-<unix>-<pid>`), so anything with a separator or a parent
/// reference is an attempt to escape the root (`report ../../etc/x`),
/// not a run id. Shared by every CLI subcommand and dash route that
/// resolves `<runs-root>/<id>`.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] naming the offending id when it is
/// empty, contains `/` or `\`, or contains a `..` component.
pub fn validate_run_id(id: &str) -> io::Result<()> {
    let bad = id.is_empty() || id.contains('/') || id.contains('\\') || id.contains("..");
    if bad {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid run id {id:?}: run ids are a single path component"),
        ));
    }
    Ok(())
}

/// Peak resident set size of this process in bytes, from the `VmHWM`
/// line of `/proc/self/status`. Returns `None` on platforms without a
/// proc filesystem (macOS, Windows) — callers record `null`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads `<run_dir>/manifest.json`.
///
/// # Errors
///
/// I/O errors, or [`io::ErrorKind::InvalidData`] for malformed manifests.
pub fn load_manifest(run_dir: &Path) -> io::Result<RunManifest> {
    let text = fs::read_to_string(run_dir.join("manifest.json"))?;
    RunManifest::from_json_str(&text)
}

/// An open run directory: manifest plus the `samples.jsonl` appender.
#[derive(Debug)]
pub struct RunLedger {
    dir: PathBuf,
    manifest: RunManifest,
    started: Instant,
    samples: Option<BufWriter<fs::File>>,
    /// Running aggregate of appended records, so the finalize-time index
    /// entry needs no re-read of `samples.jsonl`.
    summary: Option<MetricAccumulator>,
    /// When false, finalize skips the `index.jsonl` append (used by the
    /// index-overhead microbench to measure the delta).
    index_enabled: bool,
    finalized: bool,
}

impl RunLedger {
    /// Creates `root/<id>/` and writes the initial manifest (status
    /// `"running"`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(
        root: &Path,
        command: &str,
        seed: Option<u64>,
        config: Vec<(String, String)>,
        dataset: Option<DatasetInfo>,
    ) -> io::Result<RunLedger> {
        let unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let base = format!("{command}-{unix}-{}", std::process::id());
        let mut dir = root.join(&base);
        let mut attempt = 1;
        // Same-process collisions (two ledgers in one second) get a suffix.
        while dir.exists() {
            attempt += 1;
            dir = root.join(format!("{base}-{attempt}"));
        }
        fs::create_dir_all(&dir)?;
        let run_id = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or(base);
        let manifest = RunManifest {
            schema_version: MANIFEST_SCHEMA,
            run_id,
            command: command.to_string(),
            started_unix_s: unix,
            seed,
            config,
            dataset,
            trace: None,
            status: "running".to_string(),
            wall_clock_s: None,
            peak_rss_bytes: None,
            tensor_alloc_bytes: None,
            threads: Some(litho_tensor::pool::effective_threads()),
            simd: Some(litho_tensor::active_level().name().to_string()),
            samples_per_sec: None,
            pool_utilization: None,
            peak_workspace_bytes: None,
            eval_skipped: None,
        };
        let ledger = RunLedger {
            dir,
            manifest,
            started: Instant::now(),
            samples: None,
            summary: None,
            index_enabled: true,
            finalized: false,
        };
        ledger.write_manifest()?;
        Ok(ledger)
    }

    fn write_manifest(&self) -> io::Result<()> {
        // Write-then-rename so a concurrent `runs watch` poll never reads
        // a truncated manifest (a parse failure reads as "waiting" there).
        let tmp = self.dir.join("manifest.json.tmp");
        fs::write(&tmp, self.manifest.to_json_string())?;
        fs::rename(tmp, self.dir.join("manifest.json"))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn run_id(&self) -> &str {
        &self.manifest.run_id
    }

    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// Default path for the telemetry stream inside this run directory.
    pub fn default_trace_path(&self) -> PathBuf {
        self.dir.join("trace.jsonl")
    }

    /// Records where the telemetry JSONL stream went and rewrites the
    /// manifest so `report` can find it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn set_trace_path(&mut self, path: &str) -> io::Result<()> {
        self.manifest.trace = Some(path.to_string());
        self.write_manifest()
    }

    /// Attaches dataset identity discovered after creation (bench runs
    /// build datasets lazily) and rewrites the manifest.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn set_dataset(&mut self, dataset: DatasetInfo) -> io::Result<()> {
        self.manifest.dataset = Some(dataset);
        self.write_manifest()
    }

    /// Records the run's measured inference throughput; stamped into the
    /// manifest (and the index, as a headline metric) at finalize.
    pub fn set_samples_per_sec(&mut self, samples_per_sec: f64) {
        self.manifest.samples_per_sec = Some(samples_per_sec);
    }

    /// Records the run's mean worker-pool utilization (0..1); stamped
    /// into the manifest (and the index) at finalize.
    pub fn set_pool_utilization(&mut self, utilization: f64) {
        self.manifest.pool_utilization = Some(utilization);
    }

    /// Records the largest single workspace buffer the run requested.
    pub fn set_peak_workspace_bytes(&mut self, bytes: u64) {
        self.manifest.peak_workspace_bytes = Some(bytes);
    }

    /// Appends one per-sample record to `samples.jsonl`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_record(&mut self, record: &SampleRecord) -> io::Result<()> {
        if self.samples.is_none() {
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join("samples.jsonl"))?;
            self.samples = Some(BufWriter::new(file));
        }
        let w = self.samples.as_mut().expect("samples writer just created");
        writeln!(w, "{}", record.to_jsonl())?;
        // Records arrive already in nm, hence the unit factor.
        self.summary
            .get_or_insert_with(|| MetricAccumulator::new(1.0))
            .add_record(record);
        Ok(())
    }

    /// Disables the finalize-time `index.jsonl` append. Only the
    /// index-overhead microbench wants this; leave it on everywhere else
    /// or the run becomes invisible to `runs ls` / `runs trend` until
    /// the next `reindex`.
    pub fn set_index_enabled(&mut self, enabled: bool) {
        self.index_enabled = enabled;
    }

    /// Flushes records and rewrites the manifest with final status and
    /// wall-clock. Idempotent; also invoked on drop (as `status:
    /// "error"`-preserving best effort) so killed-but-unwinding runs still
    /// close their ledger.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finalize(&mut self, ok: bool) -> io::Result<()> {
        self.finalize_with_status(if ok { "ok" } else { "error" })
    }

    /// Like [`Self::finalize`] but with an explicit status string —
    /// training aborted by a health monitor records
    /// `aborted(<reason>)`. Also stamps memory accounting (peak RSS and
    /// cumulative tensor allocation) into the manifest.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finalize_with_status(&mut self, status: &str) -> io::Result<()> {
        if self.finalized {
            return Ok(());
        }
        self.finalized = true;
        if let Some(w) = self.samples.as_mut() {
            w.flush()?;
        }
        self.manifest.status = status.to_string();
        self.manifest.wall_clock_s = Some(self.started.elapsed().as_secs_f64());
        if let Some(acc) = &self.summary {
            self.manifest.eval_skipped = Some(acc.skipped());
        }
        self.manifest.peak_rss_bytes = peak_rss_bytes();
        self.manifest.tensor_alloc_bytes = Some(litho_tensor::allocated_bytes());
        self.write_manifest()?;
        if self.index_enabled {
            if let Some(root) = self.dir.parent() {
                let summary = self.summary.as_ref().map(|acc| acc.summary());
                let record = crate::index::record_from_parts(
                    &self.manifest,
                    summary.as_ref(),
                    crate::index::health_verdict(&self.dir),
                );
                crate::index::append_index(root, &record)?;
            }
        }
        Ok(())
    }
}

impl Drop for RunLedger {
    fn drop(&mut self) {
        if !self.finalized {
            let _ = self.finalize(false);
        }
    }
}

/// Reads `<run_dir>/samples.jsonl` into records, tolerating a truncated
/// final line (killed run). Returns `(records, skipped_line_count)`.
///
/// # Errors
///
/// Propagates I/O errors; a missing file yields an empty list.
pub fn load_records(run_dir: &Path) -> io::Result<(Vec<SampleRecord>, usize)> {
    let path = run_dir.join("samples.jsonl");
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let parse = litho_json::jsonl::parse_jsonl_with(&text, record_from_json);
    // Callers only distinguish "decoded" from "not": a truncated tail
    // counts toward the skipped tally here, as it always has.
    Ok((
        parse.records,
        parse.skipped_lines + usize::from(parse.truncated_tail),
    ))
}

/// Decodes one `samples.jsonl` line (the writer side lives in
/// [`litho_metrics::SampleRecord::to_jsonl`]).
pub fn record_from_json(v: &Json) -> Option<SampleRecord> {
    let opt_num = |key: &str| match v.get(key) {
        Some(Json::Num(n)) => Some(Some(*n)),
        Some(Json::Null) | None => Some(None),
        _ => None,
    };
    // Clip identity landed after the first ledgers shipped; absent (or
    // null) reads as `None`, same as the manifest `schema_version`
    // precedent, so legacy samples.jsonl lines keep parsing.
    let opt_str = |key: &str| match v.get(key) {
        Some(Json::Str(s)) => Some(Some(s.clone())),
        Some(Json::Null) | None => Some(None),
        _ => None,
    };
    let edges = match v.get("ede_edges_nm") {
        Some(Json::Arr(items)) if items.len() == 4 => {
            let mut edges = [0.0; 4];
            for (slot, item) in edges.iter_mut().zip(items) {
                *slot = item.as_f64()?;
            }
            Some(Some(edges))
        }
        Some(Json::Null) | None => Some(None),
        _ => None,
    }?;
    Some(SampleRecord {
        sample: v.get("sample")?.as_u64()?,
        pixel_accuracy: v.get("pixel_accuracy")?.as_f64()?,
        class_accuracy: v.get("class_accuracy")?.as_f64()?,
        mean_iou: v.get("mean_iou")?.as_f64()?,
        ede_mean_nm: opt_num("ede_mean_nm")?,
        ede_edges_nm: edges,
        center_error_nm: opt_num("center_error_nm")?,
        clip_fingerprint: opt_str("clip_fingerprint")?,
        family: opt_str("family")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("litho_ledger_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(i: u64) -> SampleRecord {
        SampleRecord {
            sample: i,
            pixel_accuracy: 0.9,
            class_accuracy: 0.8,
            mean_iou: 0.7,
            ede_mean_nm: Some(1.25),
            ede_edges_nm: Some([1.0, 1.5, 1.0, 1.5]),
            center_error_nm: Some(0.5),
            clip_fingerprint: Some(format!("{i:016x}")),
            family: Some("isolated".to_string()),
        }
    }

    #[test]
    fn ledger_round_trip() {
        let root = temp_dir("round_trip");
        let mut ledger = RunLedger::create(
            &root,
            "train",
            Some(7),
            vec![("epochs".into(), "4".into())],
            None,
        )
        .unwrap();
        ledger.append_record(&record(0)).unwrap();
        ledger.append_record(&record(1)).unwrap();

        // Mid-run manifest says running.
        let mid = load_manifest(ledger.dir()).unwrap();
        assert_eq!(mid.status, "running");
        assert_eq!(mid.seed, Some(7));

        ledger.finalize(true).unwrap();
        let done = load_manifest(ledger.dir()).unwrap();
        assert_eq!(done.status, "ok");
        assert!(done.wall_clock_s.is_some());
        assert_eq!(done.config, vec![("epochs".to_string(), "4".to_string())]);

        let (records, skipped) = load_records(ledger.dir()).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(records, vec![record(0), record(1)]);
    }

    #[test]
    fn legacy_sample_lines_without_identity_still_parse() {
        // The exact shape every ledger wrote before clip identity existed.
        let legacy = r#"{"sample":0,"pixel_accuracy":0.95,"class_accuracy":0.9,"mean_iou":0.85,"ede_mean_nm":3.0,"ede_edges_nm":[3.0,3.0,3.0,3.0],"center_error_nm":0.5}"#;
        let rec = record_from_json(&Json::parse(legacy).unwrap()).unwrap();
        assert_eq!(rec.clip_fingerprint, None, "absent reads as null");
        assert_eq!(rec.family, None);
        assert_eq!(rec.ede_mean_nm, Some(3.0));
        // Explicit nulls decode identically to absence.
        let nulled = r#"{"sample":0,"pixel_accuracy":1,"class_accuracy":1,"mean_iou":1,"ede_mean_nm":null,"ede_edges_nm":null,"center_error_nm":null,"clip_fingerprint":null,"family":null}"#;
        let rec = record_from_json(&Json::parse(nulled).unwrap()).unwrap();
        assert_eq!(rec.clip_fingerprint, None);
        assert_eq!(rec.family, None);
        // A wrong-typed identity field rejects the line rather than
        // silently dropping the tag.
        let bad = r#"{"sample":0,"pixel_accuracy":1,"class_accuracy":1,"mean_iou":1,"family":7}"#;
        assert!(record_from_json(&Json::parse(bad).unwrap()).is_none());
        // Tagged records round-trip through the writer in litho-metrics.
        let tagged = record(3);
        let back = record_from_json(&Json::parse(&tagged.to_jsonl()).unwrap()).unwrap();
        assert_eq!(back, tagged);
    }

    #[test]
    fn finalize_stamps_eval_skipped() {
        let root = temp_dir("skipped");
        let mut ledger = RunLedger::create(&root, "eval", None, Vec::new(), None).unwrap();
        ledger.append_record(&record(0)).unwrap();
        let mut empty = record(1);
        empty.ede_mean_nm = None;
        empty.ede_edges_nm = None;
        empty.center_error_nm = None;
        ledger.append_record(&empty).unwrap();
        ledger.finalize(true).unwrap();
        let m = load_manifest(ledger.dir()).unwrap();
        assert_eq!(m.eval_skipped, Some(1));
        assert_eq!(RunManifest::from_json_str(&m.to_json_string()).unwrap(), m);
        // Runs that evaluate nothing don't carry the field.
        let root2 = temp_dir("skipped_none");
        let mut ledger = RunLedger::create(&root2, "generate", None, Vec::new(), None).unwrap();
        ledger.finalize(true).unwrap();
        assert_eq!(load_manifest(ledger.dir()).unwrap().eval_skipped, None);
    }

    #[test]
    fn truncated_samples_line_is_tolerated() {
        let root = temp_dir("truncated");
        let run = root.join("x");
        fs::create_dir_all(&run).unwrap();
        let full = record(0).to_jsonl();
        let half = &full[..full.len() / 2];
        fs::write(run.join("samples.jsonl"), format!("{full}\n{half}")).unwrap();
        let (records, skipped) = load_records(&run).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn finalize_with_status_records_abort_and_memory() {
        let root = temp_dir("aborted");
        let mut ledger = RunLedger::create(&root, "train", None, Vec::new(), None).unwrap();
        let _ = litho_tensor::Tensor::zeros(&[8]);
        ledger.finalize_with_status("aborted(nan)").unwrap();
        let m = load_manifest(ledger.dir()).unwrap();
        assert_eq!(m.status, "aborted(nan)");
        assert!(m.tensor_alloc_bytes.unwrap_or(0) > 0);
        // peak_rss_bytes is best-effort (None off-Linux) but must
        // round-trip through serialization either way.
        assert_eq!(m.peak_rss_bytes, peak_rss_bytes().and(m.peak_rss_bytes));
        let text = m.to_json_string();
        assert!(text.contains("\"peak_rss_bytes\""));
        assert_eq!(RunManifest::from_json_str(&text).unwrap(), m);
    }

    #[test]
    fn legacy_manifests_without_schema_version_still_parse() {
        // Pre-v2 spelling (`schema`), as in the committed fixtures.
        let v1 = r#"{"schema":1,"run_id":"train-1-2","command":"train","config":{},"status":"ok"}"#;
        let m = RunManifest::from_json_str(v1).unwrap();
        assert_eq!(m.schema_version, 1);
        assert_eq!(m.run_id, "train-1-2");

        // No version field at all: treated as version 1, not an error.
        let v0 = r#"{"run_id":"train-1-2","command":"train","config":{},"status":"ok"}"#;
        assert_eq!(RunManifest::from_json_str(v0).unwrap().schema_version, 1);

        // Current manifests round-trip the new spelling.
        let text = m.to_json_string();
        assert!(!text.contains("\"schema\":"));
        let current = RunManifest {
            schema_version: MANIFEST_SCHEMA,
            ..m
        };
        let text = current.to_json_string();
        assert!(text.contains("\"schema_version\":2"));
        assert_eq!(RunManifest::from_json_str(&text).unwrap(), current);
    }

    #[test]
    fn drop_without_finalize_marks_error() {
        let root = temp_dir("drop_err");
        let dir;
        {
            let ledger = RunLedger::create(&root, "predict", None, Vec::new(), None).unwrap();
            dir = ledger.dir().to_path_buf();
        }
        assert_eq!(load_manifest(&dir).unwrap().status, "error");
    }

    #[test]
    fn run_id_validation_rejects_traversal() {
        for ok in ["train-1700000100-1", "dash-1-2-3", "bench.table3"] {
            assert!(validate_run_id(ok).is_ok(), "{ok} should be valid");
        }
        for bad in ["", "..", "../etc", "a/b", "a\\b", "runs/../../etc/passwd", "a..b"] {
            let err = validate_run_id(bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{bad}");
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let root = temp_dir("fp");
        let a = root.join("a.bin");
        let b = root.join("b.bin");
        fs::write(&a, b"hello world").unwrap();
        fs::write(&b, b"hello worle").unwrap();
        let (fa, la) = fingerprint_file(&a).unwrap();
        let (fa2, _) = fingerprint_file(&a).unwrap();
        let (fb, _) = fingerprint_file(&b).unwrap();
        assert_eq!(la, 11);
        assert_eq!(fa, fa2);
        assert_ne!(fa, fb);
        // Known FNV-1a 64 test vector.
        assert_eq!(fingerprint_file(&a).unwrap().0, "779a65e7023cd2e7");
    }
}
